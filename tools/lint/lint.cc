#include "lint.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace coursenav::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+token)` is `token` as a whole word: not glued
/// to an identifier character on either side.
bool IsWholeWordAt(const std::string& text, size_t pos,
                   std::string_view token) {
  if (pos + token.size() > text.size()) return false;
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// Finds `token` as a whole word in `text` starting at `from`; npos if
/// absent.
size_t FindWholeWord(const std::string& text, std::string_view token,
                     size_t from = 0) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (IsWholeWordAt(text, pos, token)) return pos;
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string NormalizeSlashes(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// The first directory component after an `src/` component, when it is a
/// known module name; "" otherwise.
std::string ModuleOf(const std::string& path) {
  static const std::set<std::string> kModules = {
      "util", "expr", "catalog", "graph",   "flow",         "obs",
      "data", "core", "exec",    "parsers", "requirements", "plan",
      "service", "serve"};
  std::string needle = "src/";
  size_t pos = path.rfind(needle);
  if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
    size_t start = pos + needle.size();
    size_t slash = path.find('/', start);
    if (slash != std::string::npos) {
      std::string module = path.substr(start, slash - start);
      if (kModules.count(module) != 0) return module;
    }
  }
  return "";
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

SourceFile PrepareSource(std::string_view path, std::string_view content) {
  SourceFile file;
  file.path = NormalizeSlashes(path);
  file.module = ModuleOf(file.path);
  file.is_header = file.path.size() >= 2 &&
                   (file.path.rfind(".h") == file.path.size() - 2 ||
                    (file.path.size() >= 4 &&
                     file.path.rfind(".hpp") == file.path.size() - 4));

  // Split into lines, then scrub a parallel "code" view with a small state
  // machine. Comment text and literal contents become spaces (delimiters
  // stay), so every rule's token scan is blind to both; the raw view keeps
  // NOLINT markers and the deterministic tag readable.
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_string_closer;  // e.g. `)delim"` for R"delim(...)delim"

  std::string raw_line;
  std::string code_line;
  auto flush_line = [&]() {
    file.raw.push_back(raw_line);
    file.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    raw_line.push_back(c);
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (raw_line.size() < 2 ||
                    !IsIdentChar(raw_line[raw_line.size() - 2]))) {
          // Raw string literal: R"delim( ... )delim".
          size_t open = content.find('(', i + 2);
          std::string delim =
              open == std::string::npos
                  ? ""
                  : std::string(content.substr(i + 2, open - (i + 2)));
          raw_string_closer = ")" + delim + "\"";
          state = State::kRawString;
          code_line.push_back('R');
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back('"');
        } else if (c == '\'' &&
                   !(raw_line.size() >= 2 &&
                     std::isdigit(static_cast<unsigned char>(
                         raw_line[raw_line.size() - 2])) != 0)) {
          // A quote after a digit is a C++14 digit separator (1'000'000),
          // not a character literal.
          state = State::kChar;
          code_line.push_back('\'');
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back('"');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_string_closer.size(), raw_string_closer) ==
            0) {
          // Emit the closer (minus the already-pushed char) and resume.
          for (size_t k = 1; k < raw_string_closer.size(); ++k) {
            raw_line.push_back(content[i + k]);
          }
          code_line.append(raw_string_closer.size(), ' ');
          i += raw_string_closer.size() - 1;
          state = State::kCode;
        } else {
          code_line.push_back(' ');
        }
        break;
    }
  }
  if (!raw_line.empty() || content.empty() ||
      content.back() != '\n') {
    flush_line();
  }

  for (const std::string& line : file.raw) {
    if (line.find("coursenav:deterministic") != std::string::npos) {
      file.deterministic = true;
      break;
    }
  }
  return file;
}

namespace {

// ---------------------------------------------------------------------------
// coursenav-layering
// ---------------------------------------------------------------------------

/// The module layering DAG (transitively closed). A file in module M may
/// include headers only from M itself and from kAllowedDeps[M]. Files
/// outside src/ (tools, tests, bench, examples) may include anything.
///
///   util → {expr, obs, flow} → catalog → graph → parsers
///                            ↘ requirements → core → {exec, data}
///                                                  → plan → cache
///                                                         → service → serve
///
/// `plan` (the query planner/executor) sits between the engines and the
/// service facade: it may use core and exec, and only service (plus the
/// out-of-src tools/tests/bench) may use it. core must never include plan —
/// the Generate*Paths facades are declared in core but defined in
/// src/plan/facades.cc (dependency inversion).
///
/// Kept in sync with docs/static-analysis.md; changing an edge here is an
/// architectural decision, not a lint tweak.
const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> deps{
      {"util", {}},
      {"expr", {"util"}},
      {"obs", {"util"}},
      {"flow", {"util"}},
      {"catalog", {"util", "expr"}},
      {"graph", {"util", "expr", "catalog"}},
      {"parsers", {"util", "expr", "catalog", "graph"}},
      {"requirements", {"util", "expr", "catalog", "flow", "obs"}},
      {"core",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements"}},
      {"exec",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements",
        "core"}},
      {"data",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core"}},
      {"plan",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements",
        "core", "exec"}},
      {"cache",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements",
        "core", "exec", "plan"}},
      {"service",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core", "exec", "data", "plan", "cache"}},
      {"serve",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core", "exec", "data", "plan", "cache", "service"}},
  };
  return deps;
}

class LayeringRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-layering"; }
  std::string_view description() const override {
    return "enforces the src/ module include-layering DAG";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (file.module.empty()) return;
    auto allowed_it = AllowedDeps().find(file.module);
    if (allowed_it == AllowedDeps().end()) return;
    const std::set<std::string>& allowed = allowed_it->second;
    for (size_t i = 0; i < file.raw.size(); ++i) {
      std::string target = IncludeTargetModule(file.raw[i]);
      if (target.empty() || target == file.module) continue;
      if (allowed.count(target) != 0) continue;
      std::ostringstream os;
      os << "module '" << file.module << "' must not include from '"
         << target << "' (layering DAG: " << file.module << " may use ";
      if (allowed.empty()) {
        os << "nothing below it";
      } else {
        bool first = true;
        for (const std::string& dep : allowed) {
          os << (first ? "" : ", ") << dep;
          first = false;
        }
      }
      os << ")";
      findings->push_back(
          {file.path, static_cast<int>(i) + 1, std::string(id()), os.str()});
    }
  }

 private:
  /// For `#include "mod/header.h"` lines: the module component when it is
  /// one the DAG knows, "" otherwise.
  static std::string IncludeTargetModule(const std::string& raw_line) {
    size_t pos = SkipSpaces(raw_line, 0);
    if (pos >= raw_line.size() || raw_line[pos] != '#') return "";
    pos = SkipSpaces(raw_line, pos + 1);
    if (raw_line.compare(pos, 7, "include") != 0) return "";
    pos = SkipSpaces(raw_line, pos + 7);
    if (pos >= raw_line.size() || raw_line[pos] != '"') return "";
    size_t close = raw_line.find('"', pos + 1);
    if (close == std::string::npos) return "";
    std::string target = raw_line.substr(pos + 1, close - pos - 1);
    size_t slash = target.find('/');
    if (slash == std::string::npos) return "";
    std::string module = target.substr(0, slash);
    return AllowedDeps().count(module) != 0 ? module : "";
  }
};

// ---------------------------------------------------------------------------
// coursenav-banned-symbol
// ---------------------------------------------------------------------------

/// A symbol banned in some scope. `as_call` restricts the match to
/// call-syntax uses (`name(`) not qualified by `.`/`->`/`::`, so plain
/// words like a `time` struct field stay legal. An empty `allowed_modules`
/// set bans the symbol everywhere the linter looks, src/ or not.
struct BannedSymbol {
  std::string_view token;
  bool as_call;
  std::set<std::string, std::less<>> allowed_modules;
  std::string_view reason;
};

const std::vector<BannedSymbol>& BannedSymbols() {
  static const std::vector<BannedSymbol> symbols{
      {"rand", true, {}, "libc PRNG breaks run-to-run determinism; use util/random.h"},
      {"srand", true, {}, "libc PRNG breaks run-to-run determinism; use util/random.h"},
      {"strtok", true, {}, "not reentrant; use util/string_util.h splitting"},
      {"time", true, {}, "wall clock in the engine breaks determinism; use DeadlineBudget/Stopwatch"},
      {"std::chrono::system_clock", false, {}, "wall clock is not monotonic; use steady_clock via util/stopwatch.h"},
      // The monotonic clock is fine in the substrate that owns timing
      // (stopwatch/deadlines, tracing, worker pool, service surface) but
      // banned in the pure algorithmic layers, which must stay replayable.
      {"std::chrono::steady_clock", false,
       {"util", "obs", "exec", "service", "serve"},
       "algorithmic layers must be clock-free; thread a DeadlineBudget through instead"},
  };
  return symbols;
}

class BannedSymbolRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-banned-symbol"; }
  std::string_view description() const override {
    return "bans nondeterminism/portability hazards (rand, time, "
           "system_clock, strtok), scoped per module";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    for (const BannedSymbol& symbol : BannedSymbols()) {
      // Module-scoped bans police the src/ layering only; files outside
      // src/ (bench, tests, tools) may use e.g. steady_clock freely.
      if (!symbol.allowed_modules.empty() &&
          (file.module.empty() ||
           symbol.allowed_modules.count(file.module) != 0)) {
        continue;
      }
      for (size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (size_t pos = FindWholeWord(line, symbol.token);
             pos != std::string::npos;
             pos = FindWholeWord(line, symbol.token, pos + 1)) {
          if (symbol.as_call && !IsUnqualifiedCallAt(line, pos, symbol.token)) {
            continue;
          }
          std::ostringstream os;
          os << "banned symbol '" << symbol.token << "': " << symbol.reason;
          findings->push_back({file.path, static_cast<int>(i) + 1,
                               std::string(id()), os.str()});
          break;  // one finding per line per symbol
        }
      }
    }
  }

 private:
  static bool IsUnqualifiedCallAt(const std::string& line, size_t pos,
                                  std::string_view token) {
    // Qualified (`x.time(`, `t->time(`, `Foo::time(`) uses are members in
    // someone else's namespace, not the libc symbol.
    if (pos >= 1 && (line[pos - 1] == '.' || line[pos - 1] == ':')) {
      return false;
    }
    if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') return false;
    size_t after = SkipSpaces(line, pos + token.size());
    return after < line.size() && line[after] == '(';
  }
};

// ---------------------------------------------------------------------------
// coursenav-raw-new
// ---------------------------------------------------------------------------

class RawNewDeleteRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-raw-new"; }
  std::string_view description() const override {
    return "bans raw new/delete outside arena code (use make_unique or the "
           "chunked arenas)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    // The arena implementation itself placement-news into its chunks.
    if (file.path.find("util/chunked_vector.h") != std::string::npos) return;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      if (HasRawNewOrDelete(line, "new") || HasRawNewOrDelete(line, "delete")) {
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             "raw new/delete: prefer std::make_unique/std::make_shared or "
             "the chunked-arena allocators (util/chunked_vector.h)"});
      }
    }
  }

 private:
  static bool HasRawNewOrDelete(const std::string& line,
                                std::string_view keyword) {
    for (size_t pos = FindWholeWord(line, keyword); pos != std::string::npos;
         pos = FindWholeWord(line, keyword, pos + 1)) {
      // `= delete;` / `= delete ;` — deleted special members are fine.
      if (keyword == "delete") {
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && line[before - 1] == '=') continue;
      }
      // `operator new` / `operator delete` declarations are allocator
      // customization points, not allocations.
      size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      if (before >= 8 && line.compare(before - 8, 8, "operator") == 0) {
        continue;
      }
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// coursenav-simd-encapsulation
// ---------------------------------------------------------------------------

class SimdEncapsulationRule : public Rule {
 public:
  std::string_view id() const override {
    return "coursenav-simd-encapsulation";
  }
  std::string_view description() const override {
    return "bans bit-manipulation builtins and vector intrinsics outside "
           "src/util/simd/ (use the coursenav::simd dispatch layer)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    // The dispatch layer is where the intrinsics are supposed to live.
    if (file.path.find("util/simd/") != std::string::npos) return;
    static constexpr std::string_view kBanned[] = {
        "__builtin_popcount", "__builtin_ctz", "__builtin_clz",
        "_mm_",               "_mm256_",       "_mm512_",
        "immintrin.h",        "arm_neon.h",
    };
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view token : kBanned) {
        if (line.find(token) == std::string::npos) continue;
        std::ostringstream os;
        os << "'" << token
           << "' outside src/util/simd/: route set algebra through the "
              "coursenav::simd kernels (util/simd/simd.h) so every call "
              "site honors the runtime dispatch and the forced-scalar "
              "build";
        findings->push_back({file.path, static_cast<int>(i) + 1,
                             std::string(id()), os.str()});
        break;  // one finding per line
      }
    }
  }
};

// ---------------------------------------------------------------------------
// coursenav-unordered-iter
// ---------------------------------------------------------------------------

class UnorderedIterationRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-unordered-iter"; }
  std::string_view description() const override {
    return "forbids iterating unordered containers in files tagged "
           "// coursenav:deterministic";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (!file.deterministic) return;
    // Pass 1: names declared in this file with an unordered container type
    // (heuristic, token-level: `unordered_xxx<...> name`).
    std::set<std::string> unordered_names = CollectUnorderedNames(file);
    // Pass 2: flag range-for over (a) anything mentioning `unordered_`
    // directly, or (b) a name from pass 1; and `.begin()`/`.cbegin()` on a
    // pass-1 name (manual iterator loops).
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      std::string culprit = RangeForUnorderedCulprit(line, unordered_names);
      if (culprit.empty()) culprit = BeginOnUnordered(line, unordered_names);
      if (!culprit.empty()) {
        std::ostringstream os;
        os << "iteration over unordered container " << culprit
           << " in a deterministic-tagged file: hash-map order is not "
              "stable and must not feed output order; iterate a sorted "
              "snapshot or an ordered container instead";
        findings->push_back({file.path, static_cast<int>(i) + 1,
                             std::string(id()), os.str()});
      }
    }
  }

 private:
  static const std::array<std::string_view, 4>& UnorderedTypes() {
    static const std::array<std::string_view, 4> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kTypes;
  }

  static std::set<std::string> CollectUnorderedNames(const SourceFile& file) {
    std::set<std::string> names;
    // Join the scrubbed file so declarations spanning lines still parse.
    std::string joined;
    for (const std::string& line : file.code) {
      joined += line;
      joined += '\n';
    }
    for (std::string_view type : UnorderedTypes()) {
      for (size_t pos = FindWholeWord(joined, type); pos != std::string::npos;
           pos = FindWholeWord(joined, type, pos + 1)) {
        size_t cursor = SkipSpaces(joined, pos + type.size());
        if (cursor >= joined.size() || joined[cursor] != '<') continue;
        // Skip the balanced template argument list.
        int depth = 0;
        while (cursor < joined.size()) {
          if (joined[cursor] == '<') ++depth;
          if (joined[cursor] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        if (cursor >= joined.size()) continue;
        cursor = SkipSpaces(joined, cursor + 1);
        // `unordered_map<K, V> name` — capture `name`. Declarations used
        // as template args / return types yield no identifier here and are
        // skipped.
        std::string name;
        while (cursor < joined.size() && IsIdentChar(joined[cursor])) {
          name.push_back(joined[cursor]);
          ++cursor;
        }
        if (!name.empty()) names.insert(name);
      }
    }
    return names;
  }

  /// For `for (decl : range)` lines: a description of the unordered
  /// culprit in `range`, or "" when the range looks order-safe.
  static std::string RangeForUnorderedCulprit(
      const std::string& line, const std::set<std::string>& names) {
    size_t for_pos = FindWholeWord(line, "for");
    if (for_pos == std::string::npos) return "";
    size_t open = SkipSpaces(line, for_pos + 3);
    if (open >= line.size() || line[open] != '(') return "";
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = open; i < line.size(); ++i) {
      if (line[i] == '(') ++depth;
      if (line[i] == ')') --depth;
      if (depth == 1 && line[i] == ':' &&
          (i + 1 >= line.size() || line[i + 1] != ':') &&
          (i == 0 || line[i - 1] != ':')) {
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) return "";
    std::string range = line.substr(colon + 1);
    for (std::string_view type : UnorderedTypes()) {
      if (FindWholeWord(range, type) != std::string::npos) {
        return std::string("of type '") + std::string(type) + "'";
      }
    }
    for (const std::string& name : names) {
      if (FindWholeWord(range, name) != std::string::npos) {
        return "'" + name + "'";
      }
    }
    return "";
  }

  /// Flags `name.begin()` / `name.cbegin()` for known unordered names.
  static std::string BeginOnUnordered(const std::string& line,
                                      const std::set<std::string>& names) {
    for (const std::string& name : names) {
      for (std::string_view member : {".begin()", ".cbegin()"}) {
        std::string pattern = name + std::string(member);
        if (line.find(pattern) != std::string::npos) return "'" + name + "'";
      }
    }
    return "";
  }
};

// ---------------------------------------------------------------------------
// coursenav-endl
// ---------------------------------------------------------------------------

class EndlRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-endl"; }
  std::string_view description() const override {
    return "bans std::endl (flushes the stream; use '\\n')";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (FindWholeWord(file.code[i], "endl") != std::string::npos) {
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             "std::endl forces a flush on every use; write '\\n' and let "
             "the stream flush on its own schedule"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// coursenav-header-guard
// ---------------------------------------------------------------------------

class HeaderGuardRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-header-guard"; }
  std::string_view description() const override {
    return "headers must open with #pragma once or a matching "
           "#ifndef/#define guard";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (!file.is_header) return;
    // First two non-blank scrubbed lines decide the verdict.
    std::vector<std::pair<int, std::string>> head;
    for (size_t i = 0; i < file.code.size() && head.size() < 2; ++i) {
      std::string line = file.code[i];
      size_t start = SkipSpaces(line, 0);
      if (start >= line.size()) continue;
      head.emplace_back(static_cast<int>(i) + 1, line.substr(start));
    }
    if (head.empty()) return;  // empty header: nothing to protect
    const std::string& first = head[0].second;
    if (first.rfind("#pragma once", 0) == 0) return;
    std::string guard = DirectiveOperand(first, "#ifndef");
    if (guard.empty()) {
      findings->push_back(
          {file.path, head[0].first, std::string(id()),
           "header does not start with #pragma once or an #ifndef include "
           "guard"});
      return;
    }
    std::string defined =
        head.size() > 1 ? DirectiveOperand(head[1].second, "#define") : "";
    if (defined != guard) {
      findings->push_back(
          {file.path, head[0].first, std::string(id()),
           "#ifndef " + guard + " is not followed by #define " + guard});
      return;
    }
    // In-tree headers also follow the COURSENAV_<PATH>_H_ convention.
    std::string expected = ExpectedGuard(file.path);
    if (!expected.empty() && guard != expected) {
      findings->push_back({file.path, head[0].first, std::string(id()),
                           "include guard " + guard +
                               " does not match the path convention " +
                               expected});
    }
  }

 private:
  static std::string DirectiveOperand(const std::string& line,
                                      std::string_view directive) {
    if (line.rfind(directive, 0) != 0) return "";
    size_t pos = SkipSpaces(line, directive.size());
    std::string operand;
    while (pos < line.size() && IsIdentChar(line[pos])) {
      operand.push_back(line[pos]);
      ++pos;
    }
    return operand;
  }

  /// COURSENAV_<DIRS>_<STEM>_H_ for paths under src/; "" (no convention
  /// enforced) elsewhere.
  static std::string ExpectedGuard(const std::string& path) {
    size_t pos = path.rfind("src/");
    if (pos == std::string::npos ||
        (pos != 0 && path[pos - 1] != '/')) {
      return "";
    }
    std::string tail = path.substr(pos + 4);
    std::string guard = "COURSENAV_";
    for (char c : tail) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        guard.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
      } else {
        guard.push_back('_');
      }
    }
    guard += "_";  // trailing underscore after ..._H
    return guard;
  }
};

// ---------------------------------------------------------------------------
// coursenav-direct-generate
// ---------------------------------------------------------------------------

/// In-tree src/ code must reach the generators through the declarative
/// request pipeline (`CourseNavigator::Explore` / `plan::Execute`), not by
/// calling the Generate*Paths facades directly: a direct call skips the
/// planner (and with it plan rewrites, the Filter stage, and the plan's
/// serial/parallel decision). Exempt: the plan module itself (facades.cc
/// *implements* the symbols; the executor *is* the pipeline) and the three
/// core headers that declare the public API. Code outside src/ — tools,
/// tests, bench — may call the facades freely; they are the supported
/// entry points, and the golden-equivalence suite exists to compare them
/// against the pipeline.
class DirectGenerateRule : public Rule {
 public:
  std::string_view id() const override {
    return "coursenav-direct-generate";
  }
  std::string_view description() const override {
    return "src/ code must use the request pipeline, not call "
           "Generate*Paths directly (plan module and facade headers exempt)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (file.module.empty() || file.module == "plan") return;
    static const char* kFacadeHeaders[] = {
        "src/core/deadline_generator.h",
        "src/core/goal_generator.h",
        "src/core/ranked_generator.h",
    };
    for (const char* header : kFacadeHeaders) {
      if (PathEndsWith(file.path, header)) return;
    }
    static const char* kFacades[] = {
        "GenerateDeadlineDrivenPaths",
        "GenerateGoalDrivenPaths",
        "GenerateRankedPaths",
    };
    for (size_t i = 0; i < file.code.size(); ++i) {
      for (const char* facade : kFacades) {
        if (FindWholeWord(file.code[i], facade) == std::string::npos) {
          continue;
        }
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             std::string("direct use of ") + facade +
                 " bypasses the planner pipeline; build an "
                 "ExplorationRequest and run it through "
                 "CourseNavigator::Explore or plan::Execute"});
      }
    }
  }

 private:
  static bool PathEndsWith(const std::string& path, std::string_view tail) {
    return path.size() >= tail.size() &&
           path.compare(path.size() - tail.size(), tail.size(), tail) == 0;
  }
};

// ---------------------------------------------------------------------------
// coursenav-mutex-annotation
// ---------------------------------------------------------------------------

/// The concurrent core runs under Clang's -Wthread-safety analysis, which
/// can only track capabilities it can see: every mutex in src/ must be the
/// annotated coursenav::Mutex, every Mutex member must have CN_GUARDED_BY
/// (or CN_REQUIRES/CN_ACQUIRE) consumers naming it, and every use of the
/// CN_NO_THREAD_SAFETY_ANALYSIS escape hatch needs an adjacent comment
/// saying why the analysis is wrong there. The wrapper's own implementation
/// (util/mutex.h, util/thread_annotations.h) is exempt — it is the one
/// place the raw std primitives are allowed to live.
class MutexAnnotationRule : public Rule {
 public:
  std::string_view id() const override {
    return "coursenav-mutex-annotation";
  }
  std::string_view description() const override {
    return "src/ must use the annotated coursenav::Mutex, keep CN_GUARDED_BY "
           "consumers for every Mutex member, and justify every "
           "CN_NO_THREAD_SAFETY_ANALYSIS";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (file.module.empty()) return;  // tools/tests/bench own their locking
    if (file.path.find("util/mutex.h") != std::string::npos ||
        file.path.find("util/thread_annotations.h") != std::string::npos) {
      return;
    }
    CheckRawStdPrimitives(file, findings);
    CheckGuardedByConsumers(file, findings);
    CheckEscapeHatchJustified(file, findings);
  }

 private:
  static void CheckRawStdPrimitives(const SourceFile& file,
                                    std::vector<Finding>* findings) {
    static constexpr std::string_view kRawPrimitives[] = {
        "std::mutex",
        "std::shared_mutex",
        "std::recursive_mutex",
        "std::condition_variable",
        "std::condition_variable_any",
    };
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view token : kRawPrimitives) {
        if (FindWholeWord(line, token) == std::string::npos) continue;
        std::ostringstream os;
        os << "raw '" << token
           << "' in an annotated module: use coursenav::Mutex / MutexLock / "
              "CondVar (util/mutex.h) so Clang's -Wthread-safety analysis "
              "can track the capability";
        findings->push_back({file.path, static_cast<int>(i) + 1,
                             std::string(id_for_static()), os.str()});
        break;  // one finding per line
      }
    }
  }

  /// Member-style declarations `Mutex name;` / `mutable Mutex name;` with
  /// no CN_* consumer naming `name` anywhere in the file. A mutex nothing
  /// is annotated against protects nothing the analysis can prove.
  static void CheckGuardedByConsumers(const SourceFile& file,
                                      std::vector<Finding>* findings) {
    for (size_t i = 0; i < file.code.size(); ++i) {
      std::string name = DeclaredMutexName(file.code[i]);
      if (name.empty()) continue;
      bool consumed = false;
      for (const std::string& line : file.code) {
        for (std::string_view macro :
             {"CN_GUARDED_BY(", "CN_PT_GUARDED_BY(", "CN_REQUIRES(",
              "CN_REQUIRES_SHARED(", "CN_ACQUIRE(", "CN_RELEASE(",
              "CN_EXCLUDES(", "CN_RETURN_CAPABILITY("}) {
          if (line.find(std::string(macro) + name + ")") !=
              std::string::npos) {
            consumed = true;
            break;
          }
        }
        if (consumed) break;
      }
      if (consumed) continue;
      findings->push_back(
          {file.path, static_cast<int>(i) + 1, std::string(id_for_static()),
           "Mutex '" + name +
               "' has no CN_GUARDED_BY/CN_REQUIRES consumers in this file; "
               "annotate the data it protects so -Wthread-safety can check "
               "its discipline"});
    }
  }

  static void CheckEscapeHatchJustified(const SourceFile& file,
                                        std::vector<Finding>* findings) {
    for (size_t i = 0; i < file.code.size(); ++i) {
      size_t pos =
          FindWholeWord(file.code[i], "CN_NO_THREAD_SAFETY_ANALYSIS");
      if (pos == std::string::npos) continue;
      bool justified =
          file.raw[i].find("//", pos) != std::string::npos ||
          (i > 0 && file.raw[i - 1].find("//") != std::string::npos);
      if (justified) continue;
      findings->push_back(
          {file.path, static_cast<int>(i) + 1, std::string(id_for_static()),
           "CN_NO_THREAD_SAFETY_ANALYSIS without a justification comment on "
           "this line or the line above; say why the analysis is wrong here "
           "(see docs/static-analysis.md escape-hatch policy)"});
    }
  }

  /// `[mutable] Mutex name;` at the start of a line — the member-declaration
  /// shape. References, pointers, and function signatures never match.
  static std::string DeclaredMutexName(const std::string& line) {
    size_t pos = SkipSpaces(line, 0);
    if (IsWholeWordAt(line, pos, "mutable")) {
      pos = SkipSpaces(line, pos + 7);
    }
    if (!IsWholeWordAt(line, pos, "Mutex")) return "";
    pos = SkipSpaces(line, pos + 5);
    std::string name;
    while (pos < line.size() && IsIdentChar(line[pos])) {
      name.push_back(line[pos]);
      ++pos;
    }
    if (name.empty()) return "";
    pos = SkipSpaces(line, pos);
    if (pos >= line.size() || line[pos] != ';') return "";
    return name;
  }

  static std::string_view id_for_static() {
    return "coursenav-mutex-annotation";
  }
};

// ---------------------------------------------------------------------------
// coursenav-lock-order
// ---------------------------------------------------------------------------

/// Flow-aware, per-file deadlock screening. The pass tracks brace depth
/// through each file's scrubbed text, models every scoped-lock declaration
/// (MutexLock, std::lock_guard/unique_lock/scoped_lock/shared_lock) as an
/// acquisition that lives until its scope closes, and records the
/// held-before-acquired edges. Three things fire:
///   - acquiring a lock whose (normalized) name is already held;
///   - acquiring against the declared global order (LockOrder(), loaded
///     from tools/lint/lock_order.txt — outermost first);
///   - a cycle among this file's acquisition edges.
/// Names are normalized to the final member component (`ticket->mu` → mu),
/// so the ordering is a discipline over name suffixes — which is exactly
/// how the registry is written.
class LockOrderRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-lock-order"; }
  std::string_view description() const override {
    return "derives each file's lock-acquisition graph from scoped-lock "
           "sites and rejects self-reacquisition, declared-order "
           "violations, and cycles";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    // The wrapper adopts an already-held std::mutex inside CondVar::Wait;
    // that is a handoff, not a second acquisition.
    if (file.path.find("util/mutex.h") != std::string::npos) return;

    struct Held {
      std::string name;
      int depth;
      int line;
    };
    struct Edge {
      std::string from;
      std::string to;
      int line;
    };
    std::vector<Held> held;
    std::vector<Edge> edges;
    std::set<std::pair<std::string, std::string>> seen_edges;

    // One pass over the joined scrubbed text so declarations spanning
    // lines still parse and brace depth carries across lines.
    std::string joined;
    std::vector<size_t> line_starts;
    for (const std::string& line : file.code) {
      line_starts.push_back(joined.size());
      joined += line;
      joined += '\n';
    }
    auto line_of = [&line_starts](size_t offset) {
      size_t lo = 0, hi = line_starts.size();
      while (lo + 1 < hi) {
        size_t mid = (lo + hi) / 2;
        if (line_starts[mid] <= offset) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return static_cast<int>(lo) + 1;
    };

    int depth = 0;
    size_t pos = 0;
    while (pos < joined.size()) {
      std::string name;
      size_t after = MatchAcquisition(joined, pos, &name);
      if (after != 0) {
        int line = line_of(pos);
        for (const Held& h : held) {
          if (h.name == name) {
            findings->push_back(
                {file.path, line, std::string(id()),
                 "acquires '" + name + "' while a '" + name +
                     "' acquired at line " + std::to_string(h.line) +
                     " is still held (self-deadlock)"});
            break;
          }
        }
        if (!held.empty()) {
          const Held& innermost = held.back();
          int held_rank = RankOf(innermost.name);
          int new_rank = RankOf(name);
          if (held_rank >= 0 && new_rank >= 0 && new_rank < held_rank) {
            findings->push_back(
                {file.path, line, std::string(id()),
                 "lock-order violation: acquires '" + name +
                     "' while holding '" + innermost.name +
                     "', against the declared order in "
                     "tools/lint/lock_order.txt (outermost first)"});
          }
          if (innermost.name != name &&
              seen_edges.emplace(innermost.name, name).second) {
            edges.push_back({innermost.name, name, line});
          }
        }
        held.push_back({std::move(name), depth, line});
        pos = after;
        continue;
      }
      char c = joined[pos];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      ++pos;
    }

    ReportCycles(file, edges, findings);
  }

 private:
  /// When `text[pos...]` opens a scoped-lock declaration, returns the
  /// offset just past its first constructor argument and stores the
  /// normalized mutex name; returns 0 otherwise.
  static size_t MatchAcquisition(const std::string& text, size_t pos,
                                 std::string* name) {
    static constexpr std::string_view kScopedLocks[] = {
        "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
        "shared_lock"};
    std::string_view matched;
    for (std::string_view keyword : kScopedLocks) {
      if (IsWholeWordAt(text, pos, keyword)) {
        matched = keyword;
        break;
      }
    }
    if (matched.empty()) return 0;
    size_t cursor = pos + matched.size();
    // Optional template argument list: std::lock_guard<std::mutex>.
    cursor = SkipSpaces(text, cursor);
    if (cursor < text.size() && text[cursor] == '<') {
      int angle = 0;
      while (cursor < text.size()) {
        if (text[cursor] == '<') ++angle;
        if (text[cursor] == '>' && --angle == 0) {
          ++cursor;
          break;
        }
        ++cursor;
      }
    }
    // Variable name, then the constructor's parenthesized argument list.
    cursor = SkipSpaces(text, cursor);
    size_t var_begin = cursor;
    while (cursor < text.size() && IsIdentChar(text[cursor])) ++cursor;
    if (cursor == var_begin) return 0;  // a type mention, not a declaration
    cursor = SkipSpaces(text, cursor);
    if (cursor >= text.size() || text[cursor] != '(') return 0;
    size_t arg_begin = cursor + 1;
    int paren = 0;
    size_t arg_end = std::string::npos;
    for (size_t i = cursor; i < text.size(); ++i) {
      if (text[i] == '(') ++paren;
      if (text[i] == ')' && --paren == 0) {
        if (arg_end == std::string::npos) arg_end = i;
        break;
      }
      if (text[i] == ',' && paren == 1 && arg_end == std::string::npos) {
        arg_end = i;
      }
    }
    if (arg_end == std::string::npos) return 0;
    *name = NormalizeMutexExpr(text.substr(arg_begin, arg_end - arg_begin));
    if (name->empty()) return 0;
    return arg_end;
  }

  /// `ticket->mu` → "mu", `*stripe.mu` → "mu", `SinkMutex()` →
  /// "SinkMutex": the final member component, dereference/call syntax
  /// stripped.
  static std::string NormalizeMutexExpr(std::string expr) {
    std::string compact;
    for (char c : expr) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        compact.push_back(c);
      }
    }
    size_t dot = compact.find_last_of('.');
    size_t arrow = compact.rfind("->");
    size_t cut = std::string::npos;
    if (dot != std::string::npos) cut = dot + 1;
    if (arrow != std::string::npos &&
        (cut == std::string::npos || arrow + 2 > cut)) {
      cut = arrow + 2;
    }
    if (cut != std::string::npos) compact = compact.substr(cut);
    while (!compact.empty() && (compact.front() == '*' ||
                                compact.front() == '&')) {
      compact.erase(compact.begin());
    }
    if (compact.size() >= 2 &&
        compact.compare(compact.size() - 2, 2, "()") == 0) {
      compact.resize(compact.size() - 2);
    }
    // Anything still carrying syntax is an expression the pass cannot
    // name reliably; skip it rather than invent edges.
    for (char c : compact) {
      if (!IsIdentChar(c)) return "";
    }
    return compact;
  }

  static int RankOf(const std::string& name) {
    const std::vector<std::string>& order = LockOrder();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  template <typename EdgeVec>
  static void ReportCycles(const SourceFile& file, const EdgeVec& edges,
                           std::vector<Finding>* findings) {
    // DFS over the (deduplicated) per-file edge graph; each back edge is a
    // cycle and is reported at the back edge's acquisition site.
    std::map<std::string, std::vector<size_t>> out;
    for (size_t i = 0; i < edges.size(); ++i) {
      out[edges[i].from].push_back(i);
    }
    std::set<std::string> done;
    for (const auto& [start, unused] : out) {
      (void)unused;
      if (done.count(start) != 0) continue;
      std::vector<std::string> stack;
      std::set<std::string> on_stack;
      std::function<void(const std::string&)> visit =
          [&](const std::string& node) {
            stack.push_back(node);
            on_stack.insert(node);
            auto it = out.find(node);
            if (it != out.end()) {
              for (size_t edge_index : it->second) {
                const auto& edge = edges[edge_index];
                if (on_stack.count(edge.to) != 0) {
                  std::ostringstream os;
                  os << "lock-order cycle: ";
                  bool in_cycle = false;
                  for (const std::string& n : stack) {
                    if (n == edge.to) in_cycle = true;
                    if (in_cycle) os << "'" << n << "' -> ";
                  }
                  os << "'" << edge.to
                     << "'; some thread interleaving deadlocks";
                  findings->push_back({file.path, edge.line,
                                       std::string("coursenav-lock-order"),
                                       os.str()});
                } else if (done.count(edge.to) == 0) {
                  visit(edge.to);
                }
              }
            }
            on_stack.erase(node);
            stack.pop_back();
            done.insert(node);
          };
      visit(start);
    }
  }
};

// ---------------------------------------------------------------------------
// coursenav-hot-path
// ---------------------------------------------------------------------------

/// Regions bracketed by own-line `// coursenav:hot` ... `// coursenav:hot-end`
/// comments are the measured inner loops (the SIMD kernels, the DNF batch
/// evaluators, the batched pruning verdict loop). Inside them three token
/// families are banned outright: allocation, blocking syscalls/streams, and
/// lock acquisition — each is a latency cliff the benchmarks will not
/// forgive. The markers must start their comment line so mentions inside
/// string literals or trailing remarks never open a region.
class HotPathRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-hot-path"; }
  std::string_view description() const override {
    return "bans allocation, blocking calls, and lock acquisition inside "
           "// coursenav:hot regions";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    struct BannedToken {
      std::string_view token;
      std::string_view category;
    };
    static constexpr BannedToken kBanned[] = {
        {"new", "allocates"},
        {"malloc", "allocates"},
        {"calloc", "allocates"},
        {"realloc", "allocates"},
        {"make_unique", "allocates"},
        {"make_shared", "allocates"},
        {"push_back", "may allocate"},
        {"emplace_back", "may allocate"},
        {"emplace", "may allocate"},
        {"resize", "may allocate"},
        {"reserve", "may allocate"},
        {"sleep_for", "blocks"},
        {"sleep_until", "blocks"},
        {"usleep", "blocks"},
        {"nanosleep", "blocks"},
        {"recv", "blocks"},
        {"send", "blocks"},
        {"accept", "blocks"},
        {"connect", "blocks"},
        {"poll", "blocks"},
        {"select", "blocks"},
        {"fopen", "blocks"},
        {"fread", "blocks"},
        {"fwrite", "blocks"},
        {"fprintf", "blocks"},
        {"printf", "blocks"},
        {"fsync", "blocks"},
        {"cout", "blocks"},
        {"cerr", "blocks"},
        {"lock_guard", "acquires a lock"},
        {"unique_lock", "acquires a lock"},
        {"scoped_lock", "acquires a lock"},
        {"shared_lock", "acquires a lock"},
        {"MutexLock", "acquires a lock"},
        {"CondVar", "acquires a lock"},
    };
    bool in_hot = false;
    int open_line = 0;
    for (size_t i = 0; i < file.raw.size(); ++i) {
      int marker = MarkerOn(file.raw[i]);
      if (marker == kMarkerEnd) {
        if (!in_hot) {
          findings->push_back(
              {file.path, static_cast<int>(i) + 1, std::string(id()),
               "coursenav:hot-end without an open coursenav:hot region"});
        }
        in_hot = false;
        continue;
      }
      if (marker == kMarkerBegin) {
        if (in_hot) {
          findings->push_back(
              {file.path, static_cast<int>(i) + 1, std::string(id()),
               "coursenav:hot region opened inside the region from line " +
                   std::to_string(open_line) + "; close it first"});
        }
        in_hot = true;
        open_line = static_cast<int>(i) + 1;
        continue;
      }
      if (!in_hot) continue;
      const std::string& line = file.code[i];
      for (const BannedToken& banned : kBanned) {
        if (FindWholeWord(line, banned.token) == std::string::npos) continue;
        std::ostringstream os;
        os << "'" << banned.token << "' " << banned.category
           << " inside the coursenav:hot region from line " << open_line
           << "; hoist it out of the kernel or un-tag the region";
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()), os.str()});
        break;  // one finding per line
      }
    }
    if (in_hot) {
      findings->push_back(
          {file.path, open_line, std::string(id()),
           "unclosed coursenav:hot region: add // coursenav:hot-end where "
           "the kernel ends"});
    }
  }

 private:
  static constexpr int kMarkerNone = 0;
  static constexpr int kMarkerBegin = 1;
  static constexpr int kMarkerEnd = 2;

  /// Markers count only as own-line comments whose tag leads the comment
  /// text: `// coursenav:hot — why`. A tag inside a string literal starts
  /// with `"` and a prose mention mid-comment trails other words; neither
  /// matches.
  static int MarkerOn(const std::string& raw_line) {
    size_t pos = SkipSpaces(raw_line, 0);
    if (raw_line.compare(pos, 2, "//") != 0) return kMarkerNone;
    pos += 2;
    while (pos < raw_line.size() &&
           (raw_line[pos] == '/' || raw_line[pos] == ' ')) {
      ++pos;
    }
    if (raw_line.compare(pos, 17, "coursenav:hot-end") == 0) {
      return kMarkerEnd;
    }
    if (raw_line.compare(pos, 13, "coursenav:hot") == 0) return kMarkerBegin;
    return kMarkerNone;
  }
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// True when `raw_line` carries `NOLINT(...)` naming `rule` (exact id in a
/// comma-separated list). Every NOLINT occurrence on the line is honored,
/// so a trailing suppression still works on a line whose code or literals
/// themselves mention NOLINT.
bool IsSuppressed(const std::string& raw_line, const std::string& rule) {
  for (size_t pos = raw_line.find("NOLINT("); pos != std::string::npos;
       pos = raw_line.find("NOLINT(", pos + 1)) {
    size_t close = raw_line.find(')', pos);
    if (close == std::string::npos) continue;
    std::string list = raw_line.substr(pos + 7, close - pos - 7);
    size_t start = 0;
    while (start <= list.size()) {
      size_t comma = list.find(',', start);
      std::string entry = list.substr(
          start,
          comma == std::string::npos ? std::string::npos : comma - start);
      size_t first = entry.find_first_not_of(" \t");
      size_t last = entry.find_last_not_of(" \t");
      if (first != std::string::npos &&
          entry.substr(first, last - first + 1) == rule) {
        return true;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return false;
}

/// The synthesized rule id for NOLINT hygiene findings.
constexpr std::string_view kNolintRuleId = "coursenav-nolint";

/// Flags NOLINT suppressions naming rules this linter does not have: a
/// typo in a suppression silently un-suppresses nothing and keeps shipping
/// a stale marker. Only `coursenav*` entries are validated — clang-tidy
/// ids share the NOLINT syntax and pass through untouched.
void ValidateNolintRules(const SourceFile& file,
                         std::vector<Finding>* findings) {
  static const std::set<std::string>& known = *[] {
    auto* ids = new std::set<std::string>;  // NOLINT(coursenav-raw-new)
    for (const Rule* rule : AllRules()) ids->insert(std::string(rule->id()));
    ids->insert(std::string(kNolintRuleId));
    return ids;
  }();
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& raw_line = file.raw[i];
    for (size_t pos = raw_line.find("NOLINT("); pos != std::string::npos;
         pos = raw_line.find("NOLINT(", pos + 1)) {
      size_t close = raw_line.find(')', pos);
      if (close == std::string::npos) continue;
      std::string list = raw_line.substr(pos + 7, close - pos - 7);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string entry = list.substr(
            start,
            comma == std::string::npos ? std::string::npos : comma - start);
        size_t first = entry.find_first_not_of(" \t");
        size_t last = entry.find_last_not_of(" \t");
        if (first != std::string::npos) {
          std::string name = entry.substr(first, last - first + 1);
          if (name.rfind("coursenav", 0) == 0 && known.count(name) == 0) {
            findings->push_back(
                {file.path, static_cast<int>(i) + 1,
                 std::string(kNolintRuleId),
                 "NOLINT names unknown rule '" + name +
                     "'; see coursenav-lint --list-rules"});
          }
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }
}

/// Runs `rules` plus the driver-level NOLINT validation over a prepared
/// file, applies suppression, and sorts. When `rule_nanos` is non-null it
/// receives one per-rule duration (same indexing as `rules`, plus a final
/// slot for the NOLINT validation pass).
std::vector<Finding> CheckPrepared(const SourceFile& file,
                                   const std::vector<const Rule*>& rules,
                                   std::vector<int64_t>* rule_nanos = nullptr) {
  std::vector<Finding> findings;
  if (rule_nanos != nullptr) rule_nanos->assign(rules.size() + 1, 0);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (rule_nanos == nullptr) {
      rules[r]->Check(file, &findings);
    } else {
      auto begin = std::chrono::steady_clock::now();
      rules[r]->Check(file, &findings);
      (*rule_nanos)[r] = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - begin)
                             .count();
    }
  }
  {
    auto begin = std::chrono::steady_clock::now();
    ValidateNolintRules(file, &findings);
    if (rule_nanos != nullptr) {
      rule_nanos->back() =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - begin)
              .count();
    }
  }
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    size_t index = static_cast<size_t>(finding.line) - 1;
    if (index < file.raw.size() && IsSuppressed(file.raw[index], finding.rule)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace

const std::vector<const Rule*>& AllRules() {
  static const LayeringRule layering;
  static const BannedSymbolRule banned_symbol;
  static const RawNewDeleteRule raw_new;
  static const SimdEncapsulationRule simd_encapsulation;
  static const UnorderedIterationRule unordered_iter;
  static const EndlRule endl_rule;
  static const HeaderGuardRule header_guard;
  static const DirectGenerateRule direct_generate;
  static const MutexAnnotationRule mutex_annotation;
  static const LockOrderRule lock_order;
  static const HotPathRule hot_path;
  static const std::vector<const Rule*> rules{
      &layering,    &banned_symbol, &raw_new,         &simd_encapsulation,
      &unordered_iter, &endl_rule,  &header_guard,    &direct_generate,
      &mutex_annotation, &lock_order, &hot_path,
  };
  return rules;
}

namespace {

std::vector<std::string>& MutableLockOrder() {
  // Outermost first; mirrors tools/lint/lock_order.txt, which RunLint
  // reloads when scanning a tree that carries the file.
  static std::vector<std::string> order{"lifecycle_mu_", "slo_mu_", "mu_",
                                        "mu"};
  return order;
}

}  // namespace

const std::vector<std::string>& LockOrder() { return MutableLockOrder(); }

void SetLockOrder(std::vector<std::string> order) {
  MutableLockOrder() = std::move(order);
}

std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content) {
  SourceFile file = PrepareSource(path, content);
  return CheckPrepared(file, AllRules());
}

std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content,
                                 std::string_view rule_id) {
  SourceFile file = PrepareSource(path, content);
  std::vector<const Rule*> selected;
  for (const Rule* rule : AllRules()) {
    if (rule->id() == rule_id) selected.push_back(rule);
  }
  return CheckPrepared(file, selected);
}

namespace {

bool IsLintableFile(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsSkippedDir(const std::filesystem::path& path) {
  std::string name = path.filename().string();
  return (!name.empty() && name[0] == '.') || name.rfind("build", 0) == 0;
}

}  // namespace

namespace {

/// Loads the lock-order registry from `<base>/tools/lint/lock_order.txt`
/// when the scanned tree carries one (blank lines and `#` comments
/// skipped), so out-of-tree checkouts lint against their own ordering.
void MaybeReloadLockOrder(const std::filesystem::path& base) {
  std::ifstream in(base / "tools" / "lint" / "lock_order.txt");
  if (!in) return;
  std::vector<std::string> order;
  std::string line;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    size_t last = line.find_last_not_of(" \t\r");
    order.push_back(line.substr(first, last - first + 1));
  }
  if (!order.empty()) SetLockOrder(std::move(order));
}

}  // namespace

int RunLint(const std::string& root, const std::vector<std::string>& paths,
            const RunOptions& options, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path base = root.empty() ? fs::current_path() : fs::path(root);
  MaybeReloadLockOrder(base);

  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    fs::path path = fs::path(arg).is_absolute() ? fs::path(arg) : base / arg;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(path, ec), end;
      if (ec) {
        err << "coursenav-lint: cannot read directory " << path.string()
            << "\n";
        return 1;
      }
      for (; it != end; ++it) {
        if (it->is_directory() && IsSkippedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsLintableFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      err << "coursenav-lint: no such file or directory: " << arg << "\n";
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  const std::vector<const Rule*>& rules = AllRules();
  // Stats row layout: one per rule, then NOLINT validation, then prepare.
  const size_t kNolintRow = rules.size();
  const size_t kPrepareRow = rules.size() + 1;
  std::vector<std::atomic<int64_t>> row_nanos(rules.size() + 2);
  std::vector<std::atomic<int64_t>> row_findings(rules.size() + 2);
  for (auto& n : row_nanos) n.store(0);
  for (auto& n : row_findings) n.store(0);

  // Each worker claims file indices off a shared counter and buffers its
  // per-file output, so findings print in the sorted-path order regardless
  // of scheduling.
  struct FileResult {
    std::string findings_text;
    std::string error_text;
    int findings = 0;
  };
  std::vector<FileResult> results(files.size());
  std::atomic<size_t> next_file{0};
  auto scan_worker = [&]() {
    std::vector<int64_t> rule_nanos;
    for (size_t index = next_file.fetch_add(1); index < files.size();
         index = next_file.fetch_add(1)) {
      const fs::path& file = files[index];
      FileResult& result = results[index];
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        result.error_text =
            "coursenav-lint: cannot open " + file.string() + "\n";
        result.findings = 1;
        continue;
      }
      std::ostringstream content;
      content << in.rdbuf();
      // Report paths relative to the root for stable, clickable output.
      std::error_code ec;
      fs::path display = fs::relative(file, base, ec);
      if (ec || display.empty()) display = file;

      auto prepare_begin = std::chrono::steady_clock::now();
      SourceFile prepared =
          PrepareSource(display.generic_string(), content.str());
      row_nanos[kPrepareRow].fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - prepare_begin)
              .count(),
          std::memory_order_relaxed);

      std::vector<Finding> findings =
          CheckPrepared(prepared, rules, options.stats ? &rule_nanos : nullptr);
      if (options.stats) {
        for (size_t r = 0; r < rules.size(); ++r) {
          row_nanos[r].fetch_add(rule_nanos[r], std::memory_order_relaxed);
        }
        row_nanos[kNolintRow].fetch_add(rule_nanos.back(),
                                        std::memory_order_relaxed);
        for (const Finding& finding : findings) {
          for (size_t r = 0; r < rules.size(); ++r) {
            if (finding.rule == rules[r]->id()) {
              row_findings[r].fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
          if (finding.rule == kNolintRuleId) {
            row_findings[kNolintRow].fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      std::string text;
      for (const Finding& finding : findings) {
        text += finding.ToString();
        text += '\n';
      }
      result.findings_text = std::move(text);
      result.findings = static_cast<int>(findings.size());
    }
  };

  int jobs = std::clamp(options.jobs, 1, 64);
  if (jobs > 1 && files.size() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(jobs));
    for (int j = 0; j < jobs; ++j) workers.emplace_back(scan_worker);
    for (std::thread& worker : workers) worker.join();
  } else {
    scan_worker();
  }

  int total = 0;
  for (const FileResult& result : results) {
    if (!result.error_text.empty()) err << result.error_text;
    if (!result.findings_text.empty()) out << result.findings_text;
    total += result.findings;
  }

  if (options.stats) {
    auto row = [&out](std::string_view label, int64_t nanos,
                      int64_t findings) {
      out << "  " << label;
      for (size_t pad = label.size(); pad < 32; ++pad) out << ' ';
      std::ostringstream ms;
      ms.setf(std::ios::fixed);
      ms.precision(2);
      ms << static_cast<double>(nanos) / 1e6;
      std::string ms_text = ms.str();
      for (size_t pad = ms_text.size(); pad < 10; ++pad) out << ' ';
      out << ms_text << " ms  " << findings << " finding"
          << (findings == 1 ? "" : "s") << "\n";
    };
    out << "coursenav-lint --stats: " << files.size() << " files, " << jobs
        << " job" << (jobs == 1 ? "" : "s") << "\n";
    row("prepare", row_nanos[kPrepareRow].load(), 0);
    for (size_t r = 0; r < rules.size(); ++r) {
      row(rules[r]->id(), row_nanos[r].load(), row_findings[r].load());
    }
    row(kNolintRuleId, row_nanos[kNolintRow].load(),
        row_findings[kNolintRow].load());
  }
  return total;
}

int RunLint(const std::string& root, const std::vector<std::string>& paths,
            std::ostream& out, std::ostream& err) {
  return RunLint(root, paths, RunOptions{}, out, err);
}

}  // namespace coursenav::lint

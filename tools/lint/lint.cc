#include "lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace coursenav::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+token)` is `token` as a whole word: not glued
/// to an identifier character on either side.
bool IsWholeWordAt(const std::string& text, size_t pos,
                   std::string_view token) {
  if (pos + token.size() > text.size()) return false;
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsIdentChar(text[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < text.size() && IsIdentChar(text[end])) return false;
  return true;
}

/// Finds `token` as a whole word in `text` starting at `from`; npos if
/// absent.
size_t FindWholeWord(const std::string& text, std::string_view token,
                     size_t from = 0) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (IsWholeWordAt(text, pos, token)) return pos;
  }
  return std::string::npos;
}

size_t SkipSpaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string NormalizeSlashes(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// The first directory component after an `src/` component, when it is a
/// known module name; "" otherwise.
std::string ModuleOf(const std::string& path) {
  static const std::set<std::string> kModules = {
      "util", "expr", "catalog", "graph",   "flow",         "obs",
      "data", "core", "exec",    "parsers", "requirements", "plan",
      "service", "serve"};
  std::string needle = "src/";
  size_t pos = path.rfind(needle);
  if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
    size_t start = pos + needle.size();
    size_t slash = path.find('/', start);
    if (slash != std::string::npos) {
      std::string module = path.substr(start, slash - start);
      if (kModules.count(module) != 0) return module;
    }
  }
  return "";
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

SourceFile PrepareSource(std::string_view path, std::string_view content) {
  SourceFile file;
  file.path = NormalizeSlashes(path);
  file.module = ModuleOf(file.path);
  file.is_header = file.path.size() >= 2 &&
                   (file.path.rfind(".h") == file.path.size() - 2 ||
                    (file.path.size() >= 4 &&
                     file.path.rfind(".hpp") == file.path.size() - 4));

  // Split into lines, then scrub a parallel "code" view with a small state
  // machine. Comment text and literal contents become spaces (delimiters
  // stay), so every rule's token scan is blind to both; the raw view keeps
  // NOLINT markers and the deterministic tag readable.
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_string_closer;  // e.g. `)delim"` for R"delim(...)delim"

  std::string raw_line;
  std::string code_line;
  auto flush_line = [&]() {
    file.raw.push_back(raw_line);
    file.code.push_back(code_line);
    raw_line.clear();
    code_line.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    raw_line.push_back(c);
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
        } else if (c == 'R' && next == '"' &&
                   (raw_line.size() < 2 ||
                    !IsIdentChar(raw_line[raw_line.size() - 2]))) {
          // Raw string literal: R"delim( ... )delim".
          size_t open = content.find('(', i + 2);
          std::string delim =
              open == std::string::npos
                  ? ""
                  : std::string(content.substr(i + 2, open - (i + 2)));
          raw_string_closer = ")" + delim + "\"";
          state = State::kRawString;
          code_line.push_back('R');
        } else if (c == '"') {
          state = State::kString;
          code_line.push_back('"');
        } else if (c == '\'' &&
                   !(raw_line.size() >= 2 &&
                     std::isdigit(static_cast<unsigned char>(
                         raw_line[raw_line.size() - 2])) != 0)) {
          // A quote after a digit is a C++14 digit separator (1'000'000),
          // not a character literal.
          state = State::kChar;
          code_line.push_back('\'');
        } else {
          code_line.push_back(c);
        }
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line.push_back('"');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_line.push_back(' ');
          code_line.push_back(' ');
          raw_line.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line.push_back('\'');
        } else {
          code_line.push_back(' ');
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_string_closer.size(), raw_string_closer) ==
            0) {
          // Emit the closer (minus the already-pushed char) and resume.
          for (size_t k = 1; k < raw_string_closer.size(); ++k) {
            raw_line.push_back(content[i + k]);
          }
          code_line.append(raw_string_closer.size(), ' ');
          i += raw_string_closer.size() - 1;
          state = State::kCode;
        } else {
          code_line.push_back(' ');
        }
        break;
    }
  }
  if (!raw_line.empty() || content.empty() ||
      content.back() != '\n') {
    flush_line();
  }

  for (const std::string& line : file.raw) {
    if (line.find("coursenav:deterministic") != std::string::npos) {
      file.deterministic = true;
      break;
    }
  }
  return file;
}

namespace {

// ---------------------------------------------------------------------------
// coursenav-layering
// ---------------------------------------------------------------------------

/// The module layering DAG (transitively closed). A file in module M may
/// include headers only from M itself and from kAllowedDeps[M]. Files
/// outside src/ (tools, tests, bench, examples) may include anything.
///
///   util → {expr, obs, flow} → catalog → graph → parsers
///                            ↘ requirements → core → {exec, data}
///                                                  → plan → service → serve
///
/// `plan` (the query planner/executor) sits between the engines and the
/// service facade: it may use core and exec, and only service (plus the
/// out-of-src tools/tests/bench) may use it. core must never include plan —
/// the Generate*Paths facades are declared in core but defined in
/// src/plan/facades.cc (dependency inversion).
///
/// Kept in sync with docs/static-analysis.md; changing an edge here is an
/// architectural decision, not a lint tweak.
const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>> deps{
      {"util", {}},
      {"expr", {"util"}},
      {"obs", {"util"}},
      {"flow", {"util"}},
      {"catalog", {"util", "expr"}},
      {"graph", {"util", "expr", "catalog"}},
      {"parsers", {"util", "expr", "catalog", "graph"}},
      {"requirements", {"util", "expr", "catalog", "flow", "obs"}},
      {"core",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements"}},
      {"exec",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements",
        "core"}},
      {"data",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core"}},
      {"plan",
       {"util", "expr", "catalog", "graph", "flow", "obs", "requirements",
        "core", "exec"}},
      {"service",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core", "exec", "data", "plan"}},
      {"serve",
       {"util", "expr", "catalog", "graph", "flow", "obs", "parsers",
        "requirements", "core", "exec", "data", "plan", "service"}},
  };
  return deps;
}

class LayeringRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-layering"; }
  std::string_view description() const override {
    return "enforces the src/ module include-layering DAG";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (file.module.empty()) return;
    auto allowed_it = AllowedDeps().find(file.module);
    if (allowed_it == AllowedDeps().end()) return;
    const std::set<std::string>& allowed = allowed_it->second;
    for (size_t i = 0; i < file.raw.size(); ++i) {
      std::string target = IncludeTargetModule(file.raw[i]);
      if (target.empty() || target == file.module) continue;
      if (allowed.count(target) != 0) continue;
      std::ostringstream os;
      os << "module '" << file.module << "' must not include from '"
         << target << "' (layering DAG: " << file.module << " may use ";
      if (allowed.empty()) {
        os << "nothing below it";
      } else {
        bool first = true;
        for (const std::string& dep : allowed) {
          os << (first ? "" : ", ") << dep;
          first = false;
        }
      }
      os << ")";
      findings->push_back(
          {file.path, static_cast<int>(i) + 1, std::string(id()), os.str()});
    }
  }

 private:
  /// For `#include "mod/header.h"` lines: the module component when it is
  /// one the DAG knows, "" otherwise.
  static std::string IncludeTargetModule(const std::string& raw_line) {
    size_t pos = SkipSpaces(raw_line, 0);
    if (pos >= raw_line.size() || raw_line[pos] != '#') return "";
    pos = SkipSpaces(raw_line, pos + 1);
    if (raw_line.compare(pos, 7, "include") != 0) return "";
    pos = SkipSpaces(raw_line, pos + 7);
    if (pos >= raw_line.size() || raw_line[pos] != '"') return "";
    size_t close = raw_line.find('"', pos + 1);
    if (close == std::string::npos) return "";
    std::string target = raw_line.substr(pos + 1, close - pos - 1);
    size_t slash = target.find('/');
    if (slash == std::string::npos) return "";
    std::string module = target.substr(0, slash);
    return AllowedDeps().count(module) != 0 ? module : "";
  }
};

// ---------------------------------------------------------------------------
// coursenav-banned-symbol
// ---------------------------------------------------------------------------

/// A symbol banned in some scope. `as_call` restricts the match to
/// call-syntax uses (`name(`) not qualified by `.`/`->`/`::`, so plain
/// words like a `time` struct field stay legal. An empty `allowed_modules`
/// set bans the symbol everywhere the linter looks, src/ or not.
struct BannedSymbol {
  std::string_view token;
  bool as_call;
  std::set<std::string, std::less<>> allowed_modules;
  std::string_view reason;
};

const std::vector<BannedSymbol>& BannedSymbols() {
  static const std::vector<BannedSymbol> symbols{
      {"rand", true, {}, "libc PRNG breaks run-to-run determinism; use util/random.h"},
      {"srand", true, {}, "libc PRNG breaks run-to-run determinism; use util/random.h"},
      {"strtok", true, {}, "not reentrant; use util/string_util.h splitting"},
      {"time", true, {}, "wall clock in the engine breaks determinism; use DeadlineBudget/Stopwatch"},
      {"std::chrono::system_clock", false, {}, "wall clock is not monotonic; use steady_clock via util/stopwatch.h"},
      // The monotonic clock is fine in the substrate that owns timing
      // (stopwatch/deadlines, tracing, worker pool, service surface) but
      // banned in the pure algorithmic layers, which must stay replayable.
      {"std::chrono::steady_clock", false,
       {"util", "obs", "exec", "service", "serve"},
       "algorithmic layers must be clock-free; thread a DeadlineBudget through instead"},
  };
  return symbols;
}

class BannedSymbolRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-banned-symbol"; }
  std::string_view description() const override {
    return "bans nondeterminism/portability hazards (rand, time, "
           "system_clock, strtok), scoped per module";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    for (const BannedSymbol& symbol : BannedSymbols()) {
      // Module-scoped bans police the src/ layering only; files outside
      // src/ (bench, tests, tools) may use e.g. steady_clock freely.
      if (!symbol.allowed_modules.empty() &&
          (file.module.empty() ||
           symbol.allowed_modules.count(file.module) != 0)) {
        continue;
      }
      for (size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (size_t pos = FindWholeWord(line, symbol.token);
             pos != std::string::npos;
             pos = FindWholeWord(line, symbol.token, pos + 1)) {
          if (symbol.as_call && !IsUnqualifiedCallAt(line, pos, symbol.token)) {
            continue;
          }
          std::ostringstream os;
          os << "banned symbol '" << symbol.token << "': " << symbol.reason;
          findings->push_back({file.path, static_cast<int>(i) + 1,
                               std::string(id()), os.str()});
          break;  // one finding per line per symbol
        }
      }
    }
  }

 private:
  static bool IsUnqualifiedCallAt(const std::string& line, size_t pos,
                                  std::string_view token) {
    // Qualified (`x.time(`, `t->time(`, `Foo::time(`) uses are members in
    // someone else's namespace, not the libc symbol.
    if (pos >= 1 && (line[pos - 1] == '.' || line[pos - 1] == ':')) {
      return false;
    }
    if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') return false;
    size_t after = SkipSpaces(line, pos + token.size());
    return after < line.size() && line[after] == '(';
  }
};

// ---------------------------------------------------------------------------
// coursenav-raw-new
// ---------------------------------------------------------------------------

class RawNewDeleteRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-raw-new"; }
  std::string_view description() const override {
    return "bans raw new/delete outside arena code (use make_unique or the "
           "chunked arenas)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    // The arena implementation itself placement-news into its chunks.
    if (file.path.find("util/chunked_vector.h") != std::string::npos) return;
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      if (HasRawNewOrDelete(line, "new") || HasRawNewOrDelete(line, "delete")) {
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             "raw new/delete: prefer std::make_unique/std::make_shared or "
             "the chunked-arena allocators (util/chunked_vector.h)"});
      }
    }
  }

 private:
  static bool HasRawNewOrDelete(const std::string& line,
                                std::string_view keyword) {
    for (size_t pos = FindWholeWord(line, keyword); pos != std::string::npos;
         pos = FindWholeWord(line, keyword, pos + 1)) {
      // `= delete;` / `= delete ;` — deleted special members are fine.
      if (keyword == "delete") {
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && line[before - 1] == '=') continue;
      }
      // `operator new` / `operator delete` declarations are allocator
      // customization points, not allocations.
      size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      if (before >= 8 && line.compare(before - 8, 8, "operator") == 0) {
        continue;
      }
      return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// coursenav-simd-encapsulation
// ---------------------------------------------------------------------------

class SimdEncapsulationRule : public Rule {
 public:
  std::string_view id() const override {
    return "coursenav-simd-encapsulation";
  }
  std::string_view description() const override {
    return "bans bit-manipulation builtins and vector intrinsics outside "
           "src/util/simd/ (use the coursenav::simd dispatch layer)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    // The dispatch layer is where the intrinsics are supposed to live.
    if (file.path.find("util/simd/") != std::string::npos) return;
    static constexpr std::string_view kBanned[] = {
        "__builtin_popcount", "__builtin_ctz", "__builtin_clz",
        "_mm_",               "_mm256_",       "_mm512_",
        "immintrin.h",        "arm_neon.h",
    };
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      for (std::string_view token : kBanned) {
        if (line.find(token) == std::string::npos) continue;
        std::ostringstream os;
        os << "'" << token
           << "' outside src/util/simd/: route set algebra through the "
              "coursenav::simd kernels (util/simd/simd.h) so every call "
              "site honors the runtime dispatch and the forced-scalar "
              "build";
        findings->push_back({file.path, static_cast<int>(i) + 1,
                             std::string(id()), os.str()});
        break;  // one finding per line
      }
    }
  }
};

// ---------------------------------------------------------------------------
// coursenav-unordered-iter
// ---------------------------------------------------------------------------

class UnorderedIterationRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-unordered-iter"; }
  std::string_view description() const override {
    return "forbids iterating unordered containers in files tagged "
           "// coursenav:deterministic";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (!file.deterministic) return;
    // Pass 1: names declared in this file with an unordered container type
    // (heuristic, token-level: `unordered_xxx<...> name`).
    std::set<std::string> unordered_names = CollectUnorderedNames(file);
    // Pass 2: flag range-for over (a) anything mentioning `unordered_`
    // directly, or (b) a name from pass 1; and `.begin()`/`.cbegin()` on a
    // pass-1 name (manual iterator loops).
    for (size_t i = 0; i < file.code.size(); ++i) {
      const std::string& line = file.code[i];
      std::string culprit = RangeForUnorderedCulprit(line, unordered_names);
      if (culprit.empty()) culprit = BeginOnUnordered(line, unordered_names);
      if (!culprit.empty()) {
        std::ostringstream os;
        os << "iteration over unordered container " << culprit
           << " in a deterministic-tagged file: hash-map order is not "
              "stable and must not feed output order; iterate a sorted "
              "snapshot or an ordered container instead";
        findings->push_back({file.path, static_cast<int>(i) + 1,
                             std::string(id()), os.str()});
      }
    }
  }

 private:
  static const std::array<std::string_view, 4>& UnorderedTypes() {
    static const std::array<std::string_view, 4> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return kTypes;
  }

  static std::set<std::string> CollectUnorderedNames(const SourceFile& file) {
    std::set<std::string> names;
    // Join the scrubbed file so declarations spanning lines still parse.
    std::string joined;
    for (const std::string& line : file.code) {
      joined += line;
      joined += '\n';
    }
    for (std::string_view type : UnorderedTypes()) {
      for (size_t pos = FindWholeWord(joined, type); pos != std::string::npos;
           pos = FindWholeWord(joined, type, pos + 1)) {
        size_t cursor = SkipSpaces(joined, pos + type.size());
        if (cursor >= joined.size() || joined[cursor] != '<') continue;
        // Skip the balanced template argument list.
        int depth = 0;
        while (cursor < joined.size()) {
          if (joined[cursor] == '<') ++depth;
          if (joined[cursor] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        if (cursor >= joined.size()) continue;
        cursor = SkipSpaces(joined, cursor + 1);
        // `unordered_map<K, V> name` — capture `name`. Declarations used
        // as template args / return types yield no identifier here and are
        // skipped.
        std::string name;
        while (cursor < joined.size() && IsIdentChar(joined[cursor])) {
          name.push_back(joined[cursor]);
          ++cursor;
        }
        if (!name.empty()) names.insert(name);
      }
    }
    return names;
  }

  /// For `for (decl : range)` lines: a description of the unordered
  /// culprit in `range`, or "" when the range looks order-safe.
  static std::string RangeForUnorderedCulprit(
      const std::string& line, const std::set<std::string>& names) {
    size_t for_pos = FindWholeWord(line, "for");
    if (for_pos == std::string::npos) return "";
    size_t open = SkipSpaces(line, for_pos + 3);
    if (open >= line.size() || line[open] != '(') return "";
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t i = open; i < line.size(); ++i) {
      if (line[i] == '(') ++depth;
      if (line[i] == ')') --depth;
      if (depth == 1 && line[i] == ':' &&
          (i + 1 >= line.size() || line[i + 1] != ':') &&
          (i == 0 || line[i - 1] != ':')) {
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) return "";
    std::string range = line.substr(colon + 1);
    for (std::string_view type : UnorderedTypes()) {
      if (FindWholeWord(range, type) != std::string::npos) {
        return std::string("of type '") + std::string(type) + "'";
      }
    }
    for (const std::string& name : names) {
      if (FindWholeWord(range, name) != std::string::npos) {
        return "'" + name + "'";
      }
    }
    return "";
  }

  /// Flags `name.begin()` / `name.cbegin()` for known unordered names.
  static std::string BeginOnUnordered(const std::string& line,
                                      const std::set<std::string>& names) {
    for (const std::string& name : names) {
      for (std::string_view member : {".begin()", ".cbegin()"}) {
        std::string pattern = name + std::string(member);
        if (line.find(pattern) != std::string::npos) return "'" + name + "'";
      }
    }
    return "";
  }
};

// ---------------------------------------------------------------------------
// coursenav-endl
// ---------------------------------------------------------------------------

class EndlRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-endl"; }
  std::string_view description() const override {
    return "bans std::endl (flushes the stream; use '\\n')";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    for (size_t i = 0; i < file.code.size(); ++i) {
      if (FindWholeWord(file.code[i], "endl") != std::string::npos) {
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             "std::endl forces a flush on every use; write '\\n' and let "
             "the stream flush on its own schedule"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// coursenav-header-guard
// ---------------------------------------------------------------------------

class HeaderGuardRule : public Rule {
 public:
  std::string_view id() const override { return "coursenav-header-guard"; }
  std::string_view description() const override {
    return "headers must open with #pragma once or a matching "
           "#ifndef/#define guard";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (!file.is_header) return;
    // First two non-blank scrubbed lines decide the verdict.
    std::vector<std::pair<int, std::string>> head;
    for (size_t i = 0; i < file.code.size() && head.size() < 2; ++i) {
      std::string line = file.code[i];
      size_t start = SkipSpaces(line, 0);
      if (start >= line.size()) continue;
      head.emplace_back(static_cast<int>(i) + 1, line.substr(start));
    }
    if (head.empty()) return;  // empty header: nothing to protect
    const std::string& first = head[0].second;
    if (first.rfind("#pragma once", 0) == 0) return;
    std::string guard = DirectiveOperand(first, "#ifndef");
    if (guard.empty()) {
      findings->push_back(
          {file.path, head[0].first, std::string(id()),
           "header does not start with #pragma once or an #ifndef include "
           "guard"});
      return;
    }
    std::string defined =
        head.size() > 1 ? DirectiveOperand(head[1].second, "#define") : "";
    if (defined != guard) {
      findings->push_back(
          {file.path, head[0].first, std::string(id()),
           "#ifndef " + guard + " is not followed by #define " + guard});
      return;
    }
    // In-tree headers also follow the COURSENAV_<PATH>_H_ convention.
    std::string expected = ExpectedGuard(file.path);
    if (!expected.empty() && guard != expected) {
      findings->push_back({file.path, head[0].first, std::string(id()),
                           "include guard " + guard +
                               " does not match the path convention " +
                               expected});
    }
  }

 private:
  static std::string DirectiveOperand(const std::string& line,
                                      std::string_view directive) {
    if (line.rfind(directive, 0) != 0) return "";
    size_t pos = SkipSpaces(line, directive.size());
    std::string operand;
    while (pos < line.size() && IsIdentChar(line[pos])) {
      operand.push_back(line[pos]);
      ++pos;
    }
    return operand;
  }

  /// COURSENAV_<DIRS>_<STEM>_H_ for paths under src/; "" (no convention
  /// enforced) elsewhere.
  static std::string ExpectedGuard(const std::string& path) {
    size_t pos = path.rfind("src/");
    if (pos == std::string::npos ||
        (pos != 0 && path[pos - 1] != '/')) {
      return "";
    }
    std::string tail = path.substr(pos + 4);
    std::string guard = "COURSENAV_";
    for (char c : tail) {
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        guard.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
      } else {
        guard.push_back('_');
      }
    }
    guard += "_";  // trailing underscore after ..._H
    return guard;
  }
};

// ---------------------------------------------------------------------------
// coursenav-direct-generate
// ---------------------------------------------------------------------------

/// In-tree src/ code must reach the generators through the declarative
/// request pipeline (`CourseNavigator::Explore` / `plan::Execute`), not by
/// calling the Generate*Paths facades directly: a direct call skips the
/// planner (and with it plan rewrites, the Filter stage, and the plan's
/// serial/parallel decision). Exempt: the plan module itself (facades.cc
/// *implements* the symbols; the executor *is* the pipeline) and the three
/// core headers that declare the public API. Code outside src/ — tools,
/// tests, bench — may call the facades freely; they are the supported
/// entry points, and the golden-equivalence suite exists to compare them
/// against the pipeline.
class DirectGenerateRule : public Rule {
 public:
  std::string_view id() const override {
    return "coursenav-direct-generate";
  }
  std::string_view description() const override {
    return "src/ code must use the request pipeline, not call "
           "Generate*Paths directly (plan module and facade headers exempt)";
  }
  void Check(const SourceFile& file,
             std::vector<Finding>* findings) const override {
    if (file.module.empty() || file.module == "plan") return;
    static const char* kFacadeHeaders[] = {
        "src/core/deadline_generator.h",
        "src/core/goal_generator.h",
        "src/core/ranked_generator.h",
    };
    for (const char* header : kFacadeHeaders) {
      if (PathEndsWith(file.path, header)) return;
    }
    static const char* kFacades[] = {
        "GenerateDeadlineDrivenPaths",
        "GenerateGoalDrivenPaths",
        "GenerateRankedPaths",
    };
    for (size_t i = 0; i < file.code.size(); ++i) {
      for (const char* facade : kFacades) {
        if (FindWholeWord(file.code[i], facade) == std::string::npos) {
          continue;
        }
        findings->push_back(
            {file.path, static_cast<int>(i) + 1, std::string(id()),
             std::string("direct use of ") + facade +
                 " bypasses the planner pipeline; build an "
                 "ExplorationRequest and run it through "
                 "CourseNavigator::Explore or plan::Execute"});
      }
    }
  }

 private:
  static bool PathEndsWith(const std::string& path, std::string_view tail) {
    return path.size() >= tail.size() &&
           path.compare(path.size() - tail.size(), tail.size(), tail) == 0;
  }
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// True when `raw_line` carries `NOLINT(...)` naming `rule` (exact id in a
/// comma-separated list).
bool IsSuppressed(const std::string& raw_line, const std::string& rule) {
  size_t pos = raw_line.find("NOLINT(");
  if (pos == std::string::npos) return false;
  size_t close = raw_line.find(')', pos);
  if (close == std::string::npos) return false;
  std::string list = raw_line.substr(pos + 7, close - pos - 7);
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string entry = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    size_t first = entry.find_first_not_of(" \t");
    size_t last = entry.find_last_not_of(" \t");
    if (first != std::string::npos &&
        entry.substr(first, last - first + 1) == rule) {
      return true;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

std::vector<Finding> CheckPrepared(const SourceFile& file,
                                   const std::vector<const Rule*>& rules) {
  std::vector<Finding> findings;
  for (const Rule* rule : rules) {
    rule->Check(file, &findings);
  }
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    size_t index = static_cast<size_t>(finding.line) - 1;
    if (index < file.raw.size() && IsSuppressed(file.raw[index], finding.rule)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace

const std::vector<const Rule*>& AllRules() {
  static const LayeringRule layering;
  static const BannedSymbolRule banned_symbol;
  static const RawNewDeleteRule raw_new;
  static const SimdEncapsulationRule simd_encapsulation;
  static const UnorderedIterationRule unordered_iter;
  static const EndlRule endl_rule;
  static const HeaderGuardRule header_guard;
  static const DirectGenerateRule direct_generate;
  static const std::vector<const Rule*> rules{
      &layering,    &banned_symbol, &raw_new,         &simd_encapsulation,
      &unordered_iter, &endl_rule,  &header_guard,    &direct_generate,
  };
  return rules;
}

std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content) {
  SourceFile file = PrepareSource(path, content);
  return CheckPrepared(file, AllRules());
}

std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content,
                                 std::string_view rule_id) {
  SourceFile file = PrepareSource(path, content);
  std::vector<const Rule*> selected;
  for (const Rule* rule : AllRules()) {
    if (rule->id() == rule_id) selected.push_back(rule);
  }
  return CheckPrepared(file, selected);
}

namespace {

bool IsLintableFile(const std::filesystem::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool IsSkippedDir(const std::filesystem::path& path) {
  std::string name = path.filename().string();
  return (!name.empty() && name[0] == '.') || name.rfind("build", 0) == 0;
}

}  // namespace

int RunLint(const std::string& root, const std::vector<std::string>& paths,
            std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path base = root.empty() ? fs::current_path() : fs::path(root);

  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    fs::path path = fs::path(arg).is_absolute() ? fs::path(arg) : base / arg;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(path, ec), end;
      if (ec) {
        err << "coursenav-lint: cannot read directory " << path.string()
            << "\n";
        return 1;
      }
      for (; it != end; ++it) {
        if (it->is_directory() && IsSkippedDir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && IsLintableFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      err << "coursenav-lint: no such file or directory: " << arg << "\n";
      return 1;
    }
  }
  std::sort(files.begin(), files.end());

  int total = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "coursenav-lint: cannot open " << file.string() << "\n";
      ++total;
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    // Report paths relative to the root for stable, clickable output.
    std::error_code ec;
    fs::path display = fs::relative(file, base, ec);
    if (ec || display.empty()) display = file;
    std::vector<Finding> findings =
        LintContent(display.generic_string(), content.str());
    for (const Finding& finding : findings) {
      out << finding.ToString() << "\n";
    }
    total += static_cast<int>(findings.size());
  }
  return total;
}

}  // namespace coursenav::lint

// coursenav-lint CLI. Usage:
//
//   coursenav-lint [--root=DIR] [--jobs=N] [--stats] [--list-rules] PATH...
//
// Each PATH (file or directory, resolved against --root, default cwd) is
// scanned recursively for *.h/*.hpp/*.cc/*.cpp. Findings print to stdout
// as `file:line: [rule-id] message`; the exit code is 0 when the tree is
// clean, 1 when there are findings, 2 on usage errors. --jobs=N scans N
// files concurrently (output order is unchanged); --stats appends a
// per-rule timing table.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: coursenav-lint [--root=DIR] [--jobs=N] [--stats] "
         "[--list-rules] PATH...\n"
         "Project-specific static analysis for the CourseNavigator tree.\n"
         "Suppress a finding with // NOLINT(<rule-id>) on its line.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> paths;
  coursenav::lint::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    }
    if (arg == "--list-rules") {
      for (const coursenav::lint::Rule* rule : coursenav::lint::AllRules()) {
        std::cout << rule->id() << ": " << rule->description() << "\n";
      }
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
      continue;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      long jobs = std::strtol(arg.c_str() + std::strlen("--jobs="), &end, 10);
      if (end == nullptr || *end != '\0' || jobs < 1 || jobs > 64) {
        std::cerr << "coursenav-lint: --jobs wants an integer in [1, 64]\n";
        return Usage(std::cerr, 2);
      }
      options.jobs = static_cast<int>(jobs);
      continue;
    }
    if (arg == "--stats") {
      options.stats = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "coursenav-lint: unknown flag " << arg << "\n";
      return Usage(std::cerr, 2);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    return Usage(std::cerr, 2);
  }
  int findings =
      coursenav::lint::RunLint(root, paths, options, std::cout, std::cerr);
  if (findings > 0) {
    std::cerr << "coursenav-lint: " << findings << " finding"
              << (findings == 1 ? "" : "s") << "\n";
    return 1;
  }
  return 0;
}

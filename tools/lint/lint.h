#ifndef COURSENAV_TOOLS_LINT_LINT_H_
#define COURSENAV_TOOLS_LINT_LINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

// coursenav-lint: a project-specific, token/preprocessor-level static
// analyzer for the CourseNavigator source tree. It has no compiler
// dependency (no libclang): each file is scrubbed into a comment- and
// literal-free view and scanned by a fixed set of rules that encode the
// repo's own invariants — the module layering DAG, the determinism
// contract of the parallel frontier engine, and hot-path hygiene.
//
// Findings print as `file:line: [rule-id] message`. A finding on a line
// whose *raw* text carries `// NOLINT(<rule-id>)` (comma-separated ids
// allowed) is suppressed. See docs/static-analysis.md for the rule set.
//
// The library is deliberately standalone (std-only) so the linter builds
// before — and independently of — the libraries it polices.

namespace coursenav::lint {

/// One rule violation at a source location.
struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  /// "file:line: [rule-id] message" — the stable output format.
  std::string ToString() const;
};

/// A source file prepared for rule checks: raw lines plus a "code" view of
/// identical shape in which comment text and string/char literal contents
/// are blanked (delimiters kept), so token scans cannot fire inside either.
struct SourceFile {
  std::string path;    ///< display path, forward-slashed
  std::string module;  ///< "core" for src/core/..., "" outside src/
  bool is_header = false;
  bool deterministic = false;  ///< file carries `// coursenav:deterministic`
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

/// Builds the scrubbed views. `path` is used for module/header detection:
/// the module is the first directory component after an `src/` component.
SourceFile PrepareSource(std::string_view path, std::string_view content);

/// A pluggable check. Rules are stateless; one instance serves all files.
class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable id, e.g. "coursenav-layering" (this is what NOLINT names).
  virtual std::string_view id() const = 0;
  /// One-line description for --list-rules.
  virtual std::string_view description() const = 0;
  virtual void Check(const SourceFile& file,
                     std::vector<Finding>* findings) const = 0;
};

/// The default rule set, in reporting order. Pointers are owned by the
/// registry and live for the process lifetime.
const std::vector<const Rule*>& AllRules();

/// The declared lock-acquisition order, outermost first: code holding the
/// lock at index i may acquire locks at index > i, never the reverse. The
/// compiled-in default mirrors tools/lint/lock_order.txt; RunLint reloads
/// it from that file when present under the scan root.
const std::vector<std::string>& LockOrder();

/// Replaces the lock-order registry (tests and RunLint's registry reload).
/// Not safe to call concurrently with a running scan.
void SetLockOrder(std::vector<std::string> order);

/// Lints in-memory content with every rule (NOLINT suppression applied).
std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content);

/// Lints in-memory content with a single rule — the unit-test entry point.
/// Unknown `rule_id` yields no findings.
std::vector<Finding> LintContent(std::string_view path,
                                 std::string_view content,
                                 std::string_view rule_id);

/// Scan tuning for RunLint.
struct RunOptions {
  /// Worker threads scanning files. 1 = serial; findings print in the same
  /// deterministic (sorted-path) order either way.
  int jobs = 1;
  /// Print a per-rule timing/finding table to `out` after the findings.
  bool stats = false;
};

/// Recursively lints files (*.h, *.cc, *.cpp) under each of `paths`
/// (files or directories, resolved against `root`), printing findings to
/// `out`. Build directories and dotted directories are skipped. Returns
/// the number of findings; I/O failures print to `err` and count as one
/// finding each so the CLI exits nonzero.
int RunLint(const std::string& root, const std::vector<std::string>& paths,
            std::ostream& out, std::ostream& err);

/// RunLint with parallel scanning and optional per-rule stats.
int RunLint(const std::string& root, const std::vector<std::string>& paths,
            const RunOptions& options, std::ostream& out, std::ostream& err);

}  // namespace coursenav::lint

#endif  // COURSENAV_TOOLS_LINT_LINT_H_

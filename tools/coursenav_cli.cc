// coursenav — command-line front end to the CourseNavigator library.
//
// Subcommands:
//   explore   all learning paths to a deadline (Algorithm 1)
//   goal      goal-driven learning paths with pruning (§4.2)
//   topk      ranked top-k learning paths (§4.3)
//   request   run a declarative ExplorationRequest JSON file (docs/planner.md)
//   count     DAG-memoized path counting (no materialization)
//   options   the option set Y for one enrollment status
//   validate  check a catalog JSON file (and optionally transcripts)
//
// Every exploration subcommand builds a declarative ExplorationRequest and
// runs it through the planner/executor pipeline (src/plan/); --show-plan
// prints the lowered operator DAG before executing.
//
// The catalog comes from --catalog=<file.json> (see
// parsers/catalog_loader.h for the schema) or, with --demo, the bundled
// Brandeis-like evaluation dataset.
//
// Examples:
//   coursenav goal --demo --start "Fall 2013" --end "Fall 2015" --major
//   coursenav topk --demo --start F12 --end F15 --major --ranking time --k 5
//   coursenav explore --catalog dept.json --start "Fall 2014"
//       --end "Fall 2016" --max-per-term 2 --format dot
//   coursenav count --demo --start F12 --end F15 --goal "COSI11A and COSI21A"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/schedule_history.h"
#include "data/brandeis_cs.h"
#include "expr/parser.h"
#include "graph/analytics.h"
#include "graph/export.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parsers/catalog_loader.h"
#include "parsers/transcript_parser.h"
#include "plan/planner.h"
#include "requirements/expr_goal.h"
#include "serve/admin.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_server.h"
#include "service/degradation.h"
#include "service/navigator.h"
#include "service/visualizer.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace coursenav {
namespace {

constexpr const char* kUsage = R"USAGE(usage: coursenav <command> [flags]

commands:
  explore    all learning paths to a deadline (deadline-driven)
  goal       goal-driven learning paths with pruning
  topk       ranked top-k learning paths
  request    run a declarative ExplorationRequest JSON file
  count      count paths without materializing the graph
  options    show the option set for one status
  audit      degree-audit a completed-course set (demo major)
  validate   validate a catalog JSON file (and optional transcripts)
  serve      run the multi-tenant exploration server (TCP, length-prefixed
             JSON frames; see docs/serving.md)
  replay     replay a JSONL file of request envelopes against a server
  admin      query a running server's admin plane (/metrics, /healthz,
             /statusz) and print the response body

common flags:
  --catalog=<file>     catalog+schedule JSON (or --demo for the bundled one)
  --demo               use the bundled 38-course evaluation dataset
  --start=<term>       start semester, e.g. "Fall 2013" or F13
  --end=<term>         end semester (deadline)
  --completed=A,B      already-completed course codes
  --max-per-term=<m>   course load limit (default 3)
  --avoid=A,B          courses never to take
  --max-nodes=<n>      node budget (0 = unlimited)
  --max-seconds=<s>    wall-clock budget (0 = unlimited)
  --threads=<n>        worker threads for explore/goal frontier expansion
                       (0 = serial, the default; results are identical at
                       any thread count; topk is always serial)
  --time-budget=<s>    alias for --max-seconds (wins when both are set)
  --degrade            on budget exhaustion, walk the degradation ladder
                       (full -> aggressive pruning / smaller k -> count-only)
                       and print the DegradationReport instead of failing
  --show-plan          print the lowered operator plan (Source -> Expand ->
                       Prune -> Rank -> Limit -> Filter) before executing

request flags:
  --request-json=<file> declarative ExplorationRequest JSON (schema in
                       docs/planner.md); pair with --catalog/--demo.
                       '-' reads the document from stdin

serve flags:
  --port=<p>           TCP port (default 0 = ephemeral; the bound port is
                       printed as "serving on <addr>:<port>")
  --workers=<n>        executor worker threads (default 4)
  --queue-depth=<n>    admission queue bound (default 64)
  --tenant-queue=<n>   queued requests per tenant (default 16)
  --tenant-inflight=<n> concurrent requests per tenant (default 8)
  --max-tenants=<n>    distinct tenants tracked (default 64)
  --default-deadline-ms=<ms> deadline for requests that name none
  --max-request-seconds=<s>  per-request execution cap (default 5)
  --max-request-nodes=<n>    per-request node cap (default 500000)
  --no-degrade         answer budget blow-ups with timeouts instead of the
                       degradation ladder
  --cache=on|off       route execution through the process-wide epoch-keyed
                       request cache (default on; warm answers are
                       byte-identical to cold ones — see docs/caching.md)
  --serve-seconds=<s>  serve for s seconds, then drain and exit
                       (default 0: serve until stdin reaches EOF)
  --drain-seconds=<s>  drain budget before in-flight work is cancelled
  --admin-port=<p>     also serve the admin plane (/metrics, /healthz,
                       /statusz) on this loopback port (0 = ephemeral,
                       printed as "admin on <addr>:<port>"; default: off)
  --trace-sample=<n>   keep every nth request's span tree in the flight
                       recorder (default 16; 0 = only client opt-ins and
                       non-ok outcomes)
  --recorder-out=<f>   write the flight-recorder dump (JSON lines) here on
                       automatic overload dumps and again at exit

admin flags:
  --port=<p>           admin-plane port of the running server (required)
  --host=<h>           admin-plane host (default 127.0.0.1)
  --target=<t>         endpoint to fetch (default /statusz; also /metrics,
                       /healthz, /statusz?recorder=1); exits non-zero
                       unless the server answers 200

replay flags:
  --requests-file=<f>  JSONL of request envelopes ('-' = stdin)
  --server=<host:port> replay against a running server; without it an
                       embedded in-process server (--catalog/--demo) serves
  --concurrency=<n>    concurrent client sessions (default 4)
  --repeat=<n>         replay the file n times (default 1)
  --max-attempts=<n>   per-request retry budget under overload (default 5)
  --trace-out=<f>      replay-specific: opt every request into tracing and
                       write the returned span trees as JSON lines (one
                       span per line, tagged with its trace_id); also
                       prints a per-tenant SLO summary after the run

goal/topk/count flags:
  --goal=<expr>        boolean goal, e.g. "CS1 and (CS2 or CS3)"
  --complete=A,B       goal: complete all listed courses
  --major              goal: the demo dataset's CS major (demo only)

topk flags:
  --ranking=<name>     time | workload | bottleneck | reliability
  --k=<k>              number of paths (default 10)
  --release-end=<term> last term with a final schedule (reliability)
  --max-term-hours=<h> filter: per-semester workload ceiling
  --max-skips=<n>      filter: maximum skipped semesters

output flags:
  --format=<fmt>       summary | paths | json | dot   (default summary)
  --limit=<n>          paths to print (default 10)
  --stats-format=<f>   text | json — how search stats and the degradation
                       report are rendered (default text)

observability flags:
  --trace-out=<file>   record spans for the run and write them as JSON
                       lines (one span object per line)
  --metrics-out=<file> write a Prometheus-style text snapshot of the
                       process metrics after the command finishes
)USAGE";

struct CommonArgs {
  std::unique_ptr<data::BrandeisDataset> demo;
  std::unique_ptr<CatalogBundle> bundle;
  const Catalog* catalog = nullptr;
  const OfferingSchedule* schedule = nullptr;
  EnrollmentStatus start;
  Term end_term;
  ExplorationOptions options;
  std::shared_ptr<const Goal> goal;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// ReadFile, with the conventional '-' meaning stdin — so captured traffic
/// can be piped straight into `request` and `replay`.
Result<std::string> ReadFileOrStdin(const std::string& path) {
  if (path != "-") return ReadFile(path);
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  return buffer.str();
}

std::vector<std::string> SplitCodes(const std::string& csv) {
  std::vector<std::string> out;
  for (std::string_view field : SplitAndTrim(csv, ',')) {
    out.emplace_back(field);
  }
  return out;
}

Status WriteFileContents(const std::string& path,
                         const std::string& contents) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot write '" + path + "'");
  out << contents;
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

/// True when --stats-format=json; rejects anything but text/json.
Result<bool> WantJsonStats(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(std::string stats_format,
                             flags.GetString("stats-format", "text"));
  if (stats_format == "json") return true;
  if (stats_format == "text") return false;
  return Status::InvalidArgument("unknown --stats-format '" + stats_format +
                                 "' (want text or json)");
}

/// --show-plan: print the lowered operator DAG (and any planner notes,
/// e.g. "ranked runs serial") before the request executes.
Status MaybeShowPlan(const FlagSet& flags, const ExplorationRequest& request) {
  if (!flags.GetBool("show-plan")) return Status::OK();
  COURSENAV_ASSIGN_OR_RETURN(plan::ExplorationPlan lowered,
                             plan::Planner::Lower(request));
  std::printf("%s\n", lowered.Describe().c_str());
  return Status::OK();
}

/// Loads the registrar dataset (--demo or --catalog=<file>) into `common`;
/// shared by the flag-driven subcommands and `request` (which takes
/// everything else from the JSON file).
Status LoadDataset(const FlagSet& flags, CommonArgs& common) {
  if (flags.GetBool("demo")) {
    common.demo = std::make_unique<data::BrandeisDataset>(
        data::BuildBrandeisDataset());
    common.catalog = &common.demo->catalog;
    common.schedule = &common.demo->schedule;
    return Status::OK();
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string path, flags.GetString("catalog", ""));
  if (path.empty()) {
    return Status::InvalidArgument("need --catalog=<file> or --demo");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  COURSENAV_ASSIGN_OR_RETURN(CatalogBundle bundle, LoadCatalogFromJson(text));
  common.bundle = std::make_unique<CatalogBundle>(std::move(bundle));
  common.catalog = &common.bundle->catalog;
  common.schedule = &common.bundle->schedule;
  return Status::OK();
}

Result<CommonArgs> LoadCommon(const FlagSet& flags, bool need_goal) {
  CommonArgs common;
  COURSENAV_RETURN_IF_ERROR(LoadDataset(flags, common));

  COURSENAV_ASSIGN_OR_RETURN(std::string start_text,
                             flags.GetString("start", ""));
  COURSENAV_ASSIGN_OR_RETURN(std::string end_text, flags.GetString("end", ""));
  if (start_text.empty() || end_text.empty()) {
    return Status::InvalidArgument("need --start and --end terms");
  }
  COURSENAV_ASSIGN_OR_RETURN(Term start_term, Term::Parse(start_text));
  COURSENAV_ASSIGN_OR_RETURN(common.end_term, Term::Parse(end_text));

  COURSENAV_ASSIGN_OR_RETURN(std::string completed_csv,
                             flags.GetString("completed", ""));
  DynamicBitset completed = common.catalog->NewCourseSet();
  if (!completed_csv.empty()) {
    COURSENAV_ASSIGN_OR_RETURN(
        completed, common.catalog->CourseSetFromCodes(
                       SplitCodes(completed_csv)));
  }
  common.start = {start_term, std::move(completed)};

  COURSENAV_ASSIGN_OR_RETURN(int64_t m, flags.GetInt("max-per-term", 3));
  common.options.max_courses_per_term = static_cast<int>(m);
  COURSENAV_ASSIGN_OR_RETURN(std::string avoid_csv,
                             flags.GetString("avoid", ""));
  if (!avoid_csv.empty()) {
    COURSENAV_ASSIGN_OR_RETURN(
        DynamicBitset avoid,
        common.catalog->CourseSetFromCodes(SplitCodes(avoid_csv)));
    common.options.avoid_courses = std::move(avoid);
  }
  COURSENAV_ASSIGN_OR_RETURN(int64_t max_nodes,
                             flags.GetInt("max-nodes", 5'000'000));
  common.options.limits.max_nodes = max_nodes;
  COURSENAV_ASSIGN_OR_RETURN(double max_seconds,
                             flags.GetDouble("max-seconds", 0.0));
  common.options.limits.max_seconds = max_seconds;
  COURSENAV_ASSIGN_OR_RETURN(double time_budget,
                             flags.GetDouble("time-budget", 0.0));
  if (time_budget > 0) common.options.limits.max_seconds = time_budget;
  COURSENAV_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 0));
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  common.options.num_threads = static_cast<int>(threads);

  if (need_goal) {
    COURSENAV_ASSIGN_OR_RETURN(std::string goal_expr,
                               flags.GetString("goal", ""));
    COURSENAV_ASSIGN_OR_RETURN(std::string complete_csv,
                               flags.GetString("complete", ""));
    if (flags.GetBool("major")) {
      if (common.demo == nullptr) {
        return Status::InvalidArgument("--major requires --demo");
      }
      common.goal = common.demo->cs_major;
    } else if (!goal_expr.empty()) {
      COURSENAV_ASSIGN_OR_RETURN(expr::Expr parsed,
                                 expr::ParseBoolExpr(goal_expr));
      COURSENAV_ASSIGN_OR_RETURN(
          std::shared_ptr<const ExprGoal> goal,
          ExprGoal::Create(parsed, *common.catalog));
      common.goal = goal;
    } else if (!complete_csv.empty()) {
      COURSENAV_ASSIGN_OR_RETURN(
          std::shared_ptr<const ExprGoal> goal,
          ExprGoal::CompleteAll(SplitCodes(complete_csv), *common.catalog));
      common.goal = goal;
    } else {
      return Status::InvalidArgument(
          "need --goal=<expr>, --complete=<codes>, or --major");
    }
  }
  return common;
}

Status EmitGeneration(const FlagSet& flags, const CommonArgs& common,
                      const GenerationResult& result) {
  COURSENAV_ASSIGN_OR_RETURN(std::string format,
                             flags.GetString("format", "summary"));
  COURSENAV_ASSIGN_OR_RETURN(int64_t limit, flags.GetInt("limit", 10));
  if (!result.termination.ok()) {
    std::printf("note: exploration stopped early (%s); results are "
                "partial.\n",
                result.termination.ToString().c_str());
  }
  if (format == "summary") {
    std::printf("%s", RenderGraphSummary(result.graph, result.stats).c_str());
    GraphAnalytics analytics =
        AnalyzeLearningGraph(result.graph, *common.catalog);
    std::printf("\n%s", analytics.ToString(*common.catalog).c_str());
  } else if (format == "paths") {
    std::vector<LearningPath> paths;
    for (NodeId leaf : result.graph.GoalNodes()) {
      paths.push_back(LearningPath::FromGraph(result.graph, leaf));
      if (static_cast<int64_t>(paths.size()) >= limit) break;
    }
    std::printf("%s",
                RenderPaths(paths, *common.catalog,
                            static_cast<int>(limit))
                    .c_str());
  } else if (format == "json") {
    std::printf("%s\n",
                LearningGraphToJson(result.graph, *common.catalog)
                    .Dump(2)
                    .c_str());
  } else if (format == "dot") {
    std::printf("%s", LearningGraphToDot(result.graph, *common.catalog)
                          .c_str());
  } else {
    return Status::InvalidArgument("unknown --format '" + format + "'");
  }
  COURSENAV_ASSIGN_OR_RETURN(bool json_stats, WantJsonStats(flags));
  if (json_stats) {
    std::printf("%s\n", result.stats.ToJson().Dump(2).c_str());
  }
  return Status::OK();
}

/// Renders a ranked response. When the plan carried a Filter stage the
/// executor records the pre-filter path count and the filter description;
/// surface them the same way the CLI always has.
Status EmitRanked(const FlagSet& flags, const CommonArgs& common,
                  const ExplorationResponse& response) {
  const RankedResult& result = *response.ranked;
  if (response.paths_before_filters >= 0) {
    std::printf("filters kept %zu of %zu paths (%s)\n\n", result.paths.size(),
                static_cast<size_t>(response.paths_before_filters),
                response.filter_description.c_str());
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string format,
                             flags.GetString("format", "paths"));
  COURSENAV_ASSIGN_OR_RETURN(int64_t limit, flags.GetInt("limit", 10));
  COURSENAV_ASSIGN_OR_RETURN(bool json_stats, WantJsonStats(flags));
  if (format == "json") {
    std::printf("%s\n", LearningPathsToJson(result.paths, *common.catalog)
                            .Dump(2)
                            .c_str());
  } else {
    std::printf("%s", RenderPaths(result.paths, *common.catalog,
                                  static_cast<int>(limit))
                          .c_str());
    if (json_stats) {
      std::printf("%s\n", result.stats.ToJson().Dump(2).c_str());
    } else {
      std::printf("\nsearch stats: %s\n", result.stats.ToString().c_str());
    }
  }
  return Status::OK();
}

Status EmitCount(const CountingResult& counted) {
  std::printf("total paths: %llu%s\n",
              static_cast<unsigned long long>(counted.total_paths),
              counted.saturated ? " (saturated)" : "");
  std::printf("goal paths: %llu\n",
              static_cast<unsigned long long>(counted.goal_paths));
  std::printf("distinct statuses: %lld, %.3f s\n",
              static_cast<long long>(counted.distinct_statuses),
              counted.runtime_seconds);
  return Status::OK();
}

/// Output path for --degrade: the DegradationReport first, then whatever
/// payload survived the ladder (graph, ranked paths, or a bare count).
Status EmitDegraded(const FlagSet& flags, const CommonArgs& common,
                    const DegradedResponse& degraded) {
  COURSENAV_ASSIGN_OR_RETURN(bool json_stats, WantJsonStats(flags));
  if (json_stats) {
    std::printf("%s\n", degraded.report.ToJson().Dump(2).c_str());
  } else {
    std::printf("%s\n", degraded.report.ToString().c_str());
  }
  if (degraded.count.has_value()) {
    return EmitCount(*degraded.count);
  }
  if (degraded.response.generation.has_value()) {
    return EmitGeneration(flags, common, *degraded.response.generation);
  }
  if (degraded.response.ranked.has_value()) {
    const RankedResult& ranked = *degraded.response.ranked;
    COURSENAV_ASSIGN_OR_RETURN(int64_t limit, flags.GetInt("limit", 10));
    std::printf("%s", RenderPaths(ranked.paths, *common.catalog,
                                  static_cast<int>(limit))
                          .c_str());
    if (json_stats) {
      std::printf("%s\n", ranked.stats.ToJson().Dump(2).c_str());
    } else {
      std::printf("\nsearch stats: %s\n", ranked.stats.ToString().c_str());
    }
  }
  return Status::OK();
}

Status RunExplore(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(CommonArgs common,
                             LoadCommon(flags, /*need_goal=*/false));
  ExplorationRequest request;
  request.start = common.start;
  request.end_term = common.end_term;
  request.type = TaskType::kDeadlineDriven;
  request.options = common.options;
  COURSENAV_RETURN_IF_ERROR(MaybeShowPlan(flags, request));
  CourseNavigator navigator(common.catalog, common.schedule);
  if (flags.GetBool("degrade")) {
    COURSENAV_ASSIGN_OR_RETURN(
        DegradedResponse degraded,
        ExploreWithDegradation(navigator, request));
    return EmitDegraded(flags, common, degraded);
  }
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             navigator.Explore(request));
  return EmitGeneration(flags, common, *response.generation);
}

Status RunGoal(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(CommonArgs common,
                             LoadCommon(flags, /*need_goal=*/true));
  ExplorationRequest request;
  request.start = common.start;
  request.end_term = common.end_term;
  request.type = TaskType::kGoalDriven;
  request.goal = common.goal;
  request.options = common.options;
  COURSENAV_RETURN_IF_ERROR(MaybeShowPlan(flags, request));
  CourseNavigator navigator(common.catalog, common.schedule);
  if (flags.GetBool("degrade")) {
    COURSENAV_ASSIGN_OR_RETURN(
        DegradedResponse degraded,
        ExploreWithDegradation(navigator, request));
    return EmitDegraded(flags, common, degraded);
  }
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             navigator.Explore(request));
  return EmitGeneration(flags, common, *response.generation);
}

Status RunTopK(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(CommonArgs common,
                             LoadCommon(flags, /*need_goal=*/true));
  COURSENAV_ASSIGN_OR_RETURN(std::string ranking_name,
                             flags.GetString("ranking", "time"));
  COURSENAV_ASSIGN_OR_RETURN(int64_t k, flags.GetInt("k", 10));

  std::unique_ptr<RankingFunction> ranking;
  std::unique_ptr<OfferingProbabilityModel> model;
  if (ranking_name == "time") {
    ranking = std::make_unique<TimeRanking>();
  } else if (ranking_name == "workload") {
    ranking = std::make_unique<WorkloadRanking>(common.catalog);
  } else if (ranking_name == "bottleneck") {
    ranking = std::make_unique<BottleneckWorkloadRanking>(common.catalog);
  } else if (ranking_name == "reliability") {
    COURSENAV_ASSIGN_OR_RETURN(std::string release_text,
                               flags.GetString("release-end", ""));
    Term release_end = common.start.term.Next();
    if (!release_text.empty()) {
      COURSENAV_ASSIGN_OR_RETURN(release_end, Term::Parse(release_text));
    }
    ScheduleHistory history;
    history.ImportSchedule(*common.schedule);
    model = std::make_unique<OfferingProbabilityModel>(
        common.schedule, release_end, std::move(history), 0.5);
    ranking = std::make_unique<ReliabilityRanking>(model.get());
  } else {
    return Status::InvalidArgument("unknown --ranking '" + ranking_name +
                                   "'");
  }

  ExplorationRequest request;
  request.start = common.start;
  request.end_term = common.end_term;
  request.type = TaskType::kRanked;
  request.goal = common.goal;
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), ranking.get());
  request.top_k = static_cast<int>(k);
  request.options = common.options;
  // Declarative post-generation filters (§6 future work, implemented):
  // the plan's Filter stage runs them after Limit and records the
  // pre-filter count for the "filters kept" line.
  COURSENAV_ASSIGN_OR_RETURN(request.filters.max_term_hours,
                             flags.GetDouble("max-term-hours", 0.0));
  COURSENAV_ASSIGN_OR_RETURN(int64_t max_skips,
                             flags.GetInt("max-skips", -1));
  request.filters.max_skips = static_cast<int>(max_skips);
  COURSENAV_RETURN_IF_ERROR(MaybeShowPlan(flags, request));

  CourseNavigator navigator(common.catalog, common.schedule);
  if (flags.GetBool("degrade")) {
    COURSENAV_ASSIGN_OR_RETURN(
        DegradedResponse degraded,
        ExploreWithDegradation(navigator, request));
    return EmitDegraded(flags, common, degraded);
  }
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             navigator.Explore(request));
  return EmitRanked(flags, common, response);
}

/// `coursenav request`: the whole exploration is a JSON document. The
/// request file carries start/end/type/goal/ranking/budgets/filters (and
/// optionally its own degradation policy); only the dataset and output
/// flags come from the command line.
Status RunRequest(const FlagSet& flags) {
  CommonArgs common;
  COURSENAV_RETURN_IF_ERROR(LoadDataset(flags, common));
  COURSENAV_ASSIGN_OR_RETURN(std::string path,
                             flags.GetString("request-json", ""));
  if (path.empty()) {
    return Status::InvalidArgument("need --request-json=<file> ('-' = stdin)");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string text, ReadFileOrStdin(path));
  COURSENAV_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  COURSENAV_ASSIGN_OR_RETURN(
      ExplorationRequest request,
      ExplorationRequestFromJson(json, *common.catalog));
  COURSENAV_RETURN_IF_ERROR(MaybeShowPlan(flags, request));

  CourseNavigator navigator(common.catalog, common.schedule);
  if (flags.GetBool("degrade") || request.degradation.has_value()) {
    COURSENAV_ASSIGN_OR_RETURN(
        DegradedResponse degraded,
        ExploreWithDegradation(navigator, request));
    return EmitDegraded(flags, common, degraded);
  }
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             navigator.Explore(request));
  if (response.ranked.has_value()) {
    return EmitRanked(flags, common, response);
  }
  return EmitGeneration(flags, common, *response.generation);
}

Status RunCount(const FlagSet& flags) {
  bool has_goal = flags.Has("goal") || flags.Has("complete") ||
                  flags.GetBool("major");
  COURSENAV_ASSIGN_OR_RETURN(CommonArgs common, LoadCommon(flags, has_goal));
  CourseNavigator navigator(common.catalog, common.schedule);
  CountingResult counted;
  if (has_goal) {
    COURSENAV_ASSIGN_OR_RETURN(
        counted, navigator.CountGoal(common.start, common.end_term,
                                     *common.goal, common.options));
  } else {
    COURSENAV_ASSIGN_OR_RETURN(
        counted, navigator.CountDeadline(common.start, common.end_term,
                                         common.options));
  }
  return EmitCount(counted);
}

Status RunOptions(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(CommonArgs common,
                             LoadCommon(flags, /*need_goal=*/false));
  DynamicBitset options = ComputeOptions(*common.catalog, *common.schedule,
                                         common.start.completed,
                                         common.start.term, common.options);
  std::printf("options in %s: %s\n", common.start.term.ToString().c_str(),
              common.catalog->CourseSetToString(options).c_str());
  return Status::OK();
}

Status RunAudit(const FlagSet& flags) {
  if (!flags.GetBool("demo")) {
    return Status::InvalidArgument("audit currently supports --demo (the "
                                   "bundled CS major)");
  }
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  COURSENAV_ASSIGN_OR_RETURN(std::string completed_csv,
                             flags.GetString("completed", ""));
  DynamicBitset completed = dataset.catalog.NewCourseSet();
  if (!completed_csv.empty()) {
    COURSENAV_ASSIGN_OR_RETURN(
        completed,
        dataset.catalog.CourseSetFromCodes(SplitCodes(completed_csv)));
  }
  DegreeAudit audit = dataset.cs_major->Audit(completed);
  std::printf("%s", audit.ToString(dataset.catalog).c_str());
  return Status::OK();
}

Status RunValidate(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(std::string path, flags.GetString("catalog", ""));
  if (path.empty()) return Status::InvalidArgument("need --catalog=<file>");
  COURSENAV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  COURSENAV_ASSIGN_OR_RETURN(CatalogBundle bundle, LoadCatalogFromJson(text));
  std::printf("catalog OK: %d courses", bundle.catalog.size());
  if (!bundle.schedule.empty()) {
    std::printf(", offerings %s - %s",
                bundle.schedule.first_term().ToString().c_str(),
                bundle.schedule.last_term().ToString().c_str());
  }
  std::printf("\n");

  COURSENAV_ASSIGN_OR_RETURN(std::string transcripts_path,
                             flags.GetString("transcripts", ""));
  if (!transcripts_path.empty()) {
    COURSENAV_ASSIGN_OR_RETURN(std::string csv, ReadFile(transcripts_path));
    COURSENAV_ASSIGN_OR_RETURN(std::vector<Transcript> transcripts,
                               ParseTranscriptsCsv(csv, bundle.catalog));
    std::printf("transcripts OK: %zu students\n", transcripts.size());
  }
  return Status::OK();
}

/// Builds the server configuration from the serve/replay flag set.
Result<serve::ServerConfig> ServerConfigFromFlags(const FlagSet& flags) {
  serve::ServerConfig config;
  COURSENAV_ASSIGN_OR_RETURN(int64_t workers, flags.GetInt("workers", 4));
  config.num_workers = static_cast<int>(workers);
  COURSENAV_ASSIGN_OR_RETURN(int64_t depth, flags.GetInt("queue-depth", 64));
  config.admission.max_queue_depth = static_cast<int>(depth);
  COURSENAV_ASSIGN_OR_RETURN(int64_t tenant_queue,
                             flags.GetInt("tenant-queue", 16));
  config.admission.max_queued_per_tenant = static_cast<int>(tenant_queue);
  COURSENAV_ASSIGN_OR_RETURN(int64_t tenant_inflight,
                             flags.GetInt("tenant-inflight", 8));
  config.admission.max_inflight_per_tenant = static_cast<int>(tenant_inflight);
  COURSENAV_ASSIGN_OR_RETURN(int64_t max_tenants,
                             flags.GetInt("max-tenants", 64));
  config.admission.max_tenants = static_cast<int>(max_tenants);
  COURSENAV_ASSIGN_OR_RETURN(double default_deadline_ms,
                             flags.GetDouble("default-deadline-ms", 2000.0));
  config.admission.default_deadline_seconds = default_deadline_ms / 1e3;
  COURSENAV_ASSIGN_OR_RETURN(config.max_seconds_per_request,
                             flags.GetDouble("max-request-seconds", 5.0));
  COURSENAV_ASSIGN_OR_RETURN(config.max_nodes_per_request,
                             flags.GetInt("max-request-nodes", 500'000));
  config.degrade_by_default = !flags.GetBool("no-degrade");
  COURSENAV_ASSIGN_OR_RETURN(int64_t trace_sample,
                             flags.GetInt("trace-sample", 16));
  config.trace_sample_every = static_cast<int>(trace_sample);
  COURSENAV_ASSIGN_OR_RETURN(std::string cache_flag,
                             flags.GetString("cache", "on"));
  if (cache_flag == "on") {
    config.enable_cache = true;
  } else if (cache_flag == "off") {
    config.enable_cache = false;
  } else {
    return Status::InvalidArgument("--cache must be 'on' or 'off', got '" +
                                   cache_flag + "'");
  }
  return config;
}

void PrintServerStats(const serve::ServerStats& stats) {
  std::printf(
      "server stats: submitted=%lld ok=%lld degraded=%lld timeout=%lld "
      "shed=%lld rejected=%lld cancelled=%lld slow_client=%lld failed=%lld "
      "faults_injected=%lld\n",
      static_cast<long long>(stats.submitted), static_cast<long long>(stats.ok),
      static_cast<long long>(stats.degraded),
      static_cast<long long>(stats.timeout), static_cast<long long>(stats.shed),
      static_cast<long long>(stats.rejected),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.slow_client),
      static_cast<long long>(stats.failed),
      static_cast<long long>(stats.faults_injected));
  std::printf("request cache: hits=%lld misses=%lld bypass=%lld\n",
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.cache_bypass));
  for (const auto& [tenant, counters] : stats.tenants) {
    std::printf("  tenant %s: admitted=%lld shed=%lld completed=%lld\n",
                tenant.c_str(), static_cast<long long>(counters.admitted_total),
                static_cast<long long>(counters.shed_total),
                static_cast<long long>(counters.completed_total));
  }
}

/// `coursenav serve`: the socket front end over the exploration server.
Status RunServe(const FlagSet& flags) {
  CommonArgs common;
  COURSENAV_RETURN_IF_ERROR(LoadDataset(flags, common));
  COURSENAV_ASSIGN_OR_RETURN(serve::ServerConfig config,
                             ServerConfigFromFlags(flags));
  COURSENAV_ASSIGN_OR_RETURN(int64_t port, flags.GetInt("port", 0));
  COURSENAV_ASSIGN_OR_RETURN(double serve_seconds,
                             flags.GetDouble("serve-seconds", 0.0));
  COURSENAV_ASSIGN_OR_RETURN(double drain_seconds,
                             flags.GetDouble("drain-seconds", 5.0));
  COURSENAV_ASSIGN_OR_RETURN(int64_t admin_port,
                             flags.GetInt("admin-port", -1));
  COURSENAV_ASSIGN_OR_RETURN(std::string recorder_out,
                             flags.GetString("recorder-out", ""));

  serve::ExplorationServer core(common.catalog, common.schedule, config);
  if (!recorder_out.empty()) {
    // The automatic dump fires on the first non-ok outcome after a quiet
    // spell; the same file is rewritten with the full ring at exit.
    core.recorder().SetAutoDumpSink([recorder_out](const std::string& dump) {
      Status written = WriteFileContents(recorder_out, dump);
      if (!written.ok()) {
        std::fprintf(stderr, "note: recorder dump failed: %s\n",
                     written.ToString().c_str());
      }
    });
  }
  core.Start();
  serve::SocketConfig socket_config;
  socket_config.port = static_cast<int>(port);
  serve::SocketServer transport(&core, socket_config);
  COURSENAV_RETURN_IF_ERROR(transport.Start());
  std::printf("serving on %s:%d\n", socket_config.bind_address.c_str(),
              transport.port());
  std::unique_ptr<serve::AdminServer> admin;
  if (admin_port >= 0) {
    serve::AdminConfig admin_config;
    admin_config.port = static_cast<int>(admin_port);
    admin = std::make_unique<serve::AdminServer>(&core, admin_config);
    COURSENAV_RETURN_IF_ERROR(admin->Start());
    std::printf("admin on %s:%d\n", admin_config.bind_address.c_str(),
                admin->port());
  }
  std::fflush(stdout);

  if (serve_seconds > 0) {
    Stopwatch uptime;
    while (uptime.ElapsedSeconds() < serve_seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } else {
    // Foreground service discipline: run until the parent closes stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
    }
  }

  transport.Stop();
  Status drained = core.Drain(drain_seconds);
  if (!drained.ok()) {
    std::fprintf(stderr, "note: %s\n", drained.ToString().c_str());
  }
  // The admin plane outlives the drain so health checks can watch it.
  if (admin != nullptr) admin->Stop();
  if (!recorder_out.empty()) {
    COURSENAV_RETURN_IF_ERROR(
        WriteFileContents(recorder_out, core.recorder().DumpJsonLines()));
  }
  PrintServerStats(core.Stats());
  return Status::OK();
}

/// `coursenav admin`: one GET against a running server's admin plane. The
/// body prints verbatim; the exit code says whether the server answered
/// 200, so health checks can script it without parsing.
Status RunAdmin(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(std::string host,
                             flags.GetString("host", "127.0.0.1"));
  COURSENAV_ASSIGN_OR_RETURN(int64_t port, flags.GetInt("port", 0));
  if (port <= 0) {
    return Status::InvalidArgument("need --port=<admin-plane port>");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string target,
                             flags.GetString("target", "/statusz"));
  COURSENAV_ASSIGN_OR_RETURN(
      serve::AdminServer::HttpResponse response,
      serve::AdminHttpGet(host, static_cast<int>(port), target));
  std::printf("%s", response.body.c_str());
  if (!response.ok()) {
    return Status::FailedPrecondition(StrFormat(
        "admin plane answered HTTP %d for %s", response.status_code,
        target.c_str()));
  }
  return Status::OK();
}

/// Shared tally for the replay workers.
struct ReplayTally {
  std::mutex mu;
  std::map<std::string, int64_t> outcomes;
  std::vector<double> latencies_ms;
  int64_t attempts = 0;
  int64_t transport_failures = 0;
  /// Per-value tallies of the envelopes' `cache` field (hit/miss/bypass/
  /// off); empty when the server predates the field or nothing executed.
  std::map<std::string, int64_t> cache;
  /// Per-tenant (met, missed) deadline tallies; rejected requests count
  /// toward neither (mirrors the server's SLO accounting).
  std::map<std::string, std::pair<int64_t, int64_t>> slo;
  /// Flattened span JSON lines collected from traced responses.
  std::vector<std::string> trace_lines;
};

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// `coursenav replay`: closed-loop replay of captured request envelopes
/// (one JSON document per line) against a live server or an embedded one.
Status RunReplay(const FlagSet& flags) {
  COURSENAV_ASSIGN_OR_RETURN(std::string requests_path,
                             flags.GetString("requests-file", ""));
  if (requests_path.empty()) {
    return Status::InvalidArgument("need --requests-file=<file> ('-' = stdin)");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string text, ReadFileOrStdin(requests_path));
  std::vector<std::string> requests;
  for (std::string_view line : SplitAndTrim(text, '\n')) {
    if (!line.empty()) requests.emplace_back(line);
  }
  if (requests.empty()) {
    return Status::InvalidArgument("no request envelopes in '" +
                                   requests_path + "'");
  }
  COURSENAV_ASSIGN_OR_RETURN(int64_t repeat, flags.GetInt("repeat", 1));
  COURSENAV_ASSIGN_OR_RETURN(int64_t concurrency,
                             flags.GetInt("concurrency", 4));
  COURSENAV_ASSIGN_OR_RETURN(int64_t max_attempts,
                             flags.GetInt("max-attempts", 5));
  COURSENAV_ASSIGN_OR_RETURN(std::string server, flags.GetString("server", ""));
  if (repeat < 1 || concurrency < 1 || max_attempts < 1) {
    return Status::InvalidArgument(
        "--repeat, --concurrency, and --max-attempts must be >= 1");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::string trace_out,
                             flags.GetString("trace-out", ""));
  COURSENAV_ASSIGN_OR_RETURN(double default_deadline_ms,
                             flags.GetDouble("default-deadline-ms", 2000.0));
  const bool want_traces = !trace_out.empty();

  // Per-line effective deadlines for the client-side SLO tally; with
  // --trace-out every envelope is additionally opted into tracing.
  std::vector<double> deadlines(requests.size(), default_deadline_ms);
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<JsonValue> parsed = JsonValue::Parse(requests[i]);
    if (!parsed.ok() || !parsed->is_object()) continue;  // server rejects it
    if (Result<JsonValue> deadline = parsed->Get("deadline_ms");
        deadline.ok() && deadline->is_number()) {
      if (Result<double> value = deadline->GetNumber();
          value.ok() && *value > 0) {
        deadlines[i] = *value;
      }
    }
    if (want_traces) {
      parsed->object()["trace"] = JsonValue(true);
      requests[i] = parsed->Dump();
    }
  }
  const int64_t total = static_cast<int64_t>(requests.size()) * repeat;

  // Socket mode parses host:port; embedded mode spins an in-process server
  // over the dataset flags.
  std::string host;
  int port = 0;
  CommonArgs common;
  std::unique_ptr<serve::ExplorationServer> embedded;
  if (!server.empty()) {
    size_t colon = server.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("--server must be host:port");
    }
    host = server.substr(0, colon);
    COURSENAV_ASSIGN_OR_RETURN(int64_t parsed_port,
                               ParseInt(server.substr(colon + 1)));
    port = static_cast<int>(parsed_port);
  } else {
    COURSENAV_RETURN_IF_ERROR(LoadDataset(flags, common));
    COURSENAV_ASSIGN_OR_RETURN(serve::ServerConfig config,
                               ServerConfigFromFlags(flags));
    embedded = std::make_unique<serve::ExplorationServer>(
        common.catalog, common.schedule, config);
    embedded->Start();
  }

  ReplayTally tally;
  std::atomic<int64_t> next{0};
  Stopwatch wall;
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<size_t>(concurrency));
  for (int64_t session = 0; session < concurrency; ++session) {
    sessions.emplace_back([&, session] {
      serve::ServeClient client;
      serve::TransportFn transport;
      if (embedded != nullptr) {
        transport = [&](std::string_view payload) {
          return embedded->HandleRequest(payload);
        };
      } else {
        transport =
            [&](std::string_view payload) -> Result<serve::ResponseEnvelope> {
          if (!client.connected()) {
            COURSENAV_ASSIGN_OR_RETURN(client,
                                       serve::ServeClient::Connect(host, port));
          }
          return client.CallEnvelope(payload);
        };
      }
      serve::RetryPolicy policy;
      policy.max_attempts = static_cast<int>(max_attempts);
      policy.jitter_seed = static_cast<uint64_t>(session) + 1;
      for (int64_t index = next.fetch_add(1); index < total;
           index = next.fetch_add(1)) {
        const std::string& payload =
            requests[static_cast<size_t>(index) % requests.size()];
        Stopwatch latency;
        Result<serve::RetryResult> result =
            serve::CallWithRetry(transport, payload, policy);
        double elapsed_ms = latency.ElapsedSeconds() * 1e3;
        std::lock_guard<std::mutex> lock(tally.mu);
        tally.latencies_ms.push_back(elapsed_ms);
        if (result.ok()) {
          const serve::ResponseEnvelope& response = result->response;
          tally.attempts += result->attempts;
          tally.outcomes[std::string(
              serve::ResponseOutcomeName(response.outcome))]++;
          if (!response.cache.empty()) tally.cache[response.cache]++;
          if (response.outcome != serve::ResponseOutcome::kRejected) {
            const bool met =
                (response.outcome == serve::ResponseOutcome::kOk ||
                 response.outcome == serve::ResponseOutcome::kDegraded) &&
                response.queue_wait_ms + response.service_ms <=
                    deadlines[static_cast<size_t>(index) % requests.size()];
            auto& [met_count, missed_count] = tally.slo[response.tenant];
            (met ? met_count : missed_count) += 1;
          }
          if (want_traces && response.trace.is_array()) {
            for (const JsonValue& span : response.trace.array()) {
              JsonValue tagged = span;
              if (tagged.is_object()) {
                tagged.object()["trace_id"] = JsonValue(response.trace_id);
              }
              tally.trace_lines.push_back(tagged.Dump());
            }
          }
        } else {
          ++tally.transport_failures;
          tally.outcomes["transport-error"]++;
        }
      }
    });
  }
  for (std::thread& session : sessions) session.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  std::printf("replayed %lld requests in %.2fs (%.1f req/s, %lld sessions)\n",
              static_cast<long long>(total), wall_seconds,
              static_cast<double>(total) / std::max(wall_seconds, 1e-9),
              static_cast<long long>(concurrency));
  std::printf("latency p50 %.2f ms, p99 %.2f ms; attempts %lld, "
              "transport errors %lld\n",
              PercentileMs(tally.latencies_ms, 0.50),
              PercentileMs(tally.latencies_ms, 0.99),
              static_cast<long long>(tally.attempts),
              static_cast<long long>(tally.transport_failures));
  for (const auto& [outcome, count] : tally.outcomes) {
    std::printf("  %-16s %lld\n", outcome.c_str(),
                static_cast<long long>(count));
  }
  if (!tally.cache.empty()) {
    std::printf("cache:");
    for (const auto& [kind, count] : tally.cache) {
      std::printf(" %s=%lld", kind.c_str(), static_cast<long long>(count));
    }
    std::printf("\n");
  }
  if (!tally.slo.empty()) {
    std::printf("per-tenant SLO (deadline attainment):\n");
    for (const auto& [tenant, counters] : tally.slo) {
      const auto& [met, missed] = counters;
      const int64_t counted = met + missed;
      std::printf("  %-16s %5.1f%% (%lld/%lld within deadline)\n",
                  tenant.c_str(),
                  counted > 0 ? 100.0 * static_cast<double>(met) /
                                    static_cast<double>(counted)
                              : 100.0,
                  static_cast<long long>(met),
                  static_cast<long long>(counted));
    }
  }
  if (want_traces) {
    std::string lines;
    for (const std::string& line : tally.trace_lines) {
      lines += line;
      lines += '\n';
    }
    COURSENAV_RETURN_IF_ERROR(WriteFileContents(trace_out, lines));
    std::printf("wrote %zu spans to %s\n", tally.trace_lines.size(),
                trace_out.c_str());
  }
  if (embedded != nullptr) {
    Status drained = embedded->Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "note: %s\n", drained.ToString().c_str());
    }
    PrintServerStats(embedded->Stats());
  }
  return Status::OK();
}

/// Writes --trace-out / --metrics-out artifacts after the command ran;
/// runs even when the command failed so a budget blow-up still leaves its
/// trace behind.
Status WriteObservabilityArtifacts(const obs::Tracer& tracer,
                                   const std::string& trace_out,
                                   const std::string& metrics_out) {
  if (!trace_out.empty()) {
    COURSENAV_RETURN_IF_ERROR(
        WriteFileContents(trace_out, obs::TraceToJsonLines(tracer)));
    if (tracer.dropped() > 0) {
      std::fprintf(stderr, "note: trace buffer full, %zu spans dropped\n",
                   tracer.dropped());
    }
  }
  if (!metrics_out.empty()) {
    COURSENAV_RETURN_IF_ERROR(WriteFileContents(
        metrics_out, obs::RenderPrometheus(obs::GlobalMetrics())));
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  std::string command = argv[1];
  FlagSet flags = FlagSet::Parse(argc - 1, argv + 1);

  Result<std::string> trace_out = flags.GetString("trace-out", "");
  Result<std::string> metrics_out = flags.GetString("metrics-out", "");
  if (!trace_out.ok() || !metrics_out.ok()) {
    const Status& bad =
        trace_out.ok() ? metrics_out.status() : trace_out.status();
    std::fprintf(stderr, "error: %s\n", bad.ToString().c_str());
    return 1;
  }
  obs::Tracer tracer;
  std::optional<obs::ScopedTracer> install_tracer;
  // `replay` owns --trace-out itself (it collects the servers' per-request
  // span trees, not this process's spans).
  const bool replay_owns_trace = command == "replay";
  if (!trace_out->empty() && !replay_owns_trace) {
    install_tracer.emplace(&tracer);
  }

  Status status;
  if (command == "explore") {
    status = RunExplore(flags);
  } else if (command == "goal") {
    status = RunGoal(flags);
  } else if (command == "topk") {
    status = RunTopK(flags);
  } else if (command == "request") {
    status = RunRequest(flags);
  } else if (command == "count") {
    status = RunCount(flags);
  } else if (command == "options") {
    status = RunOptions(flags);
  } else if (command == "audit") {
    status = RunAudit(flags);
  } else if (command == "validate") {
    status = RunValidate(flags);
  } else if (command == "serve") {
    status = RunServe(flags);
  } else if (command == "replay") {
    status = RunReplay(flags);
  } else if (command == "admin") {
    status = RunAdmin(flags);
  } else if (command == "help" || command == "--help") {
    std::printf("%s", kUsage);
    return 0;
  } else {
    std::fprintf(stderr, "unknown command '%s'\n\n%s", command.c_str(),
                 kUsage);
    return 2;
  }
  Status artifacts = WriteObservabilityArtifacts(
      tracer, replay_owns_trace ? std::string() : *trace_out, *metrics_out);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "error: %s\n", artifacts.ToString().c_str());
    if (status.ok()) return 1;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) { return coursenav::Main(argc, argv); }

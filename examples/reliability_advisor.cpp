// Reliability advisor: the paper's reliability-based ranking (§4.3.1) in
// action. Class schedules are final only a couple of semesters ahead;
// beyond that horizon, a plan is only as good as the odds that its courses
// actually run. This example ranks paths to the CS major by the probability
// that every planned offering materializes, and contrasts the most
// reliable plan with the fastest one.
//
// Run: ./build/examples/reliability_advisor

#include <cstdio>

#include "catalog/schedule_history.h"
#include "data/brandeis_cs.h"
#include "service/navigator.h"
#include "service/robustness.h"
#include "service/visualizer.h"

int main() {
  using namespace coursenav;

  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);

  EnrollmentStatus student{Term(Season::kFall, 2012),
                           dataset.catalog.NewCourseSet()};
  Term graduation(Season::kFall, 2015);
  ExplorationOptions options;

  // Probability model: the registrar has released final schedules through
  // Spring 2013; later semesters fall back to historical frequencies
  // estimated from the full window.
  ScheduleHistory history;
  history.ImportSchedule(dataset.schedule);
  Term release_end(Season::kSpring, 2013);
  OfferingProbabilityModel model(&dataset.schedule, release_end, history,
                                 /*default_prob=*/0.5);

  std::printf("Fresh student, %s -> %s; schedules final through %s.\n\n",
              student.term.ToString().c_str(),
              graduation.ToString().c_str(),
              release_end.ToString().c_str());

  // Most reliable plans.
  ReliabilityRanking reliability(&model);
  Result<RankedResult> reliable = navigator.ExploreTopK(
      student, graduation, *dataset.cs_major, reliability, /*k=*/3, options);
  if (!reliable.ok()) {
    std::fprintf(stderr, "%s\n", reliable.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Top-3 most reliable plans ===\n");
  for (size_t i = 0; i < reliable->paths.size(); ++i) {
    double probability =
        ReliabilityRanking::CostToReliability(reliable->paths[i].cost());
    std::printf("Plan %zu: probability %.3f that every offering runs\n",
                i + 1, probability);
  }
  if (!reliable->paths.empty()) {
    std::printf("\nMost reliable plan in full:\n%s\n",
                reliable->paths[0].ToString(dataset.catalog).c_str());
  }

  // The fastest plan, for contrast: how much reliability does rushing cost?
  TimeRanking time_ranking;
  Result<RankedResult> fastest = navigator.ExploreTopK(
      student, graduation, *dataset.cs_major, time_ranking, /*k=*/1,
      options);
  if (fastest.ok() && !fastest->paths.empty()) {
    const LearningPath& fast = fastest->paths[0];
    double fast_reliability = 1.0;
    for (const PathStep& step : fast.steps()) {
      step.selection.ForEach([&](int id) {
        fast_reliability *=
            model.Probability(static_cast<CourseId>(id), step.term);
      });
    }
    std::printf("Fastest plan: %d semesters, reliability %.3f\n",
                fast.Length(), fast_reliability);
    if (!reliable->paths.empty()) {
      std::printf(
          "Trade-off: the most reliable plan gives up %d semester(s) of "
          "speed for %.1fx better odds.\n",
          reliable->paths[0].Length() - fast.Length(),
          ReliabilityRanking::CostToReliability(reliable->paths[0].cost()) /
              (fast_reliability > 0 ? fast_reliability : 1e-9));
    }
  }

  // Beyond probabilities: which single cancellation would actually strand
  // a plan? (Analyzed on a tight 4-semester scenario, where every
  // perturbed re-count is instant; each perturbation re-counts the goal
  // space.)
  EnrollmentStatus late_starter{Term(Season::kFall, 2013),
                                dataset.catalog.NewCourseSet()};
  Result<RankedResult> tight = navigator.ExploreTopK(
      late_starter, graduation, *dataset.cs_major, time_ranking, /*k=*/1,
      options);
  if (tight.ok() && !tight->paths.empty()) {
    Result<PlanRobustness> robustness = AnalyzePlanRobustness(
        dataset.catalog, dataset.schedule, tight->paths[0],
        *dataset.cs_major, graduation, options);
    if (robustness.ok()) {
      std::printf(
          "\n=== Robustness of a Fall-2013 starter's fastest plan ===\n%s",
          robustness->ToString(dataset.catalog).c_str());
      std::printf("single points of failure: %zu of %zu offerings\n",
                  robustness->SinglePointsOfFailure().size(),
                  robustness->dependencies.size());
    }
  }
  return 0;
}

// Interactive session: scripted replay of the conversational loop the
// paper's front end drives — commit a semester, see how the remaining
// option space reacts, undo a regretted choice, tighten constraints,
// re-plan. Demonstrates ExplorationSession, selection-impact ranking, and
// top-k re-planning mid-degree.
//
// Run: ./build/examples/interactive_session

#include <cstdio>

#include "data/brandeis_cs.h"
#include "service/session.h"
#include "service/visualizer.h"

namespace {

void ShowState(coursenav::ExplorationSession& session,
               const coursenav::Catalog& catalog) {
  using namespace coursenav;
  Result<uint64_t> remaining = session.RemainingGoalPaths();
  std::printf("  now %s | completed %s\n",
              session.status().term.ToString().c_str(),
              catalog.CourseSetToString(session.status().completed).c_str());
  std::printf("  paths to the major: %llu\n",
              remaining.ok()
                  ? static_cast<unsigned long long>(*remaining)
                  : 0ull);
}

}  // namespace

int main() {
  using namespace coursenav;

  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{Term(Season::kFall, 2013),
                         dataset.catalog.NewCourseSet()};
  ExplorationSession session(&dataset.catalog, &dataset.schedule,
                             dataset.cs_major, start,
                             data::EvaluationEndTerm());

  std::printf("== session start ==\n");
  ShowState(session, dataset.catalog);

  // Ask before committing: which Fall 2013 selections keep the most
  // futures open?
  auto impacts = session.EvaluateSelections(/*max_candidates=*/64);
  if (impacts.ok() && !impacts->empty()) {
    std::printf("\nbest Fall 2013 selections by surviving paths:\n");
    for (size_t i = 0; i < impacts->size() && i < 5; ++i) {
      std::printf("  %-28s %llu paths\n",
                  dataset.catalog
                      .CourseSetToString((*impacts)[i].selection)
                      .c_str(),
                  static_cast<unsigned long long>(
                      (*impacts)[i].surviving_goal_paths));
    }
  }

  // The student ignores the advice and takes fun electives.
  std::printf("\n== commit Fall 2013: {COSI2A, COSI65A, COSI125A} ==\n");
  Status s = session.Commit({"COSI2A", "COSI65A", "COSI125A"});
  if (!s.ok()) std::printf("  rejected: %s\n", s.ToString().c_str());
  ShowState(session, dataset.catalog);

  std::printf("\n== regret; undo and take the advised core ==\n");
  (void)session.Undo();
  s = session.Commit({"COSI11A", "COSI29A", "COSI2A"});
  if (!s.ok()) std::printf("  rejected: %s\n", s.ToString().c_str());
  ShowState(session, dataset.catalog);

  std::printf("\n== commit Spring 2014: {COSI12B, COSI21A, COSI33B} ==\n");
  (void)session.Commit({"COSI12B", "COSI21A", "COSI33B"});
  ShowState(session, dataset.catalog);

  // Mid-degree constraint change: the student refuses COSI45A and drops
  // to 3 courses max (already the default; tighten to show the API).
  std::printf("\n== constraint change: avoid COSI45A ==\n");
  (void)session.Avoid("COSI45A");
  ShowState(session, dataset.catalog);

  // Re-plan: best remaining schedules.
  TimeRanking ranking;
  auto plan = session.TopK(ranking, 2);
  if (plan.ok()) {
    std::printf("\nbest remaining plans:\n%s",
                RenderPaths(plan->paths, dataset.catalog).c_str());
  }

  // Fast-forward along the best plan.
  std::printf("== commit Fall 2014: {COSI21B, COSI30A, COSI100A} ==\n");
  (void)session.Commit({"COSI21B", "COSI30A", "COSI100A"});
  std::printf("== commit Spring 2015: {COSI35A, COSI105A, COSI116A} ==\n");
  (void)session.Commit({"COSI35A", "COSI105A", "COSI116A"});
  ShowState(session, dataset.catalog);
  std::printf("\ngoal reached: %s\n", session.GoalReached() ? "yes" : "no");
  return 0;
}

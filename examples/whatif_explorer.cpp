// What-if explorer: interactive-style exploration of the questions the
// paper's introduction motivates — "which course selections increase my
// future options?", "what does skipping a semester cost me?" — by
// repeatedly re-running the generators from hypothetical statuses and
// comparing option counts and path populations.
//
// Also demonstrates the registrar-facing pipeline: the catalog is loaded
// from JSON text (Prerequisite Parser + Schedule Parser under the hood)
// and the resulting graph is exported to DOT for the visualizer.
//
// Run: ./build/examples/whatif_explorer

#include <cstdio>

#include "core/combinations.h"
#include "core/counting.h"
#include "graph/export.h"
#include "parsers/catalog_loader.h"
#include "requirements/expr_goal.h"
#include "service/navigator.h"
#include "service/visualizer.h"

namespace {

// A small department described the way a registrar would: prerequisite
// sentences and offering lists.
constexpr const char* kCatalogJson = R"({
  "courses": [
    {"code": "CS1", "title": "Intro to Programming", "workload": 7,
     "prerequisites": "none",
     "offered": ["Fall 2014", "Spring 2015", "Fall 2015", "Spring 2016"]},
    {"code": "MATH1", "title": "Discrete Mathematics", "workload": 8,
     "prerequisites": "none",
     "offered": ["Fall 2014", "Spring 2015", "Fall 2015", "Spring 2016"]},
    {"code": "CS2", "title": "Data Structures", "workload": 9,
     "prerequisites": "Prerequisite: CS 1.",
     "offered": ["Spring 2015", "Fall 2015", "Spring 2016"]},
    {"code": "CS3", "title": "Algorithms", "workload": 10,
     "prerequisites": "CS 2 and MATH 1",
     "offered": ["Fall 2015", "Spring 2016"]},
    {"code": "CS4", "title": "Operating Systems", "workload": 10,
     "prerequisites": "CS 2",
     "offered": ["Fall 2015"]},
    {"code": "CS5", "title": "Databases", "workload": 9,
     "prerequisites": "CS 2 or permission of the instructor",
     "offered": ["Spring 2016"]},
    {"code": "STAT1", "title": "Statistics", "workload": 6,
     "prerequisites": "MATH 1",
     "offered": ["Spring 2015", "Spring 2016"]}
  ]
})";

}  // namespace

int main() {
  using namespace coursenav;

  Result<CatalogBundle> bundle = LoadCatalogFromJson(kCatalogJson);
  if (!bundle.ok()) {
    std::fprintf(stderr, "catalog load failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }
  const Catalog& catalog = bundle->catalog;
  CourseNavigator navigator(&catalog, &bundle->schedule);

  EnrollmentStatus fresh{Term(Season::kFall, 2014), catalog.NewCourseSet()};
  Term horizon(Season::kFall, 2016);
  ExplorationOptions options;
  options.max_courses_per_term = 2;

  // Question 1: how many futures does each Fall 2014 selection keep open?
  std::printf("What-if: option value of each Fall 2014 selection\n");
  std::printf("(paths counted to the %s horizon, max 2 courses/semester)\n\n",
              horizon.ToString().c_str());
  DynamicBitset first_options = ComputeOptions(
      catalog, bundle->schedule, fresh.completed, fresh.term, options);
  std::vector<DynamicBitset> candidates;
  ForEachSelection(first_options, 1, options.max_courses_per_term,
                   [&](const DynamicBitset& selection) {
                     candidates.push_back(selection);
                     return true;
                   });
  for (const DynamicBitset& selection : candidates) {
    DynamicBitset next = fresh.completed;
    next |= selection;
    EnrollmentStatus hypothetical{fresh.term.Next(), next};
    Result<CountingResult> futures =
        navigator.CountDeadline(hypothetical, horizon, options);
    std::printf("  take %-14s -> %6llu future paths\n",
                catalog.CourseSetToString(selection).c_str(),
                futures.ok()
                    ? static_cast<unsigned long long>(futures->total_paths)
                    : 0ull);
  }

  // Question 2: what does a gap semester in Spring 2015 cost toward
  // finishing CS3 + CS4 + CS5?
  auto core_goal = ExprGoal::CompleteAll({"CS3", "CS4", "CS5"}, catalog);
  if (!core_goal.ok()) return 1;
  DynamicBitset after_fall = catalog.NewCourseSet();
  after_fall.set(*catalog.FindByCode("CS1"));
  after_fall.set(*catalog.FindByCode("MATH1"));

  EnrollmentStatus on_track{Term(Season::kSpring, 2015), after_fall};
  EnrollmentStatus after_gap{Term(Season::kFall, 2015), after_fall};
  auto on_track_paths =
      navigator.CountGoal(on_track, horizon, **core_goal, options);
  auto gap_paths =
      navigator.CountGoal(after_gap, horizon, **core_goal, options);
  std::printf(
      "\nWhat-if: complete CS3, CS4 and CS5 by %s\n"
      "  staying enrolled Spring 2015: %llu paths\n"
      "  taking a gap semester:        %llu paths\n",
      horizon.ToString().c_str(),
      on_track_paths.ok()
          ? static_cast<unsigned long long>(on_track_paths->goal_paths)
          : 0ull,
      gap_paths.ok()
          ? static_cast<unsigned long long>(gap_paths->goal_paths)
          : 0ull);

  // Question 3: render the on-track goal graph for the visualizer.
  auto generation =
      navigator.ExploreGoal(on_track, horizon, **core_goal, options);
  if (generation.ok()) {
    std::printf("\nGoal graph for the on-track student: %lld nodes, "
                "%lld goal paths.\nDOT output (first lines):\n",
                static_cast<long long>(generation->graph.num_nodes()),
                static_cast<long long>(generation->stats.goal_paths));
    std::string dot = LearningGraphToDot(generation->graph, catalog);
    std::printf("%.400s...\n", dot.c_str());
  }
  return 0;
}

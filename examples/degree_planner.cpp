// Degree planner: the paper's flagship scenario. A student mid-degree asks
// "given my past selections, which paths still lead to a CS major by my
// target graduation, and what must I take next semester?"
//
// Demonstrates: starting from a non-empty enrollment status, goal-driven
// exploration with constraints (avoided course, reduced load), and
// aggregating the output graph into next-semester advice.
//
// Run: ./build/examples/degree_planner

#include <cstdio>
#include <map>
#include <vector>

#include "data/brandeis_cs.h"
#include "service/navigator.h"
#include "service/visualizer.h"

int main() {
  using namespace coursenav;

  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);

  // The student completed three courses in their first year.
  Result<DynamicBitset> done = dataset.catalog.CourseSetFromCodes(
      {"COSI11A", "COSI29A", "COSI2A"});
  if (!done.ok()) {
    std::fprintf(stderr, "%s\n", done.status().ToString().c_str());
    return 1;
  }
  EnrollmentStatus student{Term(Season::kFall, 2013), *done};
  Term graduation(Season::kFall, 2015);

  // Constraints: at most 3 courses per semester, refuses COSI65A.
  ExplorationOptions options;
  options.max_courses_per_term = 3;
  DynamicBitset avoid = dataset.catalog.NewCourseSet();
  avoid.set(*dataset.catalog.FindByCode("COSI65A"));
  options.avoid_courses = avoid;

  std::printf("Student status: %s, completed %s\n",
              student.term.ToString().c_str(),
              dataset.catalog.CourseSetToString(student.completed).c_str());
  std::printf("Goal: %s by %s (avoiding COSI65A)\n\n",
              dataset.cs_major->Describe().c_str(),
              graduation.ToString().c_str());

  Result<GenerationResult> result = navigator.ExploreGoal(
      student, graduation, *dataset.cs_major, options);
  if (!result.ok()) {
    std::fprintf(stderr, "exploration failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              RenderGraphSummary(result->graph, result->stats).c_str());

  if (result->stats.goal_paths == 0) {
    std::printf("No path reaches the major by %s — pick a later deadline.\n",
                graduation.ToString().c_str());
    return 0;
  }

  // Next-semester advice: how often does each course appear in the
  // first step of a path that still reaches the major?
  std::map<std::string, int> first_step_frequency;
  int64_t goal_leaves = 0;
  for (NodeId leaf : result->graph.GoalNodes()) {
    ++goal_leaves;
    LearningPath path = LearningPath::FromGraph(result->graph, leaf);
    if (path.steps().empty()) continue;
    path.steps()[0].selection.ForEach([&](int id) {
      ++first_step_frequency[
          dataset.catalog.course(static_cast<CourseId>(id)).code];
    });
  }
  std::printf("Fall 2013 course choices, by share of surviving paths:\n");
  std::vector<std::pair<int, std::string>> ordered;
  for (const auto& [code, count] : first_step_frequency) {
    ordered.emplace_back(count, code);
  }
  std::sort(ordered.rbegin(), ordered.rend());
  for (const auto& [count, code] : ordered) {
    std::printf("  %-10s keeps %5.1f%% of paths alive\n", code.c_str(),
                100.0 * count / static_cast<double>(goal_leaves));
  }
  return 0;
}

// Quickstart: load the bundled Brandeis-like CS dataset, explore learning
// paths toward a CS major, and print the shortest ones.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "data/brandeis_cs.h"
#include "service/navigator.h"
#include "service/visualizer.h"

int main() {
  using namespace coursenav;

  // 1. The registrar dataset: 38 CS courses, schedules Fall'11 - Fall'15,
  //    and the CS-major requirement (7 core + 5 electives).
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);

  // 2. A brand-new student starting Fall 2013, at most 3 courses per
  //    semester, aiming to finish by Fall 2015.
  EnrollmentStatus student{Term(Season::kFall, 2013),
                           dataset.catalog.NewCourseSet()};
  Term deadline(Season::kFall, 2015);
  ExplorationOptions options;
  options.max_courses_per_term = 3;

  // 3. All goal-driven learning paths to the major.
  Result<GenerationResult> goal_result =
      navigator.ExploreGoal(student, deadline, *dataset.cs_major, options);
  if (!goal_result.ok()) {
    std::fprintf(stderr, "goal exploration failed: %s\n",
                 goal_result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Goal-driven exploration (CS major by %s) ===\n%s\n",
              deadline.ToString().c_str(),
              RenderGraphSummary(goal_result->graph, goal_result->stats)
                  .c_str());

  // 4. The top-5 shortest paths (time-based ranking).
  TimeRanking ranking;
  Result<RankedResult> ranked = navigator.ExploreTopK(
      student, deadline, *dataset.cs_major, ranking, /*k=*/5, options);
  if (!ranked.ok()) {
    std::fprintf(stderr, "ranked exploration failed: %s\n",
                 ranked.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Top-5 shortest paths ===\n%s",
              RenderPaths(ranked->paths, dataset.catalog).c_str());
  return 0;
}

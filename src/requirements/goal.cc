#include "requirements/goal.h"

#include <algorithm>

namespace coursenav {

bool CompositeGoal::IsSatisfied(const DynamicBitset& completed) const {
  for (const auto& part : parts_) {
    if (!part->IsSatisfied(completed)) return false;
  }
  return true;
}

int CompositeGoal::MinCoursesRemaining(const DynamicBitset& completed) const {
  int worst = 0;
  for (const auto& part : parts_) {
    worst = std::max(worst, part->MinCoursesRemaining(completed));
  }
  return worst;
}

bool CompositeGoal::AchievableWith(const DynamicBitset& completed,
                                   const DynamicBitset& available) const {
  for (const auto& part : parts_) {
    if (!part->AchievableWith(completed, available)) return false;
  }
  return true;
}

bool CompositeGoal::IsMonotone() const {
  for (const auto& part : parts_) {
    if (!part->IsMonotone()) return false;
  }
  return true;
}

std::string CompositeGoal::Describe() const {
  std::string out = "all of [";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += "; ";
    out += parts_[i]->Describe();
  }
  out += "]";
  return out;
}

}  // namespace coursenav

#include "requirements/goal.h"

#include <algorithm>
#include <memory>

namespace coursenav {

void Goal::MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                    int* out) const {
  // Reference fallback: replay the scalar virtual row by row through one
  // reused scratch set (no per-row allocation).
  DynamicBitset scratch(batch.universe_size);
  for (size_t i = 0; i < batch.count; ++i) {
    scratch.AssignWords(batch.row(i));
    out[i] = MinCoursesRemaining(scratch);
  }
}

void Goal::AchievableWithBatch(const CompletedBatchView& batch,
                               const DynamicBitset& available,
                               bool* out) const {
  DynamicBitset scratch(batch.universe_size);
  for (size_t i = 0; i < batch.count; ++i) {
    scratch.AssignWords(batch.row(i));
    out[i] = AchievableWith(scratch, available);
  }
}

bool CompositeGoal::IsSatisfied(const DynamicBitset& completed) const {
  for (const auto& part : parts_) {
    if (!part->IsSatisfied(completed)) return false;
  }
  return true;
}

int CompositeGoal::MinCoursesRemaining(const DynamicBitset& completed) const {
  int worst = 0;
  for (const auto& part : parts_) {
    worst = std::max(worst, part->MinCoursesRemaining(completed));
  }
  return worst;
}

bool CompositeGoal::AchievableWith(const DynamicBitset& completed,
                                   const DynamicBitset& available) const {
  for (const auto& part : parts_) {
    if (!part->AchievableWith(completed, available)) return false;
  }
  return true;
}

void CompositeGoal::MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                             int* out) const {
  std::fill(out, out + batch.count, 0);
  std::vector<int> part_out(batch.count);
  for (const auto& part : parts_) {
    part->MinCoursesRemainingBatch(batch, part_out.data());
    for (size_t i = 0; i < batch.count; ++i) {
      out[i] = std::max(out[i], part_out[i]);
    }
  }
}

void CompositeGoal::AchievableWithBatch(const CompletedBatchView& batch,
                                        const DynamicBitset& available,
                                        bool* out) const {
  std::fill(out, out + batch.count, true);
  auto part_out = std::make_unique<bool[]>(batch.count);
  for (const auto& part : parts_) {
    part->AchievableWithBatch(batch, available, part_out.get());
    for (size_t i = 0; i < batch.count; ++i) {
      out[i] = out[i] && part_out[i];
    }
  }
}

bool CompositeGoal::IsMonotone() const {
  for (const auto& part : parts_) {
    if (!part->IsMonotone()) return false;
  }
  return true;
}

std::string CompositeGoal::Describe() const {
  std::string out = "all of [";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += "; ";
    out += parts_[i]->Describe();
  }
  out += "]";
  return out;
}

}  // namespace coursenav

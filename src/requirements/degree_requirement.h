#ifndef COURSENAV_REQUIREMENTS_DEGREE_REQUIREMENT_H_
#define COURSENAV_REQUIREMENTS_DEGREE_REQUIREMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "requirements/goal.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav {

/// Which max-flow algorithm the requirement engine uses for credit
/// allocation. Ford–Fulkerson (Edmonds–Karp) is what the paper cites
/// (Equation 1 / Parameswaran et al.); Dinic is the ablation alternative.
enum class FlowAlgorithm { kFordFulkerson, kDinic };

/// One k-of-n requirement group: at least `required_count` courses out of
/// `courses` must be credited to this group.
struct RequirementGroup {
  std::string name;
  DynamicBitset courses;
  int required_count = 0;
};

/// Per-group progress line of a degree audit.
struct GroupAudit {
  std::string group_name;
  /// Completed courses the optimal allocation credits to this group.
  DynamicBitset credited;
  int required_count = 0;
  /// Not-yet-completed courses that could still fill this group's open
  /// slots.
  DynamicBitset remaining_candidates;

  int credited_count() const { return credited.count(); }
  int missing_count() const {
    int missing = required_count - credited_count();
    return missing > 0 ? missing : 0;
  }
};

/// A degree audit: optimal credit assignment of the student's completed
/// courses to requirement groups, plus what is still missing.
struct DegreeAudit {
  std::vector<GroupAudit> groups;
  bool satisfied = false;
  /// total slots - credited slots (== MinCoursesRemaining).
  int courses_missing = 0;

  /// "core: 5/7 (missing 2) ..." rendering.
  std::string ToString(const Catalog& catalog) const;
};

/// A degree requirement: a conjunction of possibly-overlapping k-of-n
/// groups where each completed course may be *credited to at most one*
/// group — the paper's "CS major requires 7 core courses and 5 electives"
/// with the complex-constraint semantics of Parameswaran et al. (TOIS 2011).
///
/// Credit allocation is a max-flow problem: source → course (capacity 1) →
/// every group containing it → sink (capacity = group's required count).
/// `CreditedSlots(X)` is that max flow; the requirement is satisfied when
/// every slot is filled, and `left_i = total slots − credited slots` is the
/// *exact* minimum number of additional courses needed when enough distinct
/// courses exist (and a lower bound always), which is what Equation 1's
/// time-based pruning requires.
class DegreeRequirement : public Goal {
 public:
  /// Incrementally assembles a DegreeRequirement against one catalog.
  class Builder {
   public:
    explicit Builder(const Catalog* catalog) : catalog_(catalog) {}

    /// Adds a group requiring `required_count` of the courses in `codes`.
    Builder& AddGroup(std::string name, const std::vector<std::string>& codes,
                      int required_count);

    /// Adds a group from an id set.
    Builder& AddGroupFromIds(std::string name, DynamicBitset courses,
                             int required_count);

    /// Validates and builds. Fails if any group is empty, has a
    /// non-positive count, a count larger than the group, or referenced an
    /// unknown course code.
    Result<std::shared_ptr<const DegreeRequirement>> Build(
        FlowAlgorithm algorithm = FlowAlgorithm::kFordFulkerson);

   private:
    const Catalog* catalog_;
    std::vector<RequirementGroup> groups_;
    Status deferred_error_;
  };

  /// Max number of requirement slots creditable from `completed`.
  int CreditedSlots(const DynamicBitset& completed) const;

  /// Full per-group progress report for `completed`, using an optimal
  /// credit allocation (ties broken deterministically by course id /
  /// group order). The registrar-style "degree audit".
  DegreeAudit Audit(const DynamicBitset& completed) const;

  /// Sum of all groups' required counts.
  int TotalSlots() const { return total_slots_; }

  bool IsSatisfied(const DynamicBitset& completed) const override;
  int MinCoursesRemaining(const DynamicBitset& completed) const override;
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const override;
  /// Credit allocation only grows with the completed set.
  bool IsMonotone() const override { return true; }
  std::string Describe() const override;

  const std::vector<RequirementGroup>& groups() const { return groups_; }

  /// Pass-key: only the builder can mint one, which keeps construction
  /// builder-only while letting it use std::make_shared (single
  /// allocation, no raw new).
  class Badge {
    friend class Builder;
    Badge() = default;
  };
  DegreeRequirement(Badge badge, std::vector<RequirementGroup> groups,
                    int universe_size, FlowAlgorithm algorithm);

 private:
  std::vector<RequirementGroup> groups_;
  /// Union of all group course sets; courses outside it never affect credit.
  DynamicBitset relevant_courses_;
  int universe_size_;
  int total_slots_;
  FlowAlgorithm algorithm_;
  /// True when no course appears in two groups. Credit allocation then
  /// needs no flow: each group's credit is simply min(|X ∩ G|, k_G). This
  /// covers the common core/electives split; overlapping groups (the
  /// general Parameswaran-style constraints) take the max-flow path.
  bool groups_disjoint_;
};

}  // namespace coursenav

#endif  // COURSENAV_REQUIREMENTS_DEGREE_REQUIREMENT_H_

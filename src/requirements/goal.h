#ifndef COURSENAV_REQUIREMENTS_GOAL_H_
#define COURSENAV_REQUIREMENTS_GOAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/bitset.h"

namespace coursenav {

/// Sentinel returned by `Goal::MinCoursesRemaining` when no future
/// enrollment status can satisfy the goal.
inline constexpr int kGoalUnreachable = 1 << 29;

/// A packed structure-of-arrays view of one frontier batch's completed
/// sets: `count` candidate rows of `stride` 64-bit words each; row `i`
/// starts at `words + i * stride`. Rows use DynamicBitset's word layout
/// (little-endian bit packing, zero padding above `universe_size`), so
/// `DynamicBitset::FromWords(universe_size, row)` reconstructs the set.
struct CompletedBatchView {
  const uint64_t* words;
  size_t stride;
  size_t count;
  int universe_size;

  const uint64_t* row(size_t i) const { return words + i * stride; }
};

/// A student's exploration goal: a condition on a future enrollment status
/// (Section 2, "Exploration Tasks").
///
/// Beyond the satisfaction test itself, a `Goal` exposes the two quantities
/// the goal-driven generator's pruning strategies need (Section 4.2):
///
///  * `MinCoursesRemaining(X)` — `left_i`, a lower bound on the number of
///    additional courses a student with completed set `X` must take before
///    the goal can hold. Feeds Equation 1 (time-based pruning). Soundness
///    contract: the bound must never exceed the true minimum; otherwise
///    Lemma 1 breaks and valid paths get pruned.
///
///  * `AchievableWith(X, available)` — whether the goal can hold after
///    completing some subset of `available` on top of `X`
///    (course-availability pruning). Soundness contract: must return true
///    whenever such a subset exists (over-approximation is allowed, under-
///    approximation is not).
class Goal {
 public:
  virtual ~Goal() = default;

  /// True if the goal condition holds for completed set `completed`.
  virtual bool IsSatisfied(const DynamicBitset& completed) const = 0;

  /// Lower bound on additional courses needed (see class comment).
  virtual int MinCoursesRemaining(const DynamicBitset& completed) const = 0;

  /// Sound achievability test (see class comment).
  virtual bool AchievableWith(const DynamicBitset& completed,
                              const DynamicBitset& available) const = 0;

  /// Batch variant of `MinCoursesRemaining` over a frontier batch's packed
  /// completed sets; writes the bound for row `i` to `out[i]`. The default
  /// implementation loops the scalar virtual over the rows; goals with a
  /// vectorizable representation (ExprGoal's packed DNF) override it with
  /// clause-major kernels. Overrides MUST return exactly
  /// `MinCoursesRemaining(row_i)` for every row — batched pruning relies on
  /// this to stay byte-identical to the node-at-a-time path.
  virtual void MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                        int* out) const;

  /// Batch variant of `AchievableWith` against one shared `available` set
  /// (availability is keyed by the batch's term); writes
  /// `AchievableWith(row_i, available)` to `out[i]`. Same exactness
  /// contract as `MinCoursesRemainingBatch`.
  virtual void AchievableWithBatch(const CompletedBatchView& batch,
                                   const DynamicBitset& available,
                                   bool* out) const;

  /// True if the goal is monotone in the completed set: completing more
  /// courses never hurts (`IsSatisfied(X) ⟹ IsSatisfied(X')` for `X ⊆ X'`,
  /// and `MinCoursesRemaining` is non-increasing in `X`). Monotone goals
  /// unlock a fast path in time-based pruning; returning false is always
  /// safe.
  virtual bool IsMonotone() const { return false; }

  /// Human-readable description for logs and visualizers.
  virtual std::string Describe() const = 0;
};

/// Conjunction of goals: satisfied when every part is.
///
/// `MinCoursesRemaining` is the max over parts — a valid lower bound even
/// when parts share courses (summing would overcount shared credit).
class CompositeGoal : public Goal {
 public:
  explicit CompositeGoal(std::vector<std::shared_ptr<const Goal>> parts)
      : parts_(std::move(parts)) {}

  bool IsSatisfied(const DynamicBitset& completed) const override;
  int MinCoursesRemaining(const DynamicBitset& completed) const override;
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const override;
  void MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                int* out) const override;
  void AchievableWithBatch(const CompletedBatchView& batch,
                           const DynamicBitset& available,
                           bool* out) const override;
  bool IsMonotone() const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const Goal>> parts_;
};

}  // namespace coursenav

#endif  // COURSENAV_REQUIREMENTS_GOAL_H_

#ifndef COURSENAV_REQUIREMENTS_GOAL_H_
#define COURSENAV_REQUIREMENTS_GOAL_H_

#include <memory>
#include <string>
#include <vector>

#include "util/bitset.h"

namespace coursenav {

/// Sentinel returned by `Goal::MinCoursesRemaining` when no future
/// enrollment status can satisfy the goal.
inline constexpr int kGoalUnreachable = 1 << 29;

/// A student's exploration goal: a condition on a future enrollment status
/// (Section 2, "Exploration Tasks").
///
/// Beyond the satisfaction test itself, a `Goal` exposes the two quantities
/// the goal-driven generator's pruning strategies need (Section 4.2):
///
///  * `MinCoursesRemaining(X)` — `left_i`, a lower bound on the number of
///    additional courses a student with completed set `X` must take before
///    the goal can hold. Feeds Equation 1 (time-based pruning). Soundness
///    contract: the bound must never exceed the true minimum; otherwise
///    Lemma 1 breaks and valid paths get pruned.
///
///  * `AchievableWith(X, available)` — whether the goal can hold after
///    completing some subset of `available` on top of `X`
///    (course-availability pruning). Soundness contract: must return true
///    whenever such a subset exists (over-approximation is allowed, under-
///    approximation is not).
class Goal {
 public:
  virtual ~Goal() = default;

  /// True if the goal condition holds for completed set `completed`.
  virtual bool IsSatisfied(const DynamicBitset& completed) const = 0;

  /// Lower bound on additional courses needed (see class comment).
  virtual int MinCoursesRemaining(const DynamicBitset& completed) const = 0;

  /// Sound achievability test (see class comment).
  virtual bool AchievableWith(const DynamicBitset& completed,
                              const DynamicBitset& available) const = 0;

  /// True if the goal is monotone in the completed set: completing more
  /// courses never hurts (`IsSatisfied(X) ⟹ IsSatisfied(X')` for `X ⊆ X'`,
  /// and `MinCoursesRemaining` is non-increasing in `X`). Monotone goals
  /// unlock a fast path in time-based pruning; returning false is always
  /// safe.
  virtual bool IsMonotone() const { return false; }

  /// Human-readable description for logs and visualizers.
  virtual std::string Describe() const = 0;
};

/// Conjunction of goals: satisfied when every part is.
///
/// `MinCoursesRemaining` is the max over parts — a valid lower bound even
/// when parts share courses (summing would overcount shared credit).
class CompositeGoal : public Goal {
 public:
  explicit CompositeGoal(std::vector<std::shared_ptr<const Goal>> parts)
      : parts_(std::move(parts)) {}

  bool IsSatisfied(const DynamicBitset& completed) const override;
  int MinCoursesRemaining(const DynamicBitset& completed) const override;
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const override;
  bool IsMonotone() const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const Goal>> parts_;
};

}  // namespace coursenav

#endif  // COURSENAV_REQUIREMENTS_GOAL_H_

#include "requirements/degree_requirement.h"

#include "flow/flow_network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace coursenav {

DegreeRequirement::Builder& DegreeRequirement::Builder::AddGroup(
    std::string name, const std::vector<std::string>& codes,
    int required_count) {
  Result<DynamicBitset> courses = catalog_->CourseSetFromCodes(codes);
  if (!courses.ok()) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::InvalidArgument(
          "group '" + name + "': " + courses.status().message());
    }
    return *this;
  }
  return AddGroupFromIds(std::move(name), std::move(courses).value(),
                         required_count);
}

DegreeRequirement::Builder& DegreeRequirement::Builder::AddGroupFromIds(
    std::string name, DynamicBitset courses, int required_count) {
  groups_.push_back(
      {std::move(name), std::move(courses), required_count});
  return *this;
}

Result<std::shared_ptr<const DegreeRequirement>>
DegreeRequirement::Builder::Build(FlowAlgorithm algorithm) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (groups_.empty()) {
    return Status::InvalidArgument(
        "degree requirement needs at least one group");
  }
  for (const RequirementGroup& group : groups_) {
    if (group.required_count <= 0) {
      return Status::InvalidArgument("group '" + group.name +
                                     "' has non-positive required count");
    }
    if (group.courses.universe_size() != catalog_->size()) {
      return Status::InvalidArgument("group '" + group.name +
                                     "' was built for a different catalog");
    }
    if (group.required_count > group.courses.count()) {
      return Status::InvalidArgument(StrFormat(
          "group '%s' requires %d courses but only lists %d",
          group.name.c_str(), group.required_count, group.courses.count()));
    }
  }
  return std::make_shared<const DegreeRequirement>(
      Badge(), std::move(groups_), catalog_->size(), algorithm);
}

DegreeRequirement::DegreeRequirement(Badge /*badge*/,
                                     std::vector<RequirementGroup> groups,
                                     int universe_size,
                                     FlowAlgorithm algorithm)
    : groups_(std::move(groups)),
      relevant_courses_(universe_size),
      universe_size_(universe_size),
      total_slots_(0),
      algorithm_(algorithm),
      groups_disjoint_(true) {
  for (const RequirementGroup& group : groups_) {
    if (relevant_courses_.Intersects(group.courses)) {
      groups_disjoint_ = false;
    }
    relevant_courses_ |= group.courses;
    total_slots_ += group.required_count;
  }
}

int DegreeRequirement::CreditedSlots(const DynamicBitset& completed) const {
  // Interned once; a relaxed atomic add per check afterwards.
  static obs::Counter* flow_checks =
      obs::GlobalMetrics().GetCounter(obs::kMetricFlowChecks);
  flow_checks->Increment();

  // Disjoint groups need no flow: credit per group is independent. This is
  // the hot path for the core/electives majors the generators hammer.
  if (groups_disjoint_) {
    int credited = 0;
    for (const RequirementGroup& group : groups_) {
      DynamicBitset in_group = completed;
      in_group &= group.courses;
      int count = in_group.count();
      credited += count < group.required_count ? count : group.required_count;
    }
    return credited;
  }

  // Only completed courses inside some group matter; intersect first so the
  // network stays small even for large completed sets.
  DynamicBitset relevant = completed;
  relevant &= relevant_courses_;
  std::vector<int> course_ids = relevant.ToIndices();
  if (course_ids.empty()) return 0;

  // Nodes: 0 = source, [1, n] courses, [n+1, n+g] groups, n+g+1 = sink.
  int n = static_cast<int>(course_ids.size());
  int g = static_cast<int>(groups_.size());
  flow::FlowNetwork network(n + g + 2);
  int source = 0;
  int sink = n + g + 1;
  for (int i = 0; i < n; ++i) {
    network.AddEdge(source, 1 + i, 1);
  }
  for (int j = 0; j < g; ++j) {
    network.AddEdge(1 + n + j, sink, groups_[static_cast<size_t>(j)]
                                         .required_count);
    for (int i = 0; i < n; ++i) {
      if (groups_[static_cast<size_t>(j)].courses.test(
              course_ids[static_cast<size_t>(i)])) {
        network.AddEdge(1 + i, 1 + n + j, 1);
      }
    }
  }
  static obs::Counter* flow_solves =
      obs::GlobalMetrics().GetCounter(obs::kMetricFlowSolves);
  flow_solves->Increment();
  obs::ScopedSpan span(obs::kSpanFlowCheck);
  span.AddInt("courses", n);
  span.AddInt("groups", g);
  int64_t flow = algorithm_ == FlowAlgorithm::kFordFulkerson
                     ? flow::EdmondsKarpMaxFlow(&network, source, sink)
                     : flow::DinicMaxFlow(&network, source, sink);
  span.AddInt("max_flow", flow);
  return static_cast<int>(flow);
}

DegreeAudit DegreeRequirement::Audit(const DynamicBitset& completed) const {
  DegreeAudit audit;
  audit.groups.reserve(groups_.size());

  // One optimal allocation, via the flow formulation regardless of
  // disjointness (the audit is not a hot path and the flow exposes the
  // per-course assignment).
  DynamicBitset relevant = completed;
  relevant &= relevant_courses_;
  std::vector<int> course_ids = relevant.ToIndices();
  int n = static_cast<int>(course_ids.size());
  int g = static_cast<int>(groups_.size());

  flow::FlowNetwork network(n + g + 2);
  int source = 0;
  int sink = n + g + 1;
  for (int i = 0; i < n; ++i) network.AddEdge(source, 1 + i, 1);
  // edge id of (course i -> group j), or -1.
  std::vector<std::vector<int>> course_group_edges(
      static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(g), -1));
  for (int j = 0; j < g; ++j) {
    network.AddEdge(1 + n + j, sink,
                    groups_[static_cast<size_t>(j)].required_count);
    for (int i = 0; i < n; ++i) {
      if (groups_[static_cast<size_t>(j)].courses.test(
              course_ids[static_cast<size_t>(i)])) {
        course_group_edges[static_cast<size_t>(i)][static_cast<size_t>(j)] =
            network.AddEdge(1 + i, 1 + n + j, 1);
      }
    }
  }
  int credited = static_cast<int>(
      algorithm_ == FlowAlgorithm::kFordFulkerson
          ? flow::EdmondsKarpMaxFlow(&network, source, sink)
          : flow::DinicMaxFlow(&network, source, sink));

  for (int j = 0; j < g; ++j) {
    const RequirementGroup& group = groups_[static_cast<size_t>(j)];
    GroupAudit line;
    line.group_name = group.name;
    line.required_count = group.required_count;
    line.credited = DynamicBitset(universe_size_);
    for (int i = 0; i < n; ++i) {
      int edge = course_group_edges[static_cast<size_t>(i)]
                                   [static_cast<size_t>(j)];
      if (edge >= 0 && network.FlowOn(edge) == 1) {
        line.credited.set(course_ids[static_cast<size_t>(i)]);
      }
    }
    line.remaining_candidates = group.courses;
    line.remaining_candidates.Subtract(completed);
    audit.groups.push_back(std::move(line));
  }
  audit.courses_missing = total_slots_ - credited;
  audit.satisfied = audit.courses_missing == 0;
  return audit;
}

std::string DegreeAudit::ToString(const Catalog& catalog) const {
  std::string out;
  for (const GroupAudit& group : groups) {
    out += StrFormat("%s: %d/%d credited %s", group.group_name.c_str(),
                     group.credited_count(), group.required_count,
                     catalog.CourseSetToString(group.credited).c_str());
    if (group.missing_count() > 0) {
      out += StrFormat(", missing %d (candidates %s)", group.missing_count(),
                       catalog.CourseSetToString(group.remaining_candidates)
                           .c_str());
    }
    out += "\n";
  }
  out += satisfied ? "requirement satisfied\n"
                   : StrFormat("%d course(s) still needed\n",
                               courses_missing);
  return out;
}

bool DegreeRequirement::IsSatisfied(const DynamicBitset& completed) const {
  return CreditedSlots(completed) == total_slots_;
}

int DegreeRequirement::MinCoursesRemaining(
    const DynamicBitset& completed) const {
  // Each additional course fills at most one slot, so this is a valid lower
  // bound; it is exact whenever enough distinct eligible courses remain.
  return total_slots_ - CreditedSlots(completed);
}

bool DegreeRequirement::AchievableWith(const DynamicBitset& completed,
                                       const DynamicBitset& available) const {
  DynamicBitset reachable = completed;
  reachable |= available;
  return IsSatisfied(reachable);
}

std::string DegreeRequirement::Describe() const {
  std::string out = "degree requirement (";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i != 0) out += ", ";
    out += StrFormat("%d of %d %s", groups_[i].required_count,
                     groups_[i].courses.count(), groups_[i].name.c_str());
  }
  out += ")";
  return out;
}

}  // namespace coursenav

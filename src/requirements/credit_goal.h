#ifndef COURSENAV_REQUIREMENTS_CREDIT_GOAL_H_
#define COURSENAV_REQUIREMENTS_CREDIT_GOAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// A credit-accumulation goal: reach at least `required_credits` credits,
/// counting only courses inside an eligible set — "complete 16 credits of
/// upper-level CS". One of the higher-expressivity goal forms the paper's
/// future work calls for (Section 6).
///
/// `MinCoursesRemaining` is exact: the fewest additional courses needed is
/// found greedily by taking the highest-credit eligible courses first.
/// The goal is monotone (credits only accumulate), so it composes with
/// both pruning strategies and the monotone fast paths.
class CreditGoal : public Goal {
 public:
  /// `credits[i]` is the credit value of course id `i`; must have one entry
  /// per catalog course, all >= 0. `eligible` restricts which courses count
  /// (pass a full set for "any course"). Fails on size mismatches, negative
  /// credits, a non-positive requirement, or a requirement exceeding the
  /// total eligible credit supply.
  static Result<std::shared_ptr<const CreditGoal>> Create(
      const Catalog& catalog, std::vector<double> credits,
      DynamicBitset eligible, double required_credits);

  /// Convenience: uniform `credits_per_course` for every catalog course.
  static Result<std::shared_ptr<const CreditGoal>> UniformCredits(
      const Catalog& catalog, double credits_per_course,
      DynamicBitset eligible, double required_credits);

  bool IsSatisfied(const DynamicBitset& completed) const override;
  int MinCoursesRemaining(const DynamicBitset& completed) const override;
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const override;
  bool IsMonotone() const override { return true; }
  std::string Describe() const override;

  /// Credits earned from `completed` (eligible courses only).
  double EarnedCredits(const DynamicBitset& completed) const;

  /// Pass-key: only the factories can mint one, which keeps construction
  /// factory-only while letting them use std::make_shared (single
  /// allocation, no raw new).
  class Badge {
    friend class CreditGoal;
    Badge() = default;
  };
  CreditGoal(Badge badge, std::vector<double> credits, DynamicBitset eligible,
             double required_credits);

 private:
  std::vector<double> credits_;
  DynamicBitset eligible_;
  double required_credits_;
  /// Eligible course ids sorted by descending credit value, for the greedy
  /// min-remaining computation.
  std::vector<int> by_credit_desc_;
};

}  // namespace coursenav

#endif  // COURSENAV_REQUIREMENTS_CREDIT_GOAL_H_

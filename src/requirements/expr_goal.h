#ifndef COURSENAV_REQUIREMENTS_EXPR_GOAL_H_
#define COURSENAV_REQUIREMENTS_EXPR_GOAL_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "expr/dnf.h"
#include "expr/expr.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// A goal stated as a boolean expression over course codes — the paper's
/// "goal requirement as a boolean expression on the student's enrollment
/// status" (Section 4.2).
///
/// Internally the expression is compiled to DNF once; `MinCoursesRemaining`
/// is then the fewest missing positive literals of any live clause, and
/// `AchievableWith` checks whether any live clause fits inside
/// `completed ∪ available`. Both are sound even with negation (see
/// expr::Dnf).
class ExprGoal : public Goal {
 public:
  /// Compiles `goal_expr` against `catalog` (which must outlive the goal).
  /// Fails if the expression references unknown courses or its DNF exceeds
  /// `max_clauses`.
  static Result<std::shared_ptr<const ExprGoal>> Create(
      const expr::Expr& goal_expr, const Catalog& catalog,
      int max_clauses = 4096);

  /// Convenience: the goal "complete every course in `codes`".
  static Result<std::shared_ptr<const ExprGoal>> CompleteAll(
      const std::vector<std::string>& codes, const Catalog& catalog);

  bool IsSatisfied(const DynamicBitset& completed) const override;
  int MinCoursesRemaining(const DynamicBitset& completed) const override;
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const override;
  /// Batch pruning hooks, delegated to the DNF's packed clause-major
  /// kernels (exact per-row agreement with the scalar methods).
  void MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                int* out) const override;
  void AchievableWithBatch(const CompletedBatchView& batch,
                           const DynamicBitset& available,
                           bool* out) const override;
  /// Monotone exactly when the DNF has no negative literal.
  bool IsMonotone() const override;
  std::string Describe() const override;

  const expr::Dnf& dnf() const { return dnf_; }

  /// Pass-key: only the factories can mint one, which keeps construction
  /// factory-only while letting them use std::make_shared (single
  /// allocation, no raw new).
  class Badge {
    friend class ExprGoal;
    Badge() = default;
  };
  ExprGoal(Badge /*badge*/, expr::Expr source, expr::Dnf dnf)
      : source_(std::move(source)), dnf_(std::move(dnf)) {}

 private:
  expr::Expr source_;
  expr::Dnf dnf_;
};

}  // namespace coursenav

#endif  // COURSENAV_REQUIREMENTS_EXPR_GOAL_H_

#include "requirements/credit_goal.h"

#include <algorithm>

#include "util/string_util.h"

namespace coursenav {

Result<std::shared_ptr<const CreditGoal>> CreditGoal::Create(
    const Catalog& catalog, std::vector<double> credits,
    DynamicBitset eligible, double required_credits) {
  if (static_cast<int>(credits.size()) != catalog.size()) {
    return Status::InvalidArgument(
        "credit table size does not match the catalog");
  }
  if (eligible.universe_size() != catalog.size()) {
    return Status::InvalidArgument(
        "eligible set was built for a different catalog");
  }
  if (required_credits <= 0) {
    return Status::InvalidArgument("required credits must be positive");
  }
  double supply = 0.0;
  bool negative = false;
  for (int i = 0; i < catalog.size(); ++i) {
    if (credits[static_cast<size_t>(i)] < 0) negative = true;
    if (eligible.test(i)) supply += credits[static_cast<size_t>(i)];
  }
  if (negative) {
    return Status::InvalidArgument("credit values must be non-negative");
  }
  if (supply < required_credits) {
    return Status::InvalidArgument(StrFormat(
        "requirement of %.1f credits exceeds the %.1f available",
        required_credits, supply));
  }
  return std::make_shared<const CreditGoal>(
      Badge(), std::move(credits), std::move(eligible), required_credits);
}

Result<std::shared_ptr<const CreditGoal>> CreditGoal::UniformCredits(
    const Catalog& catalog, double credits_per_course, DynamicBitset eligible,
    double required_credits) {
  return Create(catalog,
                std::vector<double>(static_cast<size_t>(catalog.size()),
                                    credits_per_course),
                std::move(eligible), required_credits);
}

CreditGoal::CreditGoal(Badge /*badge*/, std::vector<double> credits,
                       DynamicBitset eligible, double required_credits)
    : credits_(std::move(credits)),
      eligible_(std::move(eligible)),
      required_credits_(required_credits) {
  eligible_.ForEach([this](int id) { by_credit_desc_.push_back(id); });
  std::stable_sort(by_credit_desc_.begin(), by_credit_desc_.end(),
                   [this](int a, int b) {
                     return credits_[static_cast<size_t>(a)] >
                            credits_[static_cast<size_t>(b)];
                   });
}

double CreditGoal::EarnedCredits(const DynamicBitset& completed) const {
  DynamicBitset counted = completed;
  counted &= eligible_;
  double earned = 0.0;
  counted.ForEach(
      [&](int id) { earned += credits_[static_cast<size_t>(id)]; });
  return earned;
}

bool CreditGoal::IsSatisfied(const DynamicBitset& completed) const {
  return EarnedCredits(completed) >= required_credits_;
}

int CreditGoal::MinCoursesRemaining(const DynamicBitset& completed) const {
  double missing = required_credits_ - EarnedCredits(completed);
  if (missing <= 0) return 0;
  // Greedy: highest-credit not-yet-taken eligible courses close the gap in
  // the fewest courses (exact for a simple sum threshold).
  int needed = 0;
  for (int id : by_credit_desc_) {
    if (completed.test(id)) continue;
    ++needed;
    missing -= credits_[static_cast<size_t>(id)];
    if (missing <= 0) return needed;
  }
  return kGoalUnreachable;
}

bool CreditGoal::AchievableWith(const DynamicBitset& completed,
                                const DynamicBitset& available) const {
  DynamicBitset reachable = completed;
  reachable |= available;
  return IsSatisfied(reachable);
}

std::string CreditGoal::Describe() const {
  return StrFormat("earn %.1f credits from %d eligible courses",
                   required_credits_, eligible_.count());
}

}  // namespace coursenav

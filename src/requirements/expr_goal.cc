#include "requirements/expr_goal.h"

namespace coursenav {

Result<std::shared_ptr<const ExprGoal>> ExprGoal::Create(
    const expr::Expr& goal_expr, const Catalog& catalog, int max_clauses) {
  COURSENAV_ASSIGN_OR_RETURN(
      expr::Dnf dnf,
      expr::Dnf::FromExpr(goal_expr, catalog.MakeResolver(), catalog.size(),
                          max_clauses));
  return std::make_shared<const ExprGoal>(Badge(), goal_expr,
                                          std::move(dnf));
}

Result<std::shared_ptr<const ExprGoal>> ExprGoal::CompleteAll(
    const std::vector<std::string>& codes, const Catalog& catalog) {
  std::vector<expr::Expr> vars;
  vars.reserve(codes.size());
  for (const std::string& code : codes) vars.push_back(expr::Expr::Var(code));
  return Create(expr::Expr::And(std::move(vars)), catalog);
}

bool ExprGoal::IsSatisfied(const DynamicBitset& completed) const {
  return dnf_.Eval(completed);
}

int ExprGoal::MinCoursesRemaining(const DynamicBitset& completed) const {
  int bound = dnf_.MinAdditionalCourses(completed);
  return bound >= expr::Dnf::kUnreachable ? kGoalUnreachable : bound;
}

bool ExprGoal::AchievableWith(const DynamicBitset& completed,
                              const DynamicBitset& available) const {
  return dnf_.AchievableWith(completed, available);
}

void ExprGoal::MinCoursesRemainingBatch(const CompletedBatchView& batch,
                                        int* out) const {
  dnf_.MinAdditionalCoursesBatch(batch.words, batch.stride, batch.count, out);
  for (size_t i = 0; i < batch.count; ++i) {
    if (out[i] >= expr::Dnf::kUnreachable) out[i] = kGoalUnreachable;
  }
}

void ExprGoal::AchievableWithBatch(const CompletedBatchView& batch,
                                   const DynamicBitset& available,
                                   bool* out) const {
  dnf_.AchievableWithBatch(batch.words, batch.stride, batch.count, available,
                           out);
}

bool ExprGoal::IsMonotone() const {
  for (const expr::DnfClause& clause : dnf_.clauses()) {
    if (!clause.negative.empty()) return false;
  }
  return true;
}

std::string ExprGoal::Describe() const {
  return "satisfy '" + source_.ToString() + "'";
}

}  // namespace coursenav

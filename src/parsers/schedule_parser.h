#ifndef COURSENAV_PARSERS_SCHEDULE_PARSER_H_
#define COURSENAV_PARSERS_SCHEDULE_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "util/result.h"

namespace coursenav {

/// The paper's Schedule Parser (Figure 2): turns the registrar's class
/// scheduling information into each course's offering set `S_i`.
///
/// Input is CSV-like text, one course per line:
///
/// ```
/// # comment lines and blank lines are skipped
/// COSI11A, Fall 2011; Fall 2012; Fall 2013
/// COSI21A, Spring 2012
/// ```
///
/// The first field is the (normalized) course code; the remainder of the
/// line is a semicolon-separated list of terms in any `Term::Parse`
/// format. Unknown course codes and malformed terms fail with the line
/// number in the message.
Result<OfferingSchedule> ParseScheduleCsv(std::string_view text,
                                          const Catalog& catalog);

}  // namespace coursenav

#endif  // COURSENAV_PARSERS_SCHEDULE_PARSER_H_

#include "parsers/transcript_parser.h"

#include <algorithm>
#include <map>

#include "parsers/prereq_parser.h"
#include "util/string_util.h"

namespace coursenav {

Result<std::vector<Transcript>> ParseTranscriptsCsv(std::string_view text,
                                                    const Catalog& catalog) {
  // student -> term index -> courses. std::map keeps output deterministic.
  std::map<std::string, std::map<int, std::vector<CourseId>>> grouped;
  int line_number = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_number;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    std::vector<std::string_view> fields = SplitAndTrim(trimmed, ',');
    if (fields.size() != 3) {
      return Status::ParseError(StrFormat(
          "transcript line %d: expected 'student, term, course'",
          line_number));
    }
    Result<Term> term = Term::Parse(fields[1]);
    if (!term.ok()) {
      return Status::ParseError(StrFormat("transcript line %d: %s",
                                          line_number,
                                          term.status().message().c_str()));
    }
    Result<CourseId> course =
        catalog.FindByCode(NormalizeCourseCode(fields[2]));
    if (!course.ok()) {
      return Status::ParseError(StrFormat("transcript line %d: %s",
                                          line_number,
                                          course.status().message().c_str()));
    }
    grouped[std::string(fields[0])][term->index()].push_back(*course);
  }

  std::vector<Transcript> out;
  out.reserve(grouped.size());
  for (auto& [student, by_term] : grouped) {
    Transcript transcript;
    transcript.student_id = student;
    for (auto& [term_index, courses] : by_term) {
      std::sort(courses.begin(), courses.end());
      transcript.records.emplace_back(Term::FromIndex(term_index),
                                      std::move(courses));
    }
    out.push_back(std::move(transcript));
  }
  return out;
}

Result<LearningPath> TranscriptToPath(const Transcript& transcript,
                                      const Catalog& catalog, Term start_term,
                                      Term end_term) {
  if (end_term <= start_term) {
    return Status::InvalidArgument("end term must be after the start term");
  }
  for (const auto& [term, courses] : transcript.records) {
    (void)courses;
    if (term < start_term || term >= end_term) {
      return Status::InvalidArgument(
          "transcript of '" + transcript.student_id + "' has a record at " +
          term.ToString() + " outside the window");
    }
  }

  LearningPath path(start_term, catalog.NewCourseSet());
  size_t cursor = 0;
  for (Term term = start_term; term < end_term; term = term.Next()) {
    DynamicBitset selection = catalog.NewCourseSet();
    if (cursor < transcript.records.size() &&
        transcript.records[cursor].first == term) {
      for (CourseId course : transcript.records[cursor].second) {
        selection.set(course);
      }
      ++cursor;
    }
    path.AppendStep(term, std::move(selection));
  }
  return path;
}

}  // namespace coursenav

#include "parsers/prereq_parser.h"

#include <cctype>
#include <vector>

#include "expr/parser.h"
#include "util/string_util.h"

namespace coursenav {

std::string NormalizeCourseCode(std::string_view code) {
  std::string out;
  out.reserve(code.size());
  for (char c : code) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

namespace {

/// Case-insensitively removes every occurrence of `phrase` from `text`.
void RemovePhrase(std::string& text, std::string_view phrase) {
  std::string lower = ToLowerAscii(text);
  std::string lower_phrase = ToLowerAscii(phrase);
  size_t pos = 0;
  while ((pos = lower.find(lower_phrase, pos)) != std::string::npos) {
    text.erase(pos, lower_phrase.size());
    lower.erase(pos, lower_phrase.size());
  }
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<expr::Expr> ParsePrerequisiteText(std::string_view text) {
  std::string work(TrimWhitespace(text));

  // Strip the leading label.
  for (std::string_view label :
       {"prerequisites:", "prerequisite:", "prereqs:", "prereq:"}) {
    if (work.size() >= label.size() &&
        EqualsIgnoreCase(std::string_view(work).substr(0, label.size()),
                         label)) {
      work.erase(0, label.size());
      break;
    }
  }

  // The prerequisite sentence ends at the first period or semicolon.
  size_t terminator = work.find_first_of(".;");
  if (terminator != std::string::npos) work.resize(terminator);

  // Strict mode: drop instructor-permission escape hatches.
  for (std::string_view phrase :
       {"or permission of the instructor", "or consent of the instructor",
        "or permission of instructor", "or consent of instructor",
        "or instructor permission", "or instructor consent"}) {
    RemovePhrase(work, phrase);
  }

  std::string_view trimmed = TrimWhitespace(work);
  if (trimmed.empty() || EqualsIgnoreCase(trimmed, "none") ||
      EqualsIgnoreCase(trimmed, "n/a")) {
    return expr::Expr::True();
  }

  // Tokenize into words, parentheses, and commas.
  struct RawToken {
    std::string text;
    bool is_word;
  };
  std::vector<RawToken> tokens;
  size_t i = 0;
  while (i < trimmed.size()) {
    char c = trimmed[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '(' || c == ')' || c == ',') {
      tokens.push_back({std::string(1, c), false});
      ++i;
    } else if (IsWordChar(c)) {
      size_t start = i;
      while (i < trimmed.size() && IsWordChar(trimmed[i])) ++i;
      tokens.push_back({std::string(trimmed.substr(start, i - start)), true});
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in prerequisite text");
    }
  }

  // Rebuild a strict boolean expression:
  //  * merge "DEPT 11a"-style spaced codes,
  //  * turn commas into conjunction (", or"/"," and" collapse into the
  //    following operator),
  //  * normalize course-code case.
  std::vector<std::string> parts;
  for (size_t t = 0; t < tokens.size(); ++t) {
    const RawToken& tok = tokens[t];
    if (tok.text == ",") {
      // A comma immediately followed by an operator is decoration.
      bool next_is_operator =
          t + 1 < tokens.size() && tokens[t + 1].is_word &&
          (EqualsIgnoreCase(tokens[t + 1].text, "and") ||
           EqualsIgnoreCase(tokens[t + 1].text, "or"));
      if (!next_is_operator) parts.push_back("and");
      continue;
    }
    if (!tok.is_word) {
      parts.push_back(tok.text);  // parenthesis
      continue;
    }
    if (EqualsIgnoreCase(tok.text, "and") || EqualsIgnoreCase(tok.text, "or") ||
        EqualsIgnoreCase(tok.text, "not") ||
        EqualsIgnoreCase(tok.text, "true") ||
        EqualsIgnoreCase(tok.text, "false")) {
      parts.push_back(ToLowerAscii(tok.text));
      continue;
    }
    // A purely alphabetic word followed by a digit-leading word is a spaced
    // course code ("COSI" + "11a").
    bool alphabetic = true;
    for (char c : tok.text) {
      if (!std::isalpha(static_cast<unsigned char>(c))) {
        alphabetic = false;
        break;
      }
    }
    if (alphabetic && t + 1 < tokens.size() && tokens[t + 1].is_word &&
        std::isdigit(static_cast<unsigned char>(tokens[t + 1].text[0]))) {
      parts.push_back(NormalizeCourseCode(tok.text + tokens[t + 1].text));
      ++t;
      continue;
    }
    parts.push_back(NormalizeCourseCode(tok.text));
  }

  std::string rebuilt = Join(parts, " ");
  // The join above glues parentheses with spaces, which the boolean parser
  // accepts as-is.
  Result<expr::Expr> parsed = expr::ParseBoolExpr(rebuilt);
  if (!parsed.ok()) {
    return Status::ParseError("prerequisite text '" + std::string(text) +
                              "' (normalized: '" + rebuilt +
                              "'): " + parsed.status().message());
  }
  return parsed;
}

}  // namespace coursenav

#ifndef COURSENAV_PARSERS_PREREQ_PARSER_H_
#define COURSENAV_PARSERS_PREREQ_PARSER_H_

#include <string>
#include <string_view>

#include "expr/expr.h"
#include "util/result.h"

namespace coursenav {

/// The paper's Prerequisite Parser (Figure 2): turns a registrar course
/// description's prerequisite text into the boolean condition `Q_i`.
///
/// Accepted registrar idioms, beyond the strict boolean grammar of
/// expr::ParseBoolExpr:
///
///  * A leading label: "Prerequisite:", "Prerequisites:", "Prereq:".
///  * Spaced course codes: "COSI 11a" is normalized to "COSI11A"
///    (uppercase, department glued to the number).
///  * Comma-separated course lists mean conjunction: "COSI 11a, COSI 29a"
///    == "COSI11A and COSI29A". A comma directly before "or"/"and" is
///    ignored ("COSI 11a, or COSI 12b" == "COSI11A or COSI12B").
///  * "none" / "n/a" / empty text parse to the constant true.
///  * Instructor-permission escape hatches ("or permission of the
///    instructor", "or consent of instructor") are stripped: the parser is
///    *strict*, modeling the plannable requirement only. (A permission
///    disjunct would make every prerequisite vacuously satisfiable.)
///
/// Periods and semicolons terminate the prerequisite sentence; anything
/// after the first terminator is ignored.
Result<expr::Expr> ParsePrerequisiteText(std::string_view text);

/// Normalizes one course code: uppercases and removes internal whitespace,
/// e.g. "cosi 11a" -> "COSI11A".
std::string NormalizeCourseCode(std::string_view code);

}  // namespace coursenav

#endif  // COURSENAV_PARSERS_PREREQ_PARSER_H_

#include "parsers/schedule_parser.h"

#include "parsers/prereq_parser.h"
#include "util/string_util.h"

namespace coursenav {

Result<OfferingSchedule> ParseScheduleCsv(std::string_view text,
                                          const Catalog& catalog) {
  OfferingSchedule schedule(catalog.size());
  int line_number = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_number;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;

    size_t comma = trimmed.find(',');
    if (comma == std::string_view::npos) {
      return Status::ParseError(
          StrFormat("schedule line %d: expected 'CODE, terms...'",
                    line_number));
    }
    std::string code = NormalizeCourseCode(trimmed.substr(0, comma));
    Result<CourseId> course = catalog.FindByCode(code);
    if (!course.ok()) {
      return Status::ParseError(StrFormat("schedule line %d: %s", line_number,
                                          course.status().message().c_str()));
    }
    for (std::string_view term_text :
         SplitAndTrim(trimmed.substr(comma + 1), ';')) {
      Result<Term> term = Term::Parse(term_text);
      if (!term.ok()) {
        return Status::ParseError(StrFormat("schedule line %d: %s",
                                            line_number,
                                            term.status().message().c_str()));
      }
      COURSENAV_RETURN_IF_ERROR(schedule.AddOffering(*course, *term));
    }
  }
  return schedule;
}

}  // namespace coursenav

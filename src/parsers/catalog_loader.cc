#include "parsers/catalog_loader.h"

#include <string>
#include <vector>

#include "parsers/prereq_parser.h"
#include "util/string_util.h"

namespace coursenav {

Result<CatalogBundle> LoadCatalogFromJson(std::string_view json_text) {
  COURSENAV_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(json_text));
  COURSENAV_ASSIGN_OR_RETURN(JsonValue courses, doc.Get("courses"));
  if (!courses.is_array()) {
    return Status::ParseError("'courses' must be an array");
  }

  CatalogBundle bundle;
  // First pass: intern all courses so prerequisites may reference any
  // course regardless of order; offerings are applied in a second pass
  // once the catalog size is known.
  struct PendingOfferings {
    CourseId course;
    std::vector<Term> terms;
  };
  std::vector<PendingOfferings> pending;

  for (const JsonValue& entry : courses.array()) {
    if (!entry.is_object()) {
      return Status::ParseError("course entries must be objects");
    }
    Course course;
    COURSENAV_ASSIGN_OR_RETURN(JsonValue code, entry.Get("code"));
    COURSENAV_ASSIGN_OR_RETURN(std::string code_text, code.GetString());
    course.code = NormalizeCourseCode(code_text);

    if (entry.Has("title")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue title, entry.Get("title"));
      COURSENAV_ASSIGN_OR_RETURN(course.title, title.GetString());
    }
    if (entry.Has("workload")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue workload, entry.Get("workload"));
      COURSENAV_ASSIGN_OR_RETURN(course.workload_hours, workload.GetNumber());
    }
    if (entry.Has("prerequisites")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue prereq, entry.Get("prerequisites"));
      COURSENAV_ASSIGN_OR_RETURN(std::string prereq_text, prereq.GetString());
      Result<expr::Expr> parsed = ParsePrerequisiteText(prereq_text);
      if (!parsed.ok()) {
        return Status::ParseError("course '" + course.code +
                                  "': " + parsed.status().message());
      }
      course.prerequisites = std::move(parsed).value();
    }

    std::vector<Term> terms;
    if (entry.Has("offered")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue offered, entry.Get("offered"));
      if (!offered.is_array()) {
        return Status::ParseError("course '" + course.code +
                                  "': 'offered' must be an array");
      }
      for (const JsonValue& term_value : offered.array()) {
        COURSENAV_ASSIGN_OR_RETURN(std::string term_text,
                                   term_value.GetString());
        Result<Term> term = Term::Parse(term_text);
        if (!term.ok()) {
          return Status::ParseError("course '" + course.code +
                                    "': " + term.status().message());
        }
        terms.push_back(*term);
      }
    }

    COURSENAV_ASSIGN_OR_RETURN(CourseId id,
                               bundle.catalog.AddCourse(std::move(course)));
    pending.push_back({id, std::move(terms)});
  }

  COURSENAV_RETURN_IF_ERROR(bundle.catalog.Finalize());

  bundle.schedule = OfferingSchedule(bundle.catalog.size());
  for (const PendingOfferings& entry : pending) {
    for (Term term : entry.terms) {
      COURSENAV_RETURN_IF_ERROR(
          bundle.schedule.AddOffering(entry.course, term));
    }
  }
  return bundle;
}

JsonValue CatalogToJson(const Catalog& catalog,
                        const OfferingSchedule& schedule) {
  JsonValue::Array courses;
  for (CourseId id = 0; id < catalog.size(); ++id) {
    const Course& course = catalog.course(id);
    JsonValue::Object obj;
    obj["code"] = JsonValue(course.code);
    obj["title"] = JsonValue(course.title);
    obj["workload"] = JsonValue(course.workload_hours);
    obj["prerequisites"] = JsonValue(course.prerequisites.ToString());
    JsonValue::Array offered;
    for (Term term : schedule.OfferingTerms(id)) {
      offered.emplace_back(term.ToString());
    }
    obj["offered"] = JsonValue(std::move(offered));
    courses.emplace_back(std::move(obj));
  }
  JsonValue::Object doc;
  doc["courses"] = JsonValue(std::move(courses));
  return JsonValue(std::move(doc));
}

}  // namespace coursenav

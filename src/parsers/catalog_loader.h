#ifndef COURSENAV_PARSERS_CATALOG_LOADER_H_
#define COURSENAV_PARSERS_CATALOG_LOADER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "util/json.h"
#include "util/result.h"

namespace coursenav {

/// A catalog together with its class schedule — the registrar data bundle
/// the back end (Figure 2) hands to the Learning Path Generator.
struct CatalogBundle {
  Catalog catalog;
  OfferingSchedule schedule;

  CatalogBundle() : schedule(0) {}
};

/// Loads a catalog + schedule from a JSON document of the form:
///
/// ```json
/// {
///   "courses": [
///     {
///       "code": "COSI11A",
///       "title": "Programming in Java",
///       "workload": 8.5,
///       "prerequisites": "none",
///       "offered": ["Fall 2011", "Fall 2012"]
///     }
///   ]
/// }
/// ```
///
/// `prerequisites` accepts anything `ParsePrerequisiteText` accepts and
/// may be omitted (no prerequisites); `workload` defaults to 0; `offered`
/// may be omitted (never offered — useful for retired courses referenced
/// only as prerequisites). The returned catalog is finalized.
Result<CatalogBundle> LoadCatalogFromJson(std::string_view json_text);

/// Serializes a catalog + schedule back into the JSON schema accepted by
/// `LoadCatalogFromJson` (round-trip stable).
JsonValue CatalogToJson(const Catalog& catalog,
                        const OfferingSchedule& schedule);

}  // namespace coursenav

#endif  // COURSENAV_PARSERS_CATALOG_LOADER_H_

#ifndef COURSENAV_PARSERS_TRANSCRIPT_PARSER_H_
#define COURSENAV_PARSERS_TRANSCRIPT_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/term.h"
#include "graph/path.h"
#include "util/result.h"

namespace coursenav {

/// One (anonymized) student transcript: course completions per semester —
/// the data behind the paper's §5.2 containment experiment.
struct Transcript {
  std::string student_id;
  /// (term, courses completed that term), ascending by term.
  std::vector<std::pair<Term, std::vector<CourseId>>> records;
};

/// Parses transcripts from CSV text with one enrollment per line:
///
/// ```
/// # student_id, term, course_code
/// s001, Fall 2012, COSI11A
/// s001, Fall 2012, COSI29A
/// s001, Spring 2013, COSI12B
/// ```
///
/// Records are grouped per student and sorted by term; the order of lines
/// does not matter. Unknown course codes fail with the line number.
Result<std::vector<Transcript>> ParseTranscriptsCsv(std::string_view text,
                                                    const Catalog& catalog);

/// Converts a transcript to a LearningPath over `[start_term, end_term]`,
/// starting from an empty completed set. Semesters inside the window
/// without records become empty (skip) steps.
Result<LearningPath> TranscriptToPath(const Transcript& transcript,
                                      const Catalog& catalog, Term start_term,
                                      Term end_term);

}  // namespace coursenav

#endif  // COURSENAV_PARSERS_TRANSCRIPT_PARSER_H_

#include "expr/compiled_expr.h"

#include <algorithm>
#include <cassert>

namespace coursenav::expr {

CompiledExpr::CompiledExpr() {
  ops_.push_back({OpCode::kPushTrue, 0});
}

Status CompiledExpr::CompileNode(const Expr& node, const VarResolver& resolver,
                                 std::vector<Op>* out) {
  switch (node.kind()) {
    case Expr::Kind::kConst:
      out->push_back(
          {node.const_value() ? OpCode::kPushTrue : OpCode::kPushFalse, 0});
      return Status::OK();
    case Expr::Kind::kVar: {
      Result<int> id = resolver(node.var_name());
      if (!id.ok()) return id.status();
      out->push_back({OpCode::kPushVar, *id});
      return Status::OK();
    }
    case Expr::Kind::kNot:
      COURSENAV_RETURN_IF_ERROR(
          CompileNode(node.operands()[0], resolver, out));
      out->push_back({OpCode::kNot, 0});
      return Status::OK();
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      for (const Expr& op : node.operands()) {
        COURSENAV_RETURN_IF_ERROR(CompileNode(op, resolver, out));
      }
      out->push_back({node.kind() == Expr::Kind::kAnd ? OpCode::kAnd
                                                      : OpCode::kOr,
                      static_cast<int32_t>(node.operands().size())});
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression node kind");
}

Result<CompiledExpr> CompiledExpr::Compile(const Expr& source,
                                           const VarResolver& resolver) {
  CompiledExpr compiled;
  compiled.ops_.clear();
  COURSENAV_RETURN_IF_ERROR(
      CompileNode(source, resolver, &compiled.ops_));
  for (const Op& op : compiled.ops_) {
    if (op.code == OpCode::kPushVar) {
      compiled.referenced_ids_.push_back(op.arg);
    }
  }
  std::sort(compiled.referenced_ids_.begin(), compiled.referenced_ids_.end());
  compiled.referenced_ids_.erase(
      std::unique(compiled.referenced_ids_.begin(),
                  compiled.referenced_ids_.end()),
      compiled.referenced_ids_.end());
  return compiled;
}

bool CompiledExpr::Eval(const DynamicBitset& completed) const {
  // Fixed-capacity stack covers all realistic prerequisite programs; a
  // heap vector takes over for pathological depth.
  constexpr int kInlineCapacity = 64;
  bool inline_stack[kInlineCapacity] = {};
  std::vector<bool> heap_stack;
  const bool use_heap = ops_.size() > kInlineCapacity;
  if (use_heap) heap_stack.resize(ops_.size());

  int top = 0;  // next free slot
  auto push = [&](bool v) {
    if (use_heap) {
      heap_stack[static_cast<size_t>(top++)] = v;
    } else {
      inline_stack[top++] = v;
    }
  };
  auto at = [&](int idx) -> bool {
    return use_heap ? static_cast<bool>(heap_stack[static_cast<size_t>(idx)])
                    : inline_stack[idx];
  };

  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushTrue:
        push(true);
        break;
      case OpCode::kPushFalse:
        push(false);
        break;
      case OpCode::kPushVar:
        push(completed.test(op.arg));
        break;
      case OpCode::kNot: {
        bool v = at(top - 1);
        top -= 1;
        push(!v);
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        int n = op.arg;
        bool acc = op.code == OpCode::kAnd;
        for (int i = 0; i < n; ++i) {
          bool v = at(top - n + i);
          acc = op.code == OpCode::kAnd ? (acc && v) : (acc || v);
        }
        top -= n;
        push(acc);
        break;
      }
    }
  }
  assert(top == 1);
  return at(0);
}

bool CompiledExpr::IsAlwaysTrue() const {
  return ops_.size() == 1 && ops_[0].code == OpCode::kPushTrue;
}

}  // namespace coursenav::expr

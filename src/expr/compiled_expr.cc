#include "expr/compiled_expr.h"

#include <algorithm>
#include <cassert>

namespace coursenav::expr {

CompiledExpr::CompiledExpr() {
  ops_.push_back({OpCode::kPushTrue, 0});
}

Status CompiledExpr::CompileNode(const Expr& node, const VarResolver& resolver,
                                 std::vector<Op>* out) {
  switch (node.kind()) {
    case Expr::Kind::kConst:
      out->push_back(
          {node.const_value() ? OpCode::kPushTrue : OpCode::kPushFalse, 0});
      return Status::OK();
    case Expr::Kind::kVar: {
      Result<int> id = resolver(node.var_name());
      if (!id.ok()) return id.status();
      out->push_back({OpCode::kPushVar, *id});
      return Status::OK();
    }
    case Expr::Kind::kNot:
      COURSENAV_RETURN_IF_ERROR(
          CompileNode(node.operands()[0], resolver, out));
      out->push_back({OpCode::kNot, 0});
      return Status::OK();
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      for (const Expr& op : node.operands()) {
        COURSENAV_RETURN_IF_ERROR(CompileNode(op, resolver, out));
      }
      out->push_back({node.kind() == Expr::Kind::kAnd ? OpCode::kAnd
                                                      : OpCode::kOr,
                      static_cast<int32_t>(node.operands().size())});
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression node kind");
}

Result<CompiledExpr> CompiledExpr::Compile(const Expr& source,
                                           const VarResolver& resolver) {
  CompiledExpr compiled;
  compiled.ops_.clear();
  COURSENAV_RETURN_IF_ERROR(
      CompileNode(source, resolver, &compiled.ops_));
  for (const Op& op : compiled.ops_) {
    if (op.code == OpCode::kPushVar) {
      compiled.referenced_ids_.push_back(op.arg);
    }
  }
  std::sort(compiled.referenced_ids_.begin(), compiled.referenced_ids_.end());
  compiled.referenced_ids_.erase(
      std::unique(compiled.referenced_ids_.begin(),
                  compiled.referenced_ids_.end()),
      compiled.referenced_ids_.end());
  compiled.max_stack_depth_ = MaxStackDepth(compiled.ops_);
  return compiled;
}

int CompiledExpr::MaxStackDepth(const std::vector<Op>& ops) {
  int depth = 0;
  int max_depth = 0;
  for (const Op& op : ops) {
    switch (op.code) {
      case OpCode::kPushTrue:
      case OpCode::kPushFalse:
      case OpCode::kPushVar:
        ++depth;
        break;
      case OpCode::kNot:
        break;  // pop 1, push 1
      case OpCode::kAnd:
      case OpCode::kOr:
        depth -= op.arg - 1;  // pop n, push 1
        break;
    }
    max_depth = std::max(max_depth, depth);
  }
  return max_depth;
}

bool CompiledExpr::Eval(const DynamicBitset& completed) const {
  if (max_stack_depth_ <= kBitStackCapacity) return EvalBitStack(completed);
  return EvalHeapStack(completed);
}

bool CompiledExpr::EvalBitStack(const DynamicBitset& completed) const {
  // The whole boolean stack lives in one register: bit `i` is slot `i`,
  // bits at or above `top` are kept zero. `Compile` proved occupancy never
  // exceeds 64 slots, so every shift below is by at most 63.
  uint64_t stack = 0;
  unsigned top = 0;
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushTrue:
        stack |= uint64_t{1} << top;
        ++top;
        break;
      case OpCode::kPushFalse:
        ++top;
        break;
      case OpCode::kPushVar:
        stack |= uint64_t{completed.test(op.arg)} << top;
        ++top;
        break;
      case OpCode::kNot:
        stack ^= uint64_t{1} << (top - 1);
        break;
      case OpCode::kAnd:
      case OpCode::kOr: {
        const unsigned n = static_cast<unsigned>(op.arg);
        const unsigned base = top - n;
        const uint64_t mask =
            (n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1) << base;
        const bool acc = op.code == OpCode::kAnd ? (stack & mask) == mask
                                                 : (stack & mask) != 0;
        stack &= (uint64_t{1} << base) - 1;
        stack |= uint64_t{acc} << base;
        top = base + 1;
        break;
      }
    }
  }
  assert(top == 1);
  return (stack & 1) != 0;
}

bool CompiledExpr::EvalHeapStack(const DynamicBitset& completed) const {
  // Pathological depth (> 64 live slots): a heap stack, sized by the exact
  // compile-time bound.
  std::vector<bool> stack(static_cast<size_t>(max_stack_depth_));
  int top = 0;  // next free slot
  auto push = [&](bool v) { stack[static_cast<size_t>(top++)] = v; };
  auto at = [&](int idx) -> bool { return stack[static_cast<size_t>(idx)]; };

  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushTrue:
        push(true);
        break;
      case OpCode::kPushFalse:
        push(false);
        break;
      case OpCode::kPushVar:
        push(completed.test(op.arg));
        break;
      case OpCode::kNot: {
        bool v = at(top - 1);
        top -= 1;
        push(!v);
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        int n = op.arg;
        bool acc = op.code == OpCode::kAnd;
        for (int i = 0; i < n; ++i) {
          bool v = at(top - n + i);
          acc = op.code == OpCode::kAnd ? (acc && v) : (acc || v);
        }
        top -= n;
        push(acc);
        break;
      }
    }
  }
  assert(top == 1);
  return at(0);
}

bool CompiledExpr::IsAlwaysTrue() const {
  return ops_.size() == 1 && ops_[0].code == OpCode::kPushTrue;
}

}  // namespace coursenav::expr

#ifndef COURSENAV_EXPR_EXPR_H_
#define COURSENAV_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitset.h"
#include "util/result.h"

namespace coursenav::expr {

/// A boolean expression over named course variables.
///
/// This is the paper's prerequisite condition
/// `Q_i = (x_j ∧ ... ∧ x_k) ∨ ... ∨ (x_m ∧ ... ∧ x_n)` generalized to an
/// arbitrary and/or/not tree. `Expr` is an immutable value type (cheap to
/// copy: shared structure), built either programmatically via the factory
/// functions or by `ParseBoolExpr()` (see parser.h).
///
/// Expressions reference courses by *name*. Before evaluation on the hot path
/// they are compiled against a catalog's dense course-id space into a
/// `CompiledExpr` (see compiled_expr.h), whose evaluation over a course
/// bitset is allocation-free.
class Expr {
 public:
  enum class Kind { kConst, kVar, kNot, kAnd, kOr };

  /// Default-constructs the constant `true` (the prerequisite of a course
  /// with no prerequisites).
  Expr();

  static Expr True();
  static Expr False();
  static Expr Var(std::string name);
  static Expr Not(Expr operand);
  /// N-ary conjunction/disjunction. Empty And() == True, empty Or() == False.
  static Expr And(std::vector<Expr> operands);
  static Expr Or(std::vector<Expr> operands);

  Kind kind() const;

  /// For kConst nodes: the constant value.
  bool const_value() const;
  /// For kVar nodes: the variable (course code) name.
  const std::string& var_name() const;
  /// For kNot/kAnd/kOr nodes: the operand list (exactly one for kNot).
  const std::vector<Expr>& operands() const;

  /// Evaluates with `is_true(name)` supplying each variable's value.
  bool Eval(const std::function<bool(std::string_view)>& is_true) const;

  /// Inserts every distinct variable name into `out`.
  void CollectVars(std::set<std::string>* out) const;

  /// Number of nodes in the tree (size metric used by tests/limits).
  int NodeCount() const;

  /// Renders with minimal parentheses, e.g. "A and (B or C)".
  std::string ToString() const;

  friend bool operator==(const Expr& a, const Expr& b) {
    return a.StructurallyEquals(b);
  }

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node);

  bool StructurallyEquals(const Expr& other) const;
  void ToStringInternal(std::string& out, int parent_precedence) const;

  std::shared_ptr<const Node> node_;
};

}  // namespace coursenav::expr

#endif  // COURSENAV_EXPR_EXPR_H_

#ifndef COURSENAV_EXPR_DNF_H_
#define COURSENAV_EXPR_DNF_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "expr/compiled_expr.h"
#include "expr/expr.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav::expr {

/// One conjunctive clause of a DNF: a set of positive literals (courses that
/// must be completed) and negative literals (courses that must not be).
struct DnfClause {
  DynamicBitset positive;
  DynamicBitset negative;
};

/// A disjunctive-normal-form view of a boolean expression over dense course
/// ids.
///
/// The paper's expression-valued goals ("complete this set of programming
/// courses", Q-style degree conditions) are pruned with two quantities that
/// the DNF makes cheap:
///
///  * `MinAdditionalCourses(X)` — a lower bound on how many more courses a
///    student with completed set `X` must take before the goal can hold;
///    this is `left_i` in Equation 1 for expression goals.
///  * `AchievableWith(X, available)` — whether the goal can still hold if
///    the student additionally completes any subset of `available`; this is
///    the course-availability pruning test.
///
/// Both are *sound* even with negative literals: completed courses are never
/// un-completed, so a clause whose negative literal is already in `X` is
/// dead, and future negative-literal violations can only shrink the set of
/// viable clauses (the bound stays a lower bound, the achievability test
/// stays an over-approximation).
class Dnf {
 public:
  /// Converts `source` (resolved against `resolver` into a universe of
  /// `universe_size` course ids) to DNF. Conversion is worst-case
  /// exponential; it fails with ResourceExhausted once more than
  /// `max_clauses` clauses would be produced.
  static Result<Dnf> FromExpr(const Expr& source, const VarResolver& resolver,
                              int universe_size, int max_clauses = 4096);

  /// True if some clause is satisfied by `completed`.
  bool Eval(const DynamicBitset& completed) const;

  /// Lower bound on additional courses needed from `completed`;
  /// `kUnreachable` if no clause can ever be satisfied.
  int MinAdditionalCourses(const DynamicBitset& completed) const;

  /// True if some clause could be satisfied by completing a subset of
  /// `available` on top of `completed`.
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const;

  /// Batch variant of `MinAdditionalCourses` over a packed
  /// structure-of-arrays matrix of completed sets: row `i` is the `stride`
  /// words at `completed + i * stride` (stride must equal this DNF's word
  /// count). Loops clause-major — each packed clause row streams across the
  /// whole batch while hot — and writes the per-candidate bound (or
  /// `kUnreachable`) to `out[i]`. Results are exactly
  /// `MinAdditionalCourses(row_i)`.
  void MinAdditionalCoursesBatch(const uint64_t* completed, size_t stride,
                                 size_t count, int* out) const;

  /// Batch variant of `AchievableWith` against one shared `available` set
  /// (availability is keyed by term, so a frontier batch shares it).
  /// Writes `AchievableWith(row_i, available)` to `out[i]`.
  void AchievableWithBatch(const uint64_t* completed, size_t stride,
                           size_t count, const DynamicBitset& available,
                           bool* out) const;

  const std::vector<DnfClause>& clauses() const { return clauses_; }

  /// Words per packed clause row (= ceil(universe_size / 64)).
  size_t word_stride() const { return stride_; }

  /// True for the empty disjunction (constant false).
  bool IsFalse() const { return clauses_.empty(); }

  /// True if some clause has no literals (constant true).
  bool IsTrue() const;

  std::string ToString() const;

  /// Sentinel for "no clause reachable".
  static constexpr int kUnreachable = 1 << 29;

 private:
  explicit Dnf(int universe_size) : universe_size_(universe_size) {}

  /// Appends `clause` unless subsumed; drops clauses it subsumes
  /// (absorption).
  void AddClause(DnfClause clause);

  /// Freezes the clause list into packed word matrices (`packed_pos_`,
  /// `packed_neg_`: clause-major rows of `stride_` words). Called once at
  /// the end of FromExpr; the evaluation hot paths run on the packed rows
  /// so no per-clause bitset is copied or allocated at query time.
  void Pack();

  const uint64_t* PositiveRow(size_t clause) const {
    return packed_pos_.data() + clause * stride_;
  }
  const uint64_t* NegativeRow(size_t clause) const {
    return packed_neg_.data() + clause * stride_;
  }

  int universe_size_;
  std::vector<DnfClause> clauses_;
  size_t stride_ = 0;
  std::vector<uint64_t> packed_pos_;
  std::vector<uint64_t> packed_neg_;
  bool has_negative_ = false;
};

}  // namespace coursenav::expr

#endif  // COURSENAV_EXPR_DNF_H_

#ifndef COURSENAV_EXPR_DNF_H_
#define COURSENAV_EXPR_DNF_H_

#include <string>
#include <vector>

#include "expr/compiled_expr.h"
#include "expr/expr.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav::expr {

/// One conjunctive clause of a DNF: a set of positive literals (courses that
/// must be completed) and negative literals (courses that must not be).
struct DnfClause {
  DynamicBitset positive;
  DynamicBitset negative;
};

/// A disjunctive-normal-form view of a boolean expression over dense course
/// ids.
///
/// The paper's expression-valued goals ("complete this set of programming
/// courses", Q-style degree conditions) are pruned with two quantities that
/// the DNF makes cheap:
///
///  * `MinAdditionalCourses(X)` — a lower bound on how many more courses a
///    student with completed set `X` must take before the goal can hold;
///    this is `left_i` in Equation 1 for expression goals.
///  * `AchievableWith(X, available)` — whether the goal can still hold if
///    the student additionally completes any subset of `available`; this is
///    the course-availability pruning test.
///
/// Both are *sound* even with negative literals: completed courses are never
/// un-completed, so a clause whose negative literal is already in `X` is
/// dead, and future negative-literal violations can only shrink the set of
/// viable clauses (the bound stays a lower bound, the achievability test
/// stays an over-approximation).
class Dnf {
 public:
  /// Converts `source` (resolved against `resolver` into a universe of
  /// `universe_size` course ids) to DNF. Conversion is worst-case
  /// exponential; it fails with ResourceExhausted once more than
  /// `max_clauses` clauses would be produced.
  static Result<Dnf> FromExpr(const Expr& source, const VarResolver& resolver,
                              int universe_size, int max_clauses = 4096);

  /// True if some clause is satisfied by `completed`.
  bool Eval(const DynamicBitset& completed) const;

  /// Lower bound on additional courses needed from `completed`;
  /// `kUnreachable` if no clause can ever be satisfied.
  int MinAdditionalCourses(const DynamicBitset& completed) const;

  /// True if some clause could be satisfied by completing a subset of
  /// `available` on top of `completed`.
  bool AchievableWith(const DynamicBitset& completed,
                      const DynamicBitset& available) const;

  const std::vector<DnfClause>& clauses() const { return clauses_; }

  /// True for the empty disjunction (constant false).
  bool IsFalse() const { return clauses_.empty(); }

  /// True if some clause has no literals (constant true).
  bool IsTrue() const;

  std::string ToString() const;

  /// Sentinel for "no clause reachable".
  static constexpr int kUnreachable = 1 << 29;

 private:
  explicit Dnf(int universe_size) : universe_size_(universe_size) {}

  /// Appends `clause` unless subsumed; drops clauses it subsumes
  /// (absorption).
  void AddClause(DnfClause clause);

  int universe_size_;
  std::vector<DnfClause> clauses_;
};

}  // namespace coursenav::expr

#endif  // COURSENAV_EXPR_DNF_H_

#include "expr/expr.h"

#include <cassert>

namespace coursenav::expr {

struct Expr::Node {
  Kind kind;
  bool const_value = false;
  std::string var_name;
  std::vector<Expr> operands;
};

Expr::Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Expr::Expr() : Expr(True()) {}

Expr Expr::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = true;
  return Expr(std::move(node));
}

Expr Expr::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kConst;
  node->const_value = false;
  return Expr(std::move(node));
}

Expr Expr::Var(std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kVar;
  node->var_name = std::move(name);
  return Expr(std::move(node));
}

Expr Expr::Not(Expr operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->operands.push_back(std::move(operand));
  return Expr(std::move(node));
}

Expr Expr::And(std::vector<Expr> operands) {
  if (operands.empty()) return True();
  if (operands.size() == 1) return std::move(operands[0]);
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->operands = std::move(operands);
  return Expr(std::move(node));
}

Expr Expr::Or(std::vector<Expr> operands) {
  if (operands.empty()) return False();
  if (operands.size() == 1) return std::move(operands[0]);
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->operands = std::move(operands);
  return Expr(std::move(node));
}

Expr::Kind Expr::kind() const { return node_->kind; }

bool Expr::const_value() const {
  assert(node_->kind == Kind::kConst);
  return node_->const_value;
}

const std::string& Expr::var_name() const {
  assert(node_->kind == Kind::kVar);
  return node_->var_name;
}

const std::vector<Expr>& Expr::operands() const { return node_->operands; }

bool Expr::Eval(const std::function<bool(std::string_view)>& is_true) const {
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value;
    case Kind::kVar:
      return is_true(node_->var_name);
    case Kind::kNot:
      return !node_->operands[0].Eval(is_true);
    case Kind::kAnd:
      for (const Expr& op : node_->operands) {
        if (!op.Eval(is_true)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Expr& op : node_->operands) {
        if (op.Eval(is_true)) return true;
      }
      return false;
  }
  return false;
}

void Expr::CollectVars(std::set<std::string>* out) const {
  switch (node_->kind) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->insert(node_->var_name);
      return;
    default:
      for (const Expr& op : node_->operands) op.CollectVars(out);
  }
}

int Expr::NodeCount() const {
  int count = 1;
  for (const Expr& op : node_->operands) count += op.NodeCount();
  return count;
}

bool Expr::StructurallyEquals(const Expr& other) const {
  if (node_ == other.node_) return true;
  if (node_->kind != other.node_->kind) return false;
  switch (node_->kind) {
    case Kind::kConst:
      return node_->const_value == other.node_->const_value;
    case Kind::kVar:
      return node_->var_name == other.node_->var_name;
    default: {
      if (node_->operands.size() != other.node_->operands.size()) return false;
      for (size_t i = 0; i < node_->operands.size(); ++i) {
        if (!(node_->operands[i] == other.node_->operands[i])) return false;
      }
      return true;
    }
  }
}

namespace {
// Precedence: or < and < not < atoms. Parenthesize a child whose operator
// binds less tightly than its context.
int Precedence(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kOr:
      return 1;
    case Expr::Kind::kAnd:
      return 2;
    case Expr::Kind::kNot:
      return 3;
    default:
      return 4;
  }
}
}  // namespace

void Expr::ToStringInternal(std::string& out, int parent_precedence) const {
  int prec = Precedence(node_->kind);
  bool need_parens = prec < parent_precedence;
  if (need_parens) out += '(';
  switch (node_->kind) {
    case Kind::kConst:
      out += node_->const_value ? "true" : "false";
      break;
    case Kind::kVar:
      out += node_->var_name;
      break;
    case Kind::kNot:
      out += "not ";
      node_->operands[0].ToStringInternal(out, prec + 1);
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = node_->kind == Kind::kAnd ? " and " : " or ";
      for (size_t i = 0; i < node_->operands.size(); ++i) {
        if (i != 0) out += sep;
        node_->operands[i].ToStringInternal(out, prec);
      }
      break;
    }
  }
  if (need_parens) out += ')';
}

std::string Expr::ToString() const {
  std::string out;
  ToStringInternal(out, 0);
  return out;
}

}  // namespace coursenav::expr

#include "expr/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace coursenav::expr {

namespace {

enum class TokenKind { kIdent, kAnd, kOr, kNot, kTrue, kFalse, kLParen,
                       kRParen, kEnd };

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      size_t offset = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", offset});
        return tokens;
      }
      char c = text_[pos_];
      if (c == '(') {
        ++pos_;
        tokens.push_back({TokenKind::kLParen, "(", offset});
      } else if (c == ')') {
        ++pos_;
        tokens.push_back({TokenKind::kRParen, ")", offset});
      } else if (c == '&') {
        pos_ += (pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') ? 2 : 1;
        tokens.push_back({TokenKind::kAnd, "&", offset});
      } else if (c == '|') {
        pos_ += (pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') ? 2 : 1;
        tokens.push_back({TokenKind::kOr, "|", offset});
      } else if (c == '!') {
        ++pos_;
        tokens.push_back({TokenKind::kNot, "!", offset});
      } else if (std::isalnum(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
        std::string word(text_.substr(start, pos_ - start));
        if (EqualsIgnoreCase(word, "and")) {
          tokens.push_back({TokenKind::kAnd, word, offset});
        } else if (EqualsIgnoreCase(word, "or")) {
          tokens.push_back({TokenKind::kOr, word, offset});
        } else if (EqualsIgnoreCase(word, "not")) {
          tokens.push_back({TokenKind::kNot, word, offset});
        } else if (EqualsIgnoreCase(word, "true")) {
          tokens.push_back({TokenKind::kTrue, word, offset});
        } else if (EqualsIgnoreCase(word, "false")) {
          tokens.push_back({TokenKind::kFalse, word, offset});
        } else {
          tokens.push_back({TokenKind::kIdent, word, offset});
        }
      } else {
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, offset));
      }
    }
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Expr> Parse() {
    COURSENAV_ASSIGN_OR_RETURN(Expr root, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens after expression");
    }
    return root;
  }

 private:
  Result<Expr> ParseOr() {
    std::vector<Expr> operands;
    COURSENAV_ASSIGN_OR_RETURN(Expr first, ParseAnd());
    operands.push_back(std::move(first));
    while (Peek().kind == TokenKind::kOr) {
      ++pos_;
      COURSENAV_ASSIGN_OR_RETURN(Expr next, ParseAnd());
      operands.push_back(std::move(next));
    }
    return Expr::Or(std::move(operands));
  }

  Result<Expr> ParseAnd() {
    std::vector<Expr> operands;
    COURSENAV_ASSIGN_OR_RETURN(Expr first, ParseUnary());
    operands.push_back(std::move(first));
    while (Peek().kind == TokenKind::kAnd) {
      ++pos_;
      COURSENAV_ASSIGN_OR_RETURN(Expr next, ParseUnary());
      operands.push_back(std::move(next));
    }
    return Expr::And(std::move(operands));
  }

  Result<Expr> ParseUnary() {
    if (Peek().kind == TokenKind::kNot) {
      ++pos_;
      COURSENAV_ASSIGN_OR_RETURN(Expr operand, ParseUnary());
      return Expr::Not(std::move(operand));
    }
    return ParsePrimary();
  }

  Result<Expr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIdent: {
        Expr var = Expr::Var(tok.text);
        ++pos_;
        return var;
      }
      case TokenKind::kTrue:
        ++pos_;
        return Expr::True();
      case TokenKind::kFalse:
        ++pos_;
        return Expr::False();
      case TokenKind::kLParen: {
        ++pos_;
        COURSENAV_ASSIGN_OR_RETURN(Expr inner, ParseOr());
        if (Peek().kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        ++pos_;
        return inner;
      }
      default:
        return Error("expected course code, constant, or '('");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }

  Status Error(std::string msg) const {
    return Status::ParseError(StrFormat("at offset %zu: %s",
                                        Peek().offset, msg.c_str()));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Expr> ParseBoolExpr(std::string_view text) {
  if (TrimWhitespace(text).empty()) {
    return Status::ParseError("empty boolean expression");
  }
  COURSENAV_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                             Lexer(text).Tokenize());
  return Parser(std::move(tokens)).Parse();
}

}  // namespace coursenav::expr

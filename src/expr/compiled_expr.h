#ifndef COURSENAV_EXPR_COMPILED_EXPR_H_
#define COURSENAV_EXPR_COMPILED_EXPR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/expr.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav::expr {

/// Resolves a course code to its dense id within some catalog, or an error if
/// the code is unknown.
using VarResolver = std::function<Result<int>(std::string_view)>;

/// A prerequisite expression compiled to a flat postfix program over dense
/// course ids, evaluated against a completed-course bitset.
///
/// This is the representation used on the generator hot path: computing the
/// option set `Y_i` evaluates every not-yet-completed course's prerequisite
/// against `X_i`, millions of times per exploration. Evaluation is
/// allocation-free: programs whose compile-time maximum stack depth fits 64
/// slots (all realistic prerequisites) run on a branch-light bit-stack — one
/// uint64 register holds the whole boolean stack, NOT is an XOR and
/// variadic AND/OR are a single mask compare — and a heap vector takes over
/// beyond that.
class CompiledExpr {
 public:
  /// An always-true program (course with no prerequisites).
  CompiledExpr();

  /// Compiles `source`, resolving every variable via `resolver`.
  static Result<CompiledExpr> Compile(const Expr& source,
                                      const VarResolver& resolver);

  /// Evaluates against the set of completed courses.
  bool Eval(const DynamicBitset& completed) const;

  /// Dense ids of all referenced courses, ascending and deduplicated.
  const std::vector<int>& referenced_ids() const { return referenced_ids_; }

  /// True if the program is the constant `true`.
  bool IsAlwaysTrue() const;

  /// Number of instructions (size metric).
  int ProgramSize() const { return static_cast<int>(ops_.size()); }

 private:
  enum class OpCode : uint8_t { kPushTrue, kPushFalse, kPushVar, kNot, kAnd,
                                kOr };
  struct Op {
    OpCode code;
    int32_t arg;  // var id for kPushVar; operand count for kAnd/kOr
  };

  static Status CompileNode(const Expr& node, const VarResolver& resolver,
                            std::vector<Op>* out);

  /// Exact maximum value-stack occupancy of `ops`, by abstract execution.
  static int MaxStackDepth(const std::vector<Op>& ops);

  bool EvalBitStack(const DynamicBitset& completed) const;
  bool EvalHeapStack(const DynamicBitset& completed) const;

  /// Bit-stack capacity: one uint64 register of boolean slots.
  static constexpr int kBitStackCapacity = 64;

  std::vector<Op> ops_;
  std::vector<int> referenced_ids_;
  int max_stack_depth_ = 1;
};

}  // namespace coursenav::expr

#endif  // COURSENAV_EXPR_COMPILED_EXPR_H_

#include "expr/dnf.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/simd/simd.h"
#include "util/string_util.h"

namespace coursenav::expr {

namespace {

/// Expression tree over resolved ids in negation normal form, the
/// intermediate step of the DNF conversion.
struct NnfNode {
  enum class Kind { kTrue, kFalse, kLit, kAnd, kOr };
  Kind kind;
  int var_id = -1;
  bool negated = false;
  std::vector<NnfNode> children;
};

Result<NnfNode> ToNnf(const Expr& node, const VarResolver& resolver,
                      bool negate) {
  switch (node.kind()) {
    case Expr::Kind::kConst: {
      NnfNode out;
      out.kind = (node.const_value() != negate) ? NnfNode::Kind::kTrue
                                                : NnfNode::Kind::kFalse;
      return out;
    }
    case Expr::Kind::kVar: {
      Result<int> id = resolver(node.var_name());
      if (!id.ok()) return id.status();
      NnfNode out;
      out.kind = NnfNode::Kind::kLit;
      out.var_id = *id;
      out.negated = negate;
      return out;
    }
    case Expr::Kind::kNot:
      return ToNnf(node.operands()[0], resolver, !negate);
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      bool is_and = (node.kind() == Expr::Kind::kAnd) != negate;
      NnfNode out;
      out.kind = is_and ? NnfNode::Kind::kAnd : NnfNode::Kind::kOr;
      out.children.reserve(node.operands().size());
      for (const Expr& op : node.operands()) {
        COURSENAV_ASSIGN_OR_RETURN(NnfNode child,
                                   ToNnf(op, resolver, negate));
        out.children.push_back(std::move(child));
      }
      return out;
    }
  }
  return Status::Internal("unknown expression node kind");
}

}  // namespace

void Dnf::AddClause(DnfClause clause) {
  // Contradictory clause (x and not x) is identically false.
  if (clause.positive.Intersects(clause.negative)) return;
  for (const DnfClause& existing : clauses_) {
    // `existing` subsumes `clause` if its literal set is a subset: anything
    // satisfying `clause` satisfies `existing` already.
    if (existing.positive.IsSubsetOf(clause.positive) &&
        existing.negative.IsSubsetOf(clause.negative)) {
      return;
    }
  }
  // Drop clauses the new one subsumes.
  clauses_.erase(
      std::remove_if(clauses_.begin(), clauses_.end(),
                     [&clause](const DnfClause& existing) {
                       return clause.positive.IsSubsetOf(existing.positive) &&
                              clause.negative.IsSubsetOf(existing.negative);
                     }),
      clauses_.end());
  clauses_.push_back(std::move(clause));
}

Result<Dnf> Dnf::FromExpr(const Expr& source, const VarResolver& resolver,
                          int universe_size, int max_clauses) {
  COURSENAV_ASSIGN_OR_RETURN(NnfNode root,
                             ToNnf(source, resolver, /*negate=*/false));

  // Recursively produce clause lists; And = pairwise union cross-product.
  struct Converter {
    int universe_size;
    int max_clauses;

    Result<std::vector<DnfClause>> Convert(const NnfNode& node) {
      switch (node.kind) {
        case NnfNode::Kind::kFalse:
          return std::vector<DnfClause>{};
        case NnfNode::Kind::kTrue: {
          std::vector<DnfClause> out;
          out.push_back({DynamicBitset(universe_size),
                         DynamicBitset(universe_size)});
          return out;
        }
        case NnfNode::Kind::kLit: {
          DnfClause clause{DynamicBitset(universe_size),
                           DynamicBitset(universe_size)};
          if (node.negated) {
            clause.negative.set(node.var_id);
          } else {
            clause.positive.set(node.var_id);
          }
          std::vector<DnfClause> out;
          out.push_back(std::move(clause));
          return out;
        }
        case NnfNode::Kind::kOr: {
          std::vector<DnfClause> out;
          for (const NnfNode& child : node.children) {
            COURSENAV_ASSIGN_OR_RETURN(std::vector<DnfClause> sub,
                                       Convert(child));
            for (DnfClause& clause : sub) out.push_back(std::move(clause));
            if (static_cast<int>(out.size()) > max_clauses) {
              return Status::ResourceExhausted(
                  "DNF conversion exceeded clause limit");
            }
          }
          return out;
        }
        case NnfNode::Kind::kAnd: {
          std::vector<DnfClause> acc;
          acc.push_back({DynamicBitset(universe_size),
                         DynamicBitset(universe_size)});
          for (const NnfNode& child : node.children) {
            COURSENAV_ASSIGN_OR_RETURN(std::vector<DnfClause> sub,
                                       Convert(child));
            std::vector<DnfClause> next;
            next.reserve(acc.size() * sub.size());
            for (const DnfClause& a : acc) {
              for (const DnfClause& b : sub) {
                DnfClause merged = a;
                merged.positive |= b.positive;
                merged.negative |= b.negative;
                next.push_back(std::move(merged));
                if (static_cast<int>(next.size()) > max_clauses) {
                  return Status::ResourceExhausted(
                      "DNF conversion exceeded clause limit");
                }
              }
            }
            acc = std::move(next);
          }
          return acc;
        }
      }
      return Status::Internal("unknown NNF node kind");
    }
  };

  Converter converter{universe_size, max_clauses};
  COURSENAV_ASSIGN_OR_RETURN(std::vector<DnfClause> raw,
                             converter.Convert(root));

  Dnf dnf(universe_size);
  for (DnfClause& clause : raw) dnf.AddClause(std::move(clause));
  dnf.Pack();
  return dnf;
}

void Dnf::Pack() {
  stride_ = (static_cast<size_t>(universe_size_) + 63) / 64;
  packed_pos_.assign(clauses_.size() * stride_, 0);
  packed_neg_.assign(clauses_.size() * stride_, 0);
  has_negative_ = false;
  for (size_t c = 0; c < clauses_.size(); ++c) {
    std::memcpy(packed_pos_.data() + c * stride_,
                clauses_[c].positive.word_data(),
                stride_ * sizeof(uint64_t));
    std::memcpy(packed_neg_.data() + c * stride_,
                clauses_[c].negative.word_data(),
                stride_ * sizeof(uint64_t));
    if (!clauses_[c].negative.empty()) has_negative_ = true;
  }
}

bool Dnf::Eval(const DynamicBitset& completed) const {
  const uint64_t* cw = completed.word_data();
  for (size_t c = 0; c < clauses_.size(); ++c) {
    if (!simd::SubsetOf(PositiveRow(c), cw, stride_)) continue;
    if (has_negative_ && simd::Intersects(NegativeRow(c), cw, stride_)) {
      continue;
    }
    return true;
  }
  return false;
}

int Dnf::MinAdditionalCourses(const DynamicBitset& completed) const {
  int best = simd::CountUnsatisfiedLiterals(
      packed_pos_.data(), has_negative_ ? packed_neg_.data() : nullptr,
      stride_, clauses_.size(), completed.word_data());
  return best < 0 ? kUnreachable : best;
}

bool Dnf::AchievableWith(const DynamicBitset& completed,
                         const DynamicBitset& available) const {
  const uint64_t* cw = completed.word_data();
  const uint64_t* aw = available.word_data();
  for (size_t c = 0; c < clauses_.size(); ++c) {
    if (has_negative_ && simd::Intersects(NegativeRow(c), cw, stride_)) {
      continue;
    }
    if (simd::SubsetOfUnion(PositiveRow(c), cw, aw, stride_)) return true;
  }
  return false;
}

// coursenav:hot — the clause-major batch kernels below are the pruning
// stage's inner loop; no allocation, blocking, or locking may enter them.
void Dnf::MinAdditionalCoursesBatch(const uint64_t* completed, size_t stride,
                                    size_t count, int* out) const {
  assert(stride == stride_);
  std::fill(out, out + count, -1);
  // Clause-major: one packed clause row streams across every candidate in
  // the batch while it is hot in cache.
  for (size_t c = 0; c < clauses_.size(); ++c) {
    const uint64_t* pos_row = PositiveRow(c);
    const uint64_t* neg_row = NegativeRow(c);
    for (size_t i = 0; i < count; ++i) {
      if (out[i] == 0) continue;  // already at the floor
      const uint64_t* row = completed + i * stride;
      if (has_negative_ && simd::Intersects(neg_row, row, stride)) continue;
      int missing = simd::AndNotPopcount(pos_row, row, stride);
      if (out[i] < 0 || missing < out[i]) out[i] = missing;
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (out[i] < 0) out[i] = kUnreachable;
  }
}

void Dnf::AchievableWithBatch(const uint64_t* completed, size_t stride,
                              size_t count, const DynamicBitset& available,
                              bool* out) const {
  assert(stride == stride_);
  std::fill(out, out + count, false);
  const uint64_t* aw = available.word_data();
  size_t undecided = count;
  for (size_t c = 0; c < clauses_.size() && undecided > 0; ++c) {
    const uint64_t* pos_row = PositiveRow(c);
    const uint64_t* neg_row = NegativeRow(c);
    for (size_t i = 0; i < count; ++i) {
      if (out[i]) continue;
      const uint64_t* row = completed + i * stride;
      if (has_negative_ && simd::Intersects(neg_row, row, stride)) continue;
      if (simd::SubsetOfUnion(pos_row, row, aw, stride)) {
        out[i] = true;
        --undecided;
      }
    }
  }
}
// coursenav:hot-end

bool Dnf::IsTrue() const {
  for (const DnfClause& clause : clauses_) {
    if (clause.positive.empty() && clause.negative.empty()) return true;
  }
  return false;
}

std::string Dnf::ToString() const {
  if (clauses_.empty()) return "false";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i != 0) out += " or ";
    out += "(+" + clauses_[i].positive.ToString();
    if (!clauses_[i].negative.empty()) {
      out += " -" + clauses_[i].negative.ToString();
    }
    out += ")";
  }
  return out;
}

}  // namespace coursenav::expr

#ifndef COURSENAV_EXPR_PARSER_H_
#define COURSENAV_EXPR_PARSER_H_

#include <string_view>

#include "expr/expr.h"
#include "util/result.h"

namespace coursenav::expr {

/// Parses a boolean expression over course codes.
///
/// Grammar (case-insensitive keywords):
///
///   or_expr   := and_expr (("or" | "|" | "||") and_expr)*
///   and_expr  := unary (("and" | "&" | "&&") unary)*
///   unary     := ("not" | "!") unary | primary
///   primary   := IDENT | "true" | "false" | "(" or_expr ")"
///   IDENT     := [A-Za-z0-9][A-Za-z0-9_-]*   (course codes may start with
///                a digit, e.g. "11A")
///
/// Examples accepted: `"COSI11A and (COSI21A or COSI22B)"`,
/// `"CS1 & !CS2"`, `"true"`.
Result<Expr> ParseBoolExpr(std::string_view text);

}  // namespace coursenav::expr

#endif  // COURSENAV_EXPR_PARSER_H_

#ifndef COURSENAV_UTIL_STATUS_H_
#define COURSENAV_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace coursenav {

/// Error categories used across the library.
///
/// CourseNavigator follows the RocksDB/Arrow convention: no exceptions cross
/// public API boundaries. Every fallible operation returns a `Status` (or a
/// `Result<T>`, see result.h) that the caller must inspect.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed (bad course code, bad term
  /// string, inconsistent options...).
  kInvalidArgument = 1,
  /// A referenced entity (course, term, file) does not exist.
  kNotFound = 2,
  /// An index or term fell outside the modeled range.
  kOutOfRange = 3,
  /// A generator hit its node/path/memory budget. Partial results may be
  /// available; this is the paper's "cannot store the graph in memory" case.
  kResourceExhausted = 4,
  /// The caller-supplied deadline (wall-clock budget) expired.
  kDeadlineExceeded = 5,
  /// Input text could not be parsed (prerequisite text, schedule CSV, JSON).
  kParseError = 6,
  /// The operation is valid but the data violates an invariant (for example
  /// a prerequisite cycle in a catalog).
  kFailedPrecondition = 7,
  /// An internal invariant was violated; always a library bug.
  kInternal = 8,
  /// The caller cancelled the operation via a CancellationToken. Partial
  /// results may be available, as with the budget statuses.
  kCancelled = 9,
};

/// Returns the canonical spelling of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// human-readable message otherwise. Typical use:
///
/// ```
/// Status s = catalog.Validate();
/// if (!s.ok()) return s;  // propagate
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace coursenav

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>`.
#define COURSENAV_RETURN_IF_ERROR(expr)               \
  do {                                                \
    ::coursenav::Status _cn_status = (expr);          \
    if (!_cn_status.ok()) return _cn_status;          \
  } while (false)

#endif  // COURSENAV_UTIL_STATUS_H_

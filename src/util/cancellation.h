#ifndef COURSENAV_UTIL_CANCELLATION_H_
#define COURSENAV_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>

#include "util/fault_injection.h"
#include "util/status.h"
#include "util/string_util.h"

namespace coursenav {

/// A cooperative cancellation handle.
///
/// A default-constructed token is inert: it can never be cancelled and
/// costs one null check to poll. `Cancellable()` tokens share an atomic
/// flag across copies, so a caller (typically another thread driving an
/// interactive session) can keep one copy and hand another to a running
/// exploration; `RequestCancel()` stops the exploration at its next budget
/// check — within one node expansion.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token whose copies observe RequestCancel() on any of them.
  static CancellationToken Cancellable() {
    CancellationToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// False for default-constructed tokens: no caller can ever cancel.
  bool can_cancel() const { return flag_ != nullptr; }

  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  /// Re-arms the token after a cancelled query so the session can keep
  /// serving. No-op on inert tokens.
  void Reset() const {
    if (flag_) flag_->store(false, std::memory_order_release);
  }

  bool IsCancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A steady-clock deadline plus an external cancel flag, with an amortized
/// check counter.
///
/// This replaces the generators' ad-hoc Stopwatch comparisons: `Check()`
/// polls the cancel flag on every call (one atomic load) but reads the
/// clock only every `kClockStride` calls, so it is cheap enough to call
/// per enumerated selection, not just per node expansion. Budget verdicts
/// are sticky: once the deadline passes or cancellation is observed, every
/// subsequent check returns the same status.
class DeadlineBudget {
 public:
  /// `max_seconds <= 0` means no deadline (cancellation still applies).
  explicit DeadlineBudget(double max_seconds = 0.0,
                          CancellationToken token = {})
      : start_(Clock::now()),
        max_seconds_(max_seconds),
        token_(std::move(token)) {}

  /// Amortized check: cancel flag every call, clock every kClockStride
  /// calls.
  Status Check() {
    if (!exhausted_.ok()) return exhausted_;
    if (--until_clock_check_ > 0) {
      if (token_.IsCancelled()) {
        return exhausted_ = Status::Cancelled("cancelled by caller");
      }
      return Status::OK();
    }
    return CheckNow();
  }

  /// Forced check: always reads the clock. Use at expansion boundaries.
  Status CheckNow() {
    until_clock_check_ = kClockStride;
    if (!exhausted_.ok()) return exhausted_;
    if (token_.IsCancelled()) {
      return exhausted_ = Status::Cancelled("cancelled by caller");
    }
    if (FaultInjector* injector = ActiveFaultInjector();
        injector != nullptr && injector->ShouldInject(kFaultSiteClockSkew)) {
      skew_seconds_ += injector->clock_skew_seconds();
    }
    if (max_seconds_ > 0 && ElapsedSeconds() >= max_seconds_) {
      return exhausted_ = Status::DeadlineExceeded(
                 StrFormat("time budget of %.3fs reached", max_seconds_));
    }
    return Status::OK();
  }

  /// Wall-clock seconds since construction, plus any injected clock skew.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count() +
           skew_seconds_;
  }

  /// Seconds left before the deadline; 0 when already exceeded and +inf
  /// when no deadline was set.
  double RemainingSeconds() const {
    if (max_seconds_ <= 0) return std::numeric_limits<double>::infinity();
    double remaining = max_seconds_ - ElapsedSeconds();
    return remaining > 0 ? remaining : 0.0;
  }

  double max_seconds() const { return max_seconds_; }
  const CancellationToken& token() const { return token_; }

 private:
  static constexpr int kClockStride = 32;

  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double max_seconds_;
  CancellationToken token_;
  double skew_seconds_ = 0.0;
  int until_clock_check_ = 0;  // first Check() reads the clock
  Status exhausted_;           // sticky non-OK verdict
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_CANCELLATION_H_

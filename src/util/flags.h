#ifndef COURSENAV_UTIL_FLAGS_H_
#define COURSENAV_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace coursenav {

/// A minimal command-line parser for the CLI tool and bench harnesses.
///
/// Recognized forms: `--name=value`, `--name value`, and bare `--name`
/// (boolean true). Everything that does not start with `--` is a
/// positional argument, in order. A literal `--` ends flag parsing.
class FlagSet {
 public:
  /// Parses argv (excluding argv[0]). Never fails: unknown flags are kept
  /// and can be rejected by `CheckKnown`.
  static FlagSet Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  /// Typed getters with defaults; parse errors surface as Status.
  Result<std::string> GetString(const std::string& name,
                                const std::string& default_value) const;
  Result<int64_t> GetInt(const std::string& name,
                         int64_t default_value) const;
  Result<double> GetDouble(const std::string& name,
                           double default_value) const;
  bool GetBool(const std::string& name, bool default_value = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Fails if any provided flag is not in `known` (catches typos).
  Status CheckKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_FLAGS_H_

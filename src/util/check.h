#ifndef COURSENAV_UTIL_CHECK_H_
#define COURSENAV_UTIL_CHECK_H_

#include <memory>
#include <sstream>
#include <string>

// Contracts for CourseNavigator. `CN_CHECK` family macros assert program
// invariants; on violation they print `file:line: CN_CHECK(cond) failed`
// plus any streamed message and abort. Messages stream lazily — operands
// after `<<` are only evaluated on failure:
//
//   CN_CHECK(shard < num_shards()) << "id " << id << " out of range";
//   CN_CHECK_GE(edge.to, 0);            // prints both operand values
//   CN_DCHECK(IsCanonical());           // compiled out unless COURSENAV_DCHECK
//   switch (kind) { ... default: CN_UNREACHABLE() << "kind " << kind; }
//
// CN_CHECK is always on (release builds included): use it for cheap
// checks on cold paths. CN_DCHECK is for expensive structural validation
// (e.g. LearningGraph::CheckInvariants) and costs nothing unless the
// build sets -DCOURSENAV_DCHECK=ON (the `dcheck` CMake preset); its
// condition is NOT evaluated in regular builds, so it must be
// side-effect-free. Relationship to COURSENAV_SANITIZE: sanitizers catch
// memory/UB/race bugs the hardware can observe, CN_DCHECK catches
// *semantic* corruption (a well-allocated but structurally invalid graph);
// run both in CI (see docs/static-analysis.md).
//
// Tests can intercept failures instead of dying: see SetCheckFailureHandler.

namespace coursenav {

/// Test-only seam: when a handler is installed, a failing check calls it
/// with the fully formatted message instead of aborting. The handler must
/// not return (throw an exception the test catches); if it does return,
/// the process aborts anyway. Pass nullptr to restore abort semantics.
/// Not thread-safe: install in single-threaded test setup only.
using CheckFailureHandler = void (*)(const std::string& message);
void SetCheckFailureHandler(CheckFailureHandler handler);

namespace internal {

/// Accumulates the failure message; its destructor reports and aborts
/// (or invokes the test handler). Not for direct use — see the macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  /// `extra` is a pre-rendered operand message (the CHECK_OP macros).
  CheckFailure(const char* file, int line, const char* condition,
               const std::string& extra);
  ~CheckFailure() noexcept(false);

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    if (!has_context_) {
      stream_ << ": ";
      has_context_ = true;
    }
    stream_ << value;
    return *this;
  }

  /// Lvalue view of a just-constructed temporary, so the CheckVoidify
  /// `operator&` below can bind whether or not anything was streamed.
  CheckFailure& self() { return *this; }

 private:
  std::ostringstream stream_;
  bool has_context_ = false;
};

/// Swallows streamed operands of a disabled CN_DCHECK_* without
/// evaluating them (it only ever appears in a dead branch).
struct NullCheckStream {
  template <typename T>
  NullCheckStream& operator<<(const T&) {
    return *this;
  }
  NullCheckStream& self() { return *this; }
};

/// Makes `cond ? void : CheckVoidify() & CheckFailure(...).self() << ...`
/// well-typed: `&` binds looser than `<<`, so the whole streamed chain
/// collapses to void.
struct CheckVoidify {
  void operator&(CheckFailure&) {}
  void operator&(NullCheckStream&) {}
};

/// Null on success; the rendered `(lhs vs. rhs)` text on failure. The
/// heap string only materializes on the failure path.
template <typename A, typename B, typename Op>
std::unique_ptr<std::string> CheckOpResult(const A& a, const B& b, Op op) {
  if (op(a, b)) return nullptr;
  std::ostringstream os;
  os << "(" << a << " vs. " << b << ")";
  return std::make_unique<std::string>(os.str());
}

}  // namespace internal
}  // namespace coursenav

/// Asserts `cond`; always compiled in. Streams extra context with `<<`.
#define CN_CHECK(cond)                                                  \
  (cond) ? (void)0                                                      \
         : ::coursenav::internal::CheckVoidify() &                      \
               ::coursenav::internal::CheckFailure(__FILE__, __LINE__,  \
                                                   "CN_CHECK(" #cond ")") \
                   .self()

/// Binary comparison checks; print both operand values on failure.
/// Operands are evaluated exactly once.
#define CN_CHECK_OP_IMPL(macro_name, op, a, b)                             \
  for (auto cn_check_failed = ::coursenav::internal::CheckOpResult(        \
           (a), (b), [](const auto& x, const auto& y) { return x op y; }); \
       cn_check_failed != nullptr;)                                        \
  ::coursenav::internal::CheckFailure(__FILE__, __LINE__,                  \
                                      macro_name "(" #a ", " #b ")",       \
                                      *cn_check_failed)

#define CN_CHECK_EQ(a, b) CN_CHECK_OP_IMPL("CN_CHECK_EQ", ==, a, b)
#define CN_CHECK_NE(a, b) CN_CHECK_OP_IMPL("CN_CHECK_NE", !=, a, b)
#define CN_CHECK_GE(a, b) CN_CHECK_OP_IMPL("CN_CHECK_GE", >=, a, b)
#define CN_CHECK_GT(a, b) CN_CHECK_OP_IMPL("CN_CHECK_GT", >, a, b)
#define CN_CHECK_LE(a, b) CN_CHECK_OP_IMPL("CN_CHECK_LE", <=, a, b)
#define CN_CHECK_LT(a, b) CN_CHECK_OP_IMPL("CN_CHECK_LT", <, a, b)

/// Marks code that must be unreachable; always fails when reached. The
/// `for(;;)` makes the compiler treat what follows as dead, so it can end
/// a non-void function.
#define CN_UNREACHABLE()                                            \
  for (;;) ::coursenav::internal::CheckFailure(__FILE__, __LINE__,  \
                                               "CN_UNREACHABLE()")

#if defined(COURSENAV_DCHECK_ENABLED) && COURSENAV_DCHECK_ENABLED
#define CN_DCHECK(cond) CN_CHECK(cond)
#define CN_DCHECK_EQ(a, b) CN_CHECK_EQ(a, b)
#define CN_DCHECK_NE(a, b) CN_CHECK_NE(a, b)
#define CN_DCHECK_GE(a, b) CN_CHECK_GE(a, b)
#define CN_DCHECK_GT(a, b) CN_CHECK_GT(a, b)
#define CN_DCHECK_LE(a, b) CN_CHECK_LE(a, b)
#define CN_DCHECK_LT(a, b) CN_CHECK_LT(a, b)
/// True in builds whose CN_DCHECK fires — for gating whole validation
/// passes (e.g. the Canonicalize() invariant sweep) behind one branch.
#define CN_DCHECK_IS_ON() true
#else
/// Disabled: conditions and operands are type-checked but never evaluated
/// (they sit in a constant-folded dead branch), so they must be
/// side-effect-free.
#define CN_DCHECK(cond) CN_CHECK(true || (cond))
#define CN_DCHECK_OP_OFF(a, b)                       \
  true ? (void)0                                     \
       : ::coursenav::internal::CheckVoidify() &     \
             (::coursenav::internal::NullCheckStream().self() << (a) << (b))
#define CN_DCHECK_EQ(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_NE(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_GE(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_GT(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_LE(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_LT(a, b) CN_DCHECK_OP_OFF(a, b)
#define CN_DCHECK_IS_ON() false
#endif

#endif  // COURSENAV_UTIL_CHECK_H_

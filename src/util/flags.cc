#include "util/flags.h"

#include <algorithm>

#include "util/string_util.h"

namespace coursenav {

FlagSet FlagSet::Parse(int argc, char** argv) {
  FlagSet flags;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool FlagSet::Has(const std::string& name) const {
  return values_.contains(name);
}

Result<std::string> FlagSet::GetString(const std::string& name,
                                       const std::string& default_value)
    const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

Result<int64_t> FlagSet::GetInt(const std::string& name,
                                int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  Result<int64_t> parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<double> FlagSet::GetDouble(const std::string& name,
                                  double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("flag --" + name + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

bool FlagSet::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return !EqualsIgnoreCase(it->second, "false") && it->second != "0";
}

Status FlagSet::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
  }
  return Status::OK();
}

}  // namespace coursenav

#include "util/fault_injection.h"

#include <atomic>

namespace coursenav {

namespace {

FaultInjector* g_active_injector = nullptr;

std::atomic<uint64_t> g_next_activation_id{1};

/// FNV-1a over the site name; stable across platforms.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: a full-avalanche mix of the combined state.
uint64_t Finalize(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : activation_id_(
          g_next_activation_id.fetch_add(1, std::memory_order_relaxed)),
      config_(std::move(config)) {}

uint64_t FaultInjector::Mix(std::string_view site, uint64_t counter) const {
  return Finalize(Finalize(config_.seed ^ HashSite(site)) + counter);
}

bool FaultInjector::ShouldInject(std::string_view site) {
  auto it = config_.site_probability.find(site);
  if (it == config_.site_probability.end() || it->second <= 0.0) return false;
  MutexLock lock(mu_);
  uint64_t counter = counters_[std::string(site)]++;
  // 53 uniform mantissa bits -> double in [0, 1).
  double u = static_cast<double>(Mix(site, counter) >> 11) * 0x1.0p-53;
  bool fire = u < it->second;
  if (fire) ++fired_[std::string(site)];
  return fire;
}

uint64_t FaultInjector::Draw(std::string_view site) {
  MutexLock lock(mu_);
  uint64_t counter = counters_[std::string(site)]++;
  return Mix(site, counter);
}

int64_t FaultInjector::decisions(std::string_view site) const {
  MutexLock lock(mu_);
  auto it = counters_.find(site);
  return it == counters_.end() ? 0 : static_cast<int64_t>(it->second);
}

int64_t FaultInjector::fired(std::string_view site) const {
  MutexLock lock(mu_);
  auto it = fired_.find(site);
  return it == fired_.end() ? 0 : it->second;
}

FaultInjector* ActiveFaultInjector() { return g_active_injector; }

ScopedFaultInjection::ScopedFaultInjection(FaultConfig config)
    : injector_(std::move(config)), previous_(g_active_injector) {
  g_active_injector = &injector_;
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_active_injector = previous_;
}

}  // namespace coursenav

#ifndef COURSENAV_UTIL_RANDOM_H_
#define COURSENAV_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coursenav {

/// A small deterministic PRNG (xoshiro256**) used by the synthetic data
/// generators and the transcript simulator.
///
/// Determinism matters here: the benchmark harnesses must regenerate the same
/// catalogs and transcripts on every run so that the reported path counts are
/// stable. std::mt19937 would also work, but its distributions are not
/// cross-stdlib reproducible; this generator plus our own distribution code
/// is fully deterministic everywhere.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64 bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(Uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_RANDOM_H_

#ifndef COURSENAV_UTIL_STOPWATCH_H_
#define COURSENAV_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace coursenav {

/// Wall-clock stopwatch used for exploration deadlines and bench reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_STOPWATCH_H_

#ifndef COURSENAV_UTIL_BITSET_H_
#define COURSENAV_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/simd/simd.h"

namespace coursenav {

namespace internal {

/// Storage for a bitset's 64-bit words with a small-buffer optimization:
/// up to `kInlineWords` words (128 bits) live inline, larger universes
/// spill to the heap. Course catalogs are small (the evaluation's has 38
/// courses = 1 word), and course sets are copied on every node expansion,
/// so keeping them allocation-free dominates generator throughput (see
/// bench/micro_benchmarks).
class WordStorage {
 public:
  using Word = uint64_t;
  static constexpr size_t kInlineWords = 2;

  WordStorage() : size_(0) { inline_[0] = inline_[1] = 0; }

  explicit WordStorage(size_t size) : size_(size) {
    if (is_inline()) {
      inline_[0] = inline_[1] = 0;
    } else {
      heap_.assign(size, 0);
    }
  }

  WordStorage(const WordStorage& other) : size_(other.size_) {
    if (is_inline()) {
      inline_[0] = other.inline_[0];
      inline_[1] = other.inline_[1];
    } else {
      heap_ = other.heap_;
    }
  }

  WordStorage& operator=(const WordStorage& other) {
    if (this == &other) return *this;
    if (size_ == other.size_) {
      // Same shape: copy words in place. For heap storage this reuses the
      // existing allocation instead of the resize + element-copy dance a
      // vector assignment performs; equal-universe assignment is the common
      // case on the expansion hot path (scratch sets, cache lookups).
      std::memcpy(data(), other.data(), size_ * sizeof(Word));
      return *this;
    }
    size_ = other.size_;
    if (is_inline()) {
      inline_[0] = other.inline_[0];
      inline_[1] = other.inline_[1];
      heap_.clear();
    } else {
      heap_ = other.heap_;
    }
    return *this;
  }

  WordStorage(WordStorage&& other) noexcept
      : size_(other.size_), heap_(std::move(other.heap_)) {
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
  }

  WordStorage& operator=(WordStorage&& other) noexcept {
    size_ = other.size_;
    inline_[0] = other.inline_[0];
    inline_[1] = other.inline_[1];
    heap_ = std::move(other.heap_);
    return *this;
  }

  size_t size() const { return size_; }

  Word* data() { return is_inline() ? inline_ : heap_.data(); }
  const Word* data() const { return is_inline() ? inline_ : heap_.data(); }

  Word& operator[](size_t i) { return data()[i]; }
  const Word& operator[](size_t i) const { return data()[i]; }

  size_t heap_bytes() const { return heap_.capacity() * sizeof(Word); }

 private:
  bool is_inline() const { return size_ <= kInlineWords; }

  size_t size_;
  Word inline_[kInlineWords];
  std::vector<Word> heap_;
};

}  // namespace internal

/// A dynamically sized bitset tuned for small dense id universes.
///
/// `DynamicBitset` backs `CourseSet`: the hot data structure of every
/// generator. A catalog interns courses into dense ids `[0, n)`, so a
/// student's completed set `X_i`, option set `Y_i` and per-edge selection
/// `W` are all bitsets of `n` bits. All set algebra used on the exploration
/// hot path (union, subset test, difference, popcount) is O(n/64), and
/// universes up to 128 elements are stored inline (no allocation).
///
/// The capacity (`universe_size`) is fixed at construction; all binary
/// operations require operands of equal universe size.
class DynamicBitset {
 public:
  /// An empty set over an empty universe.
  DynamicBitset() : num_bits_(0) {}

  /// An empty set over a universe of `universe_size` elements.
  explicit DynamicBitset(int universe_size);

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) noexcept = default;
  DynamicBitset& operator=(DynamicBitset&&) noexcept = default;

  /// Builds a set from explicit member ids.
  static DynamicBitset FromIndices(int universe_size,
                                   const std::vector<int>& indices);

  /// Number of representable elements.
  int universe_size() const { return num_bits_; }

  /// Number of elements currently in the set.
  int count() const;

  bool empty() const;

  /// Membership test; `pos` must be in `[0, universe_size())`.
  bool test(int pos) const {
    return (words_[WordIndex(pos)] >> BitIndex(pos)) & 1u;
  }

  void set(int pos) { words_[WordIndex(pos)] |= Word(1) << BitIndex(pos); }
  void reset(int pos) { words_[WordIndex(pos)] &= ~(Word(1) << BitIndex(pos)); }
  void clear();

  /// In-place set algebra. Operands must share a universe size.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Set difference: removes every element of `other` from this set.
  DynamicBitset& Subtract(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  /// True if every element of this set is also in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True if the two sets share at least one element.
  bool Intersects(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    if (a.num_bits_ != b.num_bits_) return false;
    return simd::Equal(a.words_.data(), b.words_.data(), a.words_.size());
  }

  /// Ids of all members, ascending.
  std::vector<int> ToIndices() const;

  /// Calls `fn(int)` for each member id, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      Word word = words_[w];
      while (word != 0) {
        int bit = simd::CountTrailingZeros(word);
        fn(static_cast<int>(w * kBitsPerWord) + bit);
        word &= word - 1;
      }
    }
  }

  /// Raw word access for batch kernels (src/util/simd). The universe's bits
  /// are packed little-endian into `word_count()` 64-bit words; bits at or
  /// above `universe_size()` are always zero.
  size_t word_count() const { return words_.size(); }
  const uint64_t* word_data() const { return words_.data(); }
  uint64_t* mutable_word_data() { return words_.data(); }

  /// Overwrites this set's words from a packed row of `word_count()` words.
  /// The caller guarantees bits at or above `universe_size()` are zero.
  void AssignWords(const uint64_t* src) {
    std::memcpy(words_.data(), src, words_.size() * sizeof(Word));
  }

  /// Builds a set over `universe_size` elements from a packed word row.
  static DynamicBitset FromWords(int universe_size, const uint64_t* src) {
    DynamicBitset out(universe_size);
    out.AssignWords(src);
    return out;
  }

  /// 64-bit mixing hash, suitable for unordered containers.
  uint64_t Hash() const;

  /// "{0, 3, 17}" style debug rendering.
  std::string ToString() const;

  /// Approximate heap footprint in bytes (for memory budgeting). Inline
  /// universes (<= 128 elements) report 0.
  size_t MemoryUsage() const { return words_.heap_bytes(); }

 private:
  using Word = internal::WordStorage::Word;
  static constexpr int kBitsPerWord = 64;

  static size_t WordIndex(int pos) {
    return static_cast<size_t>(pos) / kBitsPerWord;
  }
  static int BitIndex(int pos) { return pos % kBitsPerWord; }

  int num_bits_;
  internal::WordStorage words_;
};

/// std::hash adapter for DynamicBitset-keyed maps.
struct DynamicBitsetHash {
  size_t operator()(const DynamicBitset& b) const {
    return static_cast<size_t>(b.Hash());
  }
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_BITSET_H_

#include "util/random.h"

#include <algorithm>
#include <cassert>

namespace coursenav {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  // Seed the 256-bit state from splitmix64 as the xoshiro authors recommend.
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Random::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int Random::UniformInt(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(
                  Uniform(static_cast<uint64_t>(hi) - lo + 1));
}

double Random::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<int> Random::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  Shuffle(pool);
  pool.resize(static_cast<size_t>(k));
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace coursenav

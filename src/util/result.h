#ifndef COURSENAV_UTIL_RESULT_H_
#define COURSENAV_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace coursenav {

/// A value-or-error holder, the library's factory-function return type.
///
/// `Result<T>` holds either a `T` or a non-OK `Status`. It mirrors
/// `arrow::Result` / `absl::StatusOr`:
///
/// ```
/// Result<Term> term = Term::Parse("Fall 2011");
/// if (!term.ok()) return term.status();
/// DoSomething(*term);
/// ```
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result).
  Result(T value) : repr_(std::move(value)) {}

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an Internal error.
  Result(Status status) : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors. Must not be called when `!ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace coursenav

/// Evaluates an expression returning Result<T>; on error propagates the
/// status, otherwise assigns the unwrapped value to `lhs`.
#define COURSENAV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#define COURSENAV_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define COURSENAV_ASSIGN_OR_RETURN_NAME(x, y) \
  COURSENAV_ASSIGN_OR_RETURN_CONCAT(x, y)

#define COURSENAV_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  COURSENAV_ASSIGN_OR_RETURN_IMPL(                                           \
      COURSENAV_ASSIGN_OR_RETURN_NAME(_cn_result_, __COUNTER__), lhs, rexpr)

#endif  // COURSENAV_UTIL_RESULT_H_

#ifndef COURSENAV_UTIL_THREAD_ANNOTATIONS_H_
#define COURSENAV_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute wrappers.
///
/// Under Clang these expand to the `-Wthread-safety` capability attributes,
/// turning the lock discipline of the concurrent core into a compile-time
/// proof; under every other compiler they expand to nothing, so GCC builds
/// are unaffected. The `thread-safety` CMake preset builds the tree with
/// clang and `-Wthread-safety -Werror`; conventions and the escape-hatch
/// policy live in docs/static-analysis.md.
///
/// Annotate data with the mutex that guards it:
///
///     coursenav::Mutex mu_;
///     std::vector<Span> spans_ CN_GUARDED_BY(mu_);
///
/// and private helpers with the lock they expect held:
///
///     double RetryAfterMsLocked() const CN_REQUIRES(mu_);

#if defined(__clang__)
#define CN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CN_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

/// Marks a class as a capability (a lockable type). `CN_LOCKABLE` is the
/// spelling used on mutex-like types; see coursenav::Mutex in util/mutex.h.
#define CN_CAPABILITY(x) CN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#define CN_LOCKABLE CN_CAPABILITY("mutex")

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (e.g. coursenav::MutexLock).
#define CN_SCOPED_LOCKABLE CN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated field may only be read or written while `x` is held.
#define CN_GUARDED_BY(x) CN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data *pointed to* by the annotated pointer is guarded by `x`; the
/// pointer itself may be read freely.
#define CN_PT_GUARDED_BY(x) CN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function may only be called while the listed capabilities are held;
/// it neither acquires nor releases them.
#define CN_REQUIRES(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define CN_REQUIRES_SHARED(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities.
#define CN_ACQUIRE(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define CN_RELEASE(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability and returns `r` on
/// success, e.g. `bool try_lock() CN_TRY_ACQUIRE(true)`.
#define CN_TRY_ACQUIRE(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (non-reentrancy; the
/// function acquires them internally).
#define CN_EXCLUDES(...) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding its class.
#define CN_RETURN_CAPABILITY(x) \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry an adjacent `//` justification comment (same or previous line);
/// coursenav-mutex-annotation enforces this.
#define CN_NO_THREAD_SAFETY_ANALYSIS \
  CN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // COURSENAV_UTIL_THREAD_ANNOTATIONS_H_

#include "util/bitset.h"

#include <cassert>

#include "util/simd/simd.h"

namespace coursenav {

DynamicBitset::DynamicBitset(int universe_size)
    : num_bits_(universe_size),
      words_((static_cast<size_t>(universe_size) + kBitsPerWord - 1) /
             kBitsPerWord) {
  assert(universe_size >= 0);
}

DynamicBitset DynamicBitset::FromIndices(int universe_size,
                                         const std::vector<int>& indices) {
  DynamicBitset out(universe_size);
  for (int idx : indices) {
    assert(idx >= 0 && idx < universe_size);
    out.set(idx);
  }
  return out;
}

int DynamicBitset::count() const {
  return simd::Popcount(words_.data(), words_.size());
}

bool DynamicBitset::empty() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  return true;
}

void DynamicBitset::clear() {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] = 0;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  simd::UnionInplace(words_.data(), other.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  simd::IntersectInplace(words_.data(), other.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::Subtract(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  simd::SubtractInplace(words_.data(), other.words_.data(), words_.size());
  return *this;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  assert(num_bits_ == other.num_bits_);
  return simd::SubsetOf(words_.data(), other.words_.data(), words_.size());
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(num_bits_ == other.num_bits_);
  return simd::Intersects(words_.data(), other.words_.data(), words_.size());
}

std::vector<int> DynamicBitset::ToIndices() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count()));
  ForEach([&out](int idx) { out.push_back(idx); });
  return out;
}

uint64_t DynamicBitset::Hash() const {
  // FNV-style fold with a 64-bit avalanche finisher (splitmix64).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < words_.size(); ++i) {
    h ^= words_[i];
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int idx) {
    if (!first) out += ", ";
    out += std::to_string(idx);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace coursenav

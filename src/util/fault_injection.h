#ifndef COURSENAV_UTIL_FAULT_INJECTION_H_
#define COURSENAV_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav {

/// Canonical injection-site keys. Sites are plain strings so tests can add
/// their own without touching this header; these constants name the seams
/// compiled into the library.
inline constexpr std::string_view kFaultSiteGraphAlloc = "graph/alloc";
inline constexpr std::string_view kFaultSiteCountAlloc = "count/alloc";
inline constexpr std::string_view kFaultSiteClockSkew = "clock/skew";
inline constexpr std::string_view kFaultSiteScheduleChurn = "schedule/churn";
/// Serving-layer overload seam: when it fires, the server deterministically
/// forces one of its overload paths (queue-full shed, slow-client drop, or
/// deadline-exceeded) chosen by a Draw at the same site — so chaos tests
/// can walk every shed path from a seed alone.
inline constexpr std::string_view kFaultSiteServeOverload = "serve/overload";

/// Configuration of a deterministic fault-injection run.
struct FaultConfig {
  /// Master seed; with equal seeds and equal call sequences, every
  /// injection decision is identical across runs, platforms, and stdlibs.
  uint64_t seed = 0;
  /// Per-site probability in [0, 1] that one decision at that site fires.
  /// Sites absent from the map never fire.
  std::map<std::string, double, std::less<>> site_probability;
  /// Seconds added to a DeadlineBudget's perceived elapsed time each time
  /// the clock/skew site fires.
  double clock_skew_seconds = 0.0;
};

/// A deterministic, seed-driven fault injector.
///
/// Each decision hashes (seed, site, per-site counter), so the fault
/// pattern depends only on the configuration and the sequence of decisions
/// requested at each site — never on wall-clock time, ASLR, or stdlib
/// random engines. That makes every chaos-test failure replayable from its
/// seed alone.
///
/// Thread-safe: decisions are serialized by an internal mutex so parallel
/// workers can hit the compiled-in seams concurrently. Under concurrency
/// the *interleaving* of per-site counters depends on scheduling, so the
/// global decision sequence is deterministic per thread schedule rather
/// than absolutely; single-threaded runs remain bit-replayable from the
/// seed alone.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// One injection decision at `site`; advances that site's counter.
  bool ShouldInject(std::string_view site);

  /// A raw deterministic draw at `site` (for choosing *which* course or
  /// offering a fault perturbs); advances that site's counter.
  uint64_t Draw(std::string_view site);

  double clock_skew_seconds() const { return config_.clock_skew_seconds; }

  /// Decisions made / faults fired at `site` so far.
  int64_t decisions(std::string_view site) const;
  int64_t fired(std::string_view site) const;

  /// Process-unique id of this injector instance, assigned at construction
  /// from a monotone counter. Two activations are never confused even when
  /// stack reuse places them at the same address — the epoch-keyed request
  /// cache folds this id (plus the churn fired-count) into its epoch token
  /// so results computed under one chaos activation are never served under
  /// another.
  uint64_t activation_id() const { return activation_id_; }

 private:
  uint64_t Mix(std::string_view site, uint64_t counter) const;

  const uint64_t activation_id_;

  FaultConfig config_;
  mutable Mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_ CN_GUARDED_BY(mu_);
  std::map<std::string, int64_t, std::less<>> fired_ CN_GUARDED_BY(mu_);
};

/// The injector the compiled-in seams consult, or nullptr when no fault
/// injection is active (the normal production state: one pointer load).
FaultInjector* ActiveFaultInjector();

/// RAII activation of fault injection: installs an injector for the
/// enclosing scope and restores the previous one (usually nullptr) on exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultConfig config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* previous_;
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_FAULT_INJECTION_H_

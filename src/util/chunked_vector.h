#ifndef COURSENAV_UTIL_CHUNKED_VECTOR_H_
#define COURSENAV_UTIL_CHUNKED_VECTOR_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace coursenav {

/// A growable sequence stored in fixed-size chunks.
///
/// Unlike `std::vector`, growth never relocates elements: a reference or
/// pointer obtained from `operator[]` / `emplace_back` stays valid for the
/// container's lifetime. The learning-graph arenas rely on this so the
/// generators can hold references to a node across child insertions
/// (previously every expansion snapshot-copied the node's bitsets to
/// survive vector reallocation), and so a parallel worker can read a stolen
/// node while the owning worker keeps appending to the same shard.
///
/// The chunk table itself (a vector of chunk pointers) may still relocate
/// on growth, so `operator[]` is only safe on the thread that appends —
/// cross-thread readers must use stable element pointers, not indices.
/// Chunks of `kChunkSize` elements are value-initialized on allocation;
/// `emplace_back` move-assigns into the next slot.
template <typename T, size_t ChunkBits = 10>
class ChunkedVector {
 public:
  static constexpr size_t kChunkBits = ChunkBits;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  ChunkedVector() = default;
  ChunkedVector(ChunkedVector&&) noexcept = default;
  ChunkedVector& operator=(ChunkedVector&&) noexcept = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return chunks_[i >> kChunkBits][i & kChunkMask]; }
  const T& operator[](size_t i) const {
    return chunks_[i >> kChunkBits][i & kChunkMask];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Appends `value` and returns a stable reference to the stored element.
  T& push_back(T value) {
    if ((size_ & kChunkMask) == 0 &&
        (size_ >> kChunkBits) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    T& slot = (*this)[size_];
    slot = std::move(value);
    ++size_;
    return slot;
  }

  /// Heap bytes held by the chunk storage itself (not by the elements'
  /// own allocations).
  size_t AllocatedBytes() const {
    return chunks_.size() * kChunkSize * sizeof(T) +
           chunks_.capacity() * sizeof(chunks_[0]);
  }

 private:
  size_t size_ = 0;
  std::vector<std::unique_ptr<T[]>> chunks_;
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_CHUNKED_VECTOR_H_

#include "util/logging.h"

#include <cstdio>

namespace coursenav {

namespace {
// Plain int (trivially destructible) per the static-storage rules.
int g_min_level = static_cast<int>(LogLevel::kWarning);

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid leaking build paths into logs.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace coursenav

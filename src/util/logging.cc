#include "util/logging.h"

#include <cstdio>

#include "util/mutex.h"

namespace coursenav {

namespace {
// Plain int (trivially destructible) per the static-storage rules.
int g_min_level = static_cast<int>(LogLevel::kWarning);

// Serializes emission and guards the sink. Never destroyed (leaked on
// purpose) so logging from static destructors stays safe.
Mutex& SinkMutex() {
  // Leaky singleton: logging must work from static destructors.
  static Mutex* mu = new Mutex;  // NOLINT(coursenav-raw-new)
  return *mu;
}

LogSink& CurrentSink() {
  // Leaky singleton; empty = default stderr sink.
  static LogSink* sink = new LogSink;  // NOLINT(coursenav-raw-new)
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level); }

void SetLogSink(LogSink sink) {
  MutexLock lock(SinkMutex());
  CurrentSink() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_min_level), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid leaking build paths into logs.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::string message = stream_.str();
  // One lock per emitted message: concurrent loggers never interleave
  // bytes, and a custom sink observes whole messages one at a time.
  MutexLock lock(SinkMutex());
  LogSink& sink = CurrentSink();
  if (sink) {
    sink(level_, message);
  } else {
    std::fprintf(stderr, "%s\n", message.c_str());
  }
}

}  // namespace internal
}  // namespace coursenav

#include "util/simd/simd.h"

#include "util/simd/simd_internal.h"

namespace coursenav::simd {
namespace {

// ---------------------------------------------------------------------------
// Portable scalar kernels: the semantic reference every vector table must
// match bit-for-bit (tests/simd_test.cc).
// ---------------------------------------------------------------------------

// coursenav:hot — set-algebra kernels; pure word loops only.
int ScalarPopcount(const uint64_t* a, size_t n) {
  int total = 0;
  for (size_t i = 0; i < n; ++i) total += PopcountWord(a[i]);
  return total;
}

int ScalarAndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  int total = 0;
  for (size_t i = 0; i < n; ++i) total += PopcountWord(a[i] & ~b[i]);
  return total;
}

bool ScalarSubsetOf(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

bool ScalarSubsetOfUnion(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}

bool ScalarIntersects(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

void ScalarUnionInplace(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] |= b[i];
}

void ScalarUnionInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void ScalarIntersectInplace(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] &= b[i];
}

void ScalarSubtractInplace(uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] &= ~b[i];
}

bool ScalarEqual(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

int ScalarCountUnsatisfiedLiterals(const uint64_t* pos, const uint64_t* neg,
                                   size_t stride, size_t num_clauses,
                                   const uint64_t* completed) {
  int best = -1;
  for (size_t c = 0; c < num_clauses; ++c) {
    const uint64_t* pos_row = pos + c * stride;
    if (neg != nullptr &&
        ScalarIntersects(neg + c * stride, completed, stride)) {
      continue;
    }
    int missing = ScalarAndNotPopcount(pos_row, completed, stride);
    if (best < 0 || missing < best) best = missing;
    if (best == 0) break;
  }
  return best;
}
// coursenav:hot-end

constexpr Kernels kScalarKernels = {
    "scalar",
    ScalarPopcount,
    ScalarAndNotPopcount,
    ScalarSubsetOf,
    ScalarSubsetOfUnion,
    ScalarIntersects,
    ScalarUnionInplace,
    ScalarUnionInto,
    ScalarIntersectInplace,
    ScalarSubtractInplace,
    ScalarEqual,
    ScalarCountUnsatisfiedLiterals,
};

const Kernels& Select() {
#if defined(COURSENAV_FORCE_SCALAR)
  return kScalarKernels;
#else
#if defined(__x86_64__) || defined(_M_X64)
  if (const Kernels* avx2 = Avx2KernelsOrNull();
      avx2 != nullptr && __builtin_cpu_supports("avx2")) {
    return *avx2;
  }
#endif
  if (const Kernels* neon = NeonKernelsOrNull(); neon != nullptr) {
    return *neon;
  }
  return kScalarKernels;
#endif
}

}  // namespace

const Kernels& Scalar() { return kScalarKernels; }

const Kernels& Active() {
  static const Kernels& kernels = Select();
  return kernels;
}

}  // namespace coursenav::simd

// AVX2 kernel table. This translation unit is compiled with -mavx2 (see
// src/util/CMakeLists.txt); nothing here may run before the selector in
// simd.cc has confirmed cpuid support, which is why the table is only
// reachable through the Avx2KernelsOrNull() indirection.
#include "util/simd/simd_internal.h"

#if defined(__x86_64__) && defined(__AVX2__) && \
    !defined(COURSENAV_FORCE_SCALAR)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace coursenav::simd {
namespace {

// coursenav:hot — vector kernels; pure register/word loops only.

// Positional popcount of a 256-bit lane via the vpshufb nibble-LUT trick
// (Mula): split each byte into nibbles, table-look-up per-nibble popcounts,
// then horizontally sum bytes with vpsadbw against zero.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline uint64_t HorizontalSum(__m256i byte_counts) {
  __m256i sums = _mm256_sad_epu8(byte_counts, _mm256_setzero_si256());
  return static_cast<uint64_t>(_mm256_extract_epi64(sums, 0)) +
         static_cast<uint64_t>(_mm256_extract_epi64(sums, 1)) +
         static_cast<uint64_t>(_mm256_extract_epi64(sums, 2)) +
         static_cast<uint64_t>(_mm256_extract_epi64(sums, 3));
}

inline int ScalarTailPopcount(const uint64_t* a, size_t n) {
  int total = 0;
  for (size_t i = 0; i < n; ++i) total += PopcountWord(a[i]);
  return total;
}

int Avx2Popcount(const uint64_t* a, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    total += HorizontalSum(PopcountBytes(v));
  }
  return static_cast<int>(total) + ScalarTailPopcount(a + i, n - i);
}

int Avx2AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes ~first & second.
    total += HorizontalSum(PopcountBytes(_mm256_andnot_si256(vb, va)));
  }
  int tail = 0;
  for (; i < n; ++i) tail += PopcountWord(a[i] & ~b[i]);
  return static_cast<int>(total) + tail;
}

bool Avx2SubsetOf(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // testc(b, a) == 1  <=>  (~b & a) == 0  <=>  a subset-of b.
    if (!_mm256_testc_si256(vb, va)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

bool Avx2SubsetOfUnion(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                       size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    if (!_mm256_testc_si256(_mm256_or_si256(vb, vc), va)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}

bool Avx2Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

void Avx2UnionInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

void Avx2UnionInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void Avx2IntersectInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_and_si256(va, vb));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void Avx2SubtractInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

bool Avx2Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i diff = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(diff, diff)) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

int Avx2CountUnsatisfiedLiterals(const uint64_t* pos, const uint64_t* neg,
                                 size_t stride, size_t num_clauses,
                                 const uint64_t* completed) {
  int best = -1;
  for (size_t c = 0; c < num_clauses; ++c) {
    if (neg != nullptr &&
        Avx2Intersects(neg + c * stride, completed, stride)) {
      continue;
    }
    int missing = Avx2AndNotPopcount(pos + c * stride, completed, stride);
    if (best < 0 || missing < best) best = missing;
    if (best == 0) break;
  }
  return best;
}
// coursenav:hot-end

constexpr Kernels kAvx2Kernels = {
    "avx2",
    Avx2Popcount,
    Avx2AndNotPopcount,
    Avx2SubsetOf,
    Avx2SubsetOfUnion,
    Avx2Intersects,
    Avx2UnionInplace,
    Avx2UnionInto,
    Avx2IntersectInplace,
    Avx2SubtractInplace,
    Avx2Equal,
    Avx2CountUnsatisfiedLiterals,
};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace coursenav::simd

#else  // unsupported target or forced-scalar build

namespace coursenav::simd {

const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace coursenav::simd

#endif

#ifndef COURSENAV_UTIL_SIMD_SIMD_INTERNAL_H_
#define COURSENAV_UTIL_SIMD_SIMD_INTERNAL_H_

#include "util/simd/simd.h"

namespace coursenav::simd {

/// Vector kernel tables, one per translation unit so each can be compiled
/// with its own target flags. Each returns null when the implementation is
/// not compiled for this platform; runtime feature checks happen in the
/// selector (simd.cc), never here.
const Kernels* Avx2KernelsOrNull();
const Kernels* NeonKernelsOrNull();

}  // namespace coursenav::simd

#endif  // COURSENAV_UTIL_SIMD_SIMD_INTERNAL_H_

// NEON kernel table for AArch64. NEON is architecturally mandatory on
// AArch64, so unlike AVX2 there is no runtime feature check — the selector
// in simd.cc uses this table whenever it is compiled in.
#include "util/simd/simd_internal.h"

#if defined(__aarch64__) && !defined(COURSENAV_FORCE_SCALAR)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

namespace coursenav::simd {
namespace {

// coursenav:hot — vector kernels; pure register/word loops only.

// Sum of set bits in a 128-bit register: per-byte popcount (vcntq_u8) then
// a horizontal add across the 16 byte lanes.
inline uint64_t PopcountU64x2(uint64x2_t v) {
  return vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v)));
}

inline bool AnyBitSet(uint64x2_t v) {
  return (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0;
}

int NeonPopcount(const uint64_t* a, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) total += PopcountU64x2(vld1q_u64(a + i));
  for (; i < n; ++i) total += static_cast<uint64_t>(PopcountWord(a[i]));
  return static_cast<int>(total);
}

int NeonAndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vbicq(a, b) = a & ~b.
    total += PopcountU64x2(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(PopcountWord(a[i] & ~b[i]));
  }
  return static_cast<int>(total);
}

bool NeonSubsetOf(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (AnyBitSet(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

bool NeonSubsetOfUnion(const uint64_t* a, const uint64_t* b, const uint64_t* c,
                       size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t cover = vorrq_u64(vld1q_u64(b + i), vld1q_u64(c + i));
    if (AnyBitSet(vbicq_u64(vld1q_u64(a + i), cover))) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & ~(b[i] | c[i])) != 0) return false;
  }
  return true;
}

bool NeonIntersects(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (AnyBitSet(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

void NeonUnionInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] |= b[i];
}

void NeonUnionInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

void NeonIntersectInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] &= b[i];
}

void NeonSubtractInplace(uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(a + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) a[i] &= ~b[i];
}

bool NeonEqual(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    if (AnyBitSet(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)))) return false;
  }
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

int NeonCountUnsatisfiedLiterals(const uint64_t* pos, const uint64_t* neg,
                                 size_t stride, size_t num_clauses,
                                 const uint64_t* completed) {
  int best = -1;
  for (size_t c = 0; c < num_clauses; ++c) {
    if (neg != nullptr &&
        NeonIntersects(neg + c * stride, completed, stride)) {
      continue;
    }
    int missing = NeonAndNotPopcount(pos + c * stride, completed, stride);
    if (best < 0 || missing < best) best = missing;
    if (best == 0) break;
  }
  return best;
}
// coursenav:hot-end

constexpr Kernels kNeonKernels = {
    "neon",
    NeonPopcount,
    NeonAndNotPopcount,
    NeonSubsetOf,
    NeonSubsetOfUnion,
    NeonIntersects,
    NeonUnionInplace,
    NeonUnionInto,
    NeonIntersectInplace,
    NeonSubtractInplace,
    NeonEqual,
    NeonCountUnsatisfiedLiterals,
};

}  // namespace

const Kernels* NeonKernelsOrNull() { return &kNeonKernels; }

}  // namespace coursenav::simd

#else  // not AArch64 or forced-scalar build

namespace coursenav::simd {

const Kernels* NeonKernelsOrNull() { return nullptr; }

}  // namespace coursenav::simd

#endif

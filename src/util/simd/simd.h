#ifndef COURSENAV_UTIL_SIMD_SIMD_H_
#define COURSENAV_UTIL_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

/// Fused word-array kernels for course-set algebra, with runtime CPU
/// dispatch.
///
/// Everything above this layer (bitsets, DNF evaluation, pruning) speaks in
/// arrays of 64-bit words; this header is the only place in the tree allowed
/// to touch popcount/ctz builtins or vector intrinsics (enforced by
/// coursenav-lint). Three implementations exist:
///
///   - a portable scalar fallback (always compiled, the semantic reference),
///   - AVX2 on x86-64, selected at runtime via cpuid,
///   - NEON on AArch64, selected at compile time.
///
/// `-DCOURSENAV_FORCE_SCALAR` pins `Active()` to the scalar table so any
/// platform can reproduce the reference behavior bit-for-bit; the
/// differential tests in tests/simd_test.cc assert all tables agree on
/// random inputs across the inline->heap storage boundary.
///
/// Dispatch contract: every kernel is a pure function of its word-array
/// arguments. Implementations may differ in instruction mix but MUST return
/// identical values for identical inputs — callers (pruning, DNF, ranking)
/// rely on this to keep parallel exploration byte-identical to the serial
/// scalar path under the Canonicalize() contract.
namespace coursenav::simd {

/// A dispatch table of fused kernels. All `n`/`stride` counts are in 64-bit
/// words. Rows of a clause matrix are `stride` words apart.
struct Kernels {
  const char* name;

  /// Total set bits in `a[0, n)`.
  int (*popcount)(const uint64_t* a, size_t n);

  /// popcount(a & ~b): elements of `a` missing from `b`.
  int (*and_not_popcount)(const uint64_t* a, const uint64_t* b, size_t n);

  /// a subset-of b: (a & ~b) == 0.
  bool (*subset_of)(const uint64_t* a, const uint64_t* b, size_t n);

  /// a subset-of (b | c), without materializing the union.
  bool (*subset_of_union)(const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, size_t n);

  /// (a & b) != 0.
  bool (*intersects)(const uint64_t* a, const uint64_t* b, size_t n);

  /// a |= b.
  void (*union_inplace)(uint64_t* a, const uint64_t* b, size_t n);

  /// dst = a | b (dst must not alias a or b).
  void (*union_into)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     size_t n);

  /// a &= b.
  void (*intersect_inplace)(uint64_t* a, const uint64_t* b, size_t n);

  /// a &= ~b.
  void (*subtract_inplace)(uint64_t* a, const uint64_t* b, size_t n);

  /// a == b, word-wise.
  bool (*equal)(const uint64_t* a, const uint64_t* b, size_t n);

  /// Minimum-unsatisfied-literals fold over a packed DNF clause matrix:
  /// for each clause `i` whose negative row `neg + i*stride` is disjoint
  /// from `completed` (a dead clause is skipped), compute
  /// popcount(pos_row & ~completed) and return the minimum, short-circuiting
  /// at 0. `neg` may be null when no clause has negative literals. Returns
  /// -1 when every clause is dead.
  int (*count_unsatisfied_literals)(const uint64_t* pos, const uint64_t* neg,
                                    size_t stride, size_t num_clauses,
                                    const uint64_t* completed);
};

/// The portable reference table. Always available.
const Kernels& Scalar();

/// The best table for this machine, chosen once at first use. Equals
/// `Scalar()` when built with -DCOURSENAV_FORCE_SCALAR or when no vector
/// unit is available.
const Kernels& Active();

/// Single-word helpers so callers outside src/util/simd/ never need the
/// raw builtins (banned by coursenav-lint).
inline int PopcountWord(uint64_t w) { return __builtin_popcountll(w); }
inline int CountTrailingZeros(uint64_t w) { return __builtin_ctzll(w); }

// Inline wrappers over Active() with a scalar fast path for inline-storage
// sets (<= 2 words: the 38-course evaluation catalog is 1 word). The
// indirect call and vector setup only pay off on heap-sized universes.

inline int Popcount(const uint64_t* a, size_t n) {
  if (n <= 2) {
    int total = 0;
    for (size_t i = 0; i < n; ++i) total += PopcountWord(a[i]);
    return total;
  }
  return Active().popcount(a, n);
}

inline int AndNotPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    int total = 0;
    for (size_t i = 0; i < n; ++i) total += PopcountWord(a[i] & ~b[i]);
    return total;
  }
  return Active().and_not_popcount(a, b, n);
}

inline bool SubsetOf(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) {
      if ((a[i] & ~b[i]) != 0) return false;
    }
    return true;
  }
  return Active().subset_of(a, b, n);
}

inline bool SubsetOfUnion(const uint64_t* a, const uint64_t* b,
                          const uint64_t* c, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) {
      if ((a[i] & ~(b[i] | c[i])) != 0) return false;
    }
    return true;
  }
  return Active().subset_of_union(a, b, c, n);
}

inline bool Intersects(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) {
      if ((a[i] & b[i]) != 0) return true;
    }
    return false;
  }
  return Active().intersects(a, b, n);
}

inline void UnionInplace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) a[i] |= b[i];
    return;
  }
  Active().union_inplace(a, b, n);
}

inline void UnionInto(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                      size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
    return;
  }
  Active().union_into(dst, a, b, n);
}

inline void IntersectInplace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) a[i] &= b[i];
    return;
  }
  Active().intersect_inplace(a, b, n);
}

inline void SubtractInplace(uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) a[i] &= ~b[i];
    return;
  }
  Active().subtract_inplace(a, b, n);
}

inline bool Equal(const uint64_t* a, const uint64_t* b, size_t n) {
  if (n <= 2) {
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  return Active().equal(a, b, n);
}

inline int CountUnsatisfiedLiterals(const uint64_t* pos, const uint64_t* neg,
                                    size_t stride, size_t num_clauses,
                                    const uint64_t* completed) {
  return Active().count_unsatisfied_literals(pos, neg, stride, num_clauses,
                                             completed);
}

}  // namespace coursenav::simd

#endif  // COURSENAV_UTIL_SIMD_SIMD_H_

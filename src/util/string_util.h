#ifndef COURSENAV_UTIL_STRING_UTIL_H_
#define COURSENAV_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace coursenav {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `delim`. Empty fields are kept; "a,,b" -> {"a", "", "b"}.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Splits and trims each field, dropping fields that become empty.
std::vector<std::string_view> SplitAndTrim(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII case transforms.
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict decimal integer parse of the whole string (optional leading '-').
Result<int64_t> ParseInt(std::string_view s);

/// Strict floating-point parse of the whole string.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace coursenav

#endif  // COURSENAV_UTIL_STRING_UTIL_H_

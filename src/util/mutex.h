#ifndef COURSENAV_UTIL_MUTEX_H_
#define COURSENAV_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

/// Annotated synchronization primitives.
///
/// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
/// so Clang's thread-safety analysis cannot see acquisitions through them.
/// These thin wrappers add the attributes (and nothing else — each is a
/// zero-overhead shim over the std type) so that `-Wthread-safety` can prove
/// the lock discipline of the concurrent core. All mutex-owning types in
/// src/ use coursenav::Mutex; raw std::mutex members are rejected by the
/// coursenav-mutex-annotation lint rule.

namespace coursenav {

class CondVar;

/// std::mutex with the CN_LOCKABLE capability attribute. Method names stay
/// lowercase so the type satisfies the standard BasicLockable/Lockable
/// concepts (std::scoped_lock, std::lock, ... all accept it).
class CN_LOCKABLE Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CN_ACQUIRE() { mu_.lock(); }
  void unlock() CN_RELEASE() { mu_.unlock(); }
  bool try_lock() CN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated CN_SCOPED_LOCKABLE so the analysis
/// tracks the critical section it delimits.
class CN_SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with coursenav::Mutex. Wait() is annotated
/// CN_REQUIRES(mu): the analysis models the mutex as held across the wait,
/// which matches the caller-visible contract — it is always reacquired
/// before Wait() returns. Spurious wakeups apply as usual; always wait in
/// an explicit predicate loop:
///
///     MutexLock lock(mu_);
///     while (!done_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`.
  void Wait(Mutex& mu) CN_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace coursenav

#endif  // COURSENAV_UTIL_MUTEX_H_

#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coursenav {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  for (std::string_view field : Split(s, delim)) {
    std::string_view trimmed = TrimWhitespace(field);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return Status::ParseError("empty number");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("number out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid number: '" + buf + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace coursenav

#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace coursenav {

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    COURSENAV_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // consume '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Error("expected string key in object");
      COURSENAV_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') return Error("expected ':' after object key");
      ++pos_;
      SkipWhitespace();
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members[key.GetString().value()] = std::move(value);
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // consume '['
    JsonValue::Array items;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code |= h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code |= h - 'A' + 10;
              } else {
                return Error("invalid hex digit in \\u escape");
              }
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are not
            // recombined; the catalog data is ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error(std::string("invalid escape '\\") + esc + "'");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue(false);
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue();
    }
    return Error("invalid literal");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Result<double> value = ParseDouble(text_.substr(start, pos_ - start));
    if (!value.ok()) return value.status();
    return JsonValue(*value);
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError("JSON at offset " + std::to_string(pos_) + ": " +
                              std::move(msg));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

Result<bool> JsonValue::GetBool() const {
  if (!is_bool()) return Status::InvalidArgument("JSON value is not a bool");
  return bool_;
}

Result<double> JsonValue::GetNumber() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  return number_;
}

Result<int64_t> JsonValue::GetInt() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  double rounded = std::nearbyint(number_);
  if (rounded != number_) {
    return Status::InvalidArgument("JSON number is not an integer");
  }
  return static_cast<int64_t>(rounded);
}

Result<std::string> JsonValue::GetString() const {
  if (!is_string()) {
    return Status::InvalidArgument("JSON value is not a string");
  }
  return string_;
}

Result<JsonValue> JsonValue::Get(std::string_view key) const {
  if (!is_object()) {
    return Status::InvalidArgument("JSON value is not an object");
  }
  auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    return Status::NotFound("missing JSON key '" + std::string(key) + "'");
  }
  return it->second;
}

bool JsonValue::Has(std::string_view key) const {
  return is_object() && object_.find(std::string(key)) != object_.end();
}

std::string JsonEscape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (number_ == std::nearbyint(number_) &&
          std::abs(number_) < 9.0e15) {
        out += std::to_string(static_cast<int64_t>(number_));
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        out += buf;
      }
      break;
    }
    case Type::kString:
      out += JsonEscape(string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += JsonEscape(key);
        out += ':';
        if (indent > 0) out += ' ';
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

}  // namespace coursenav

#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace coursenav {

namespace {
CheckFailureHandler g_check_failure_handler = nullptr;
}  // namespace

void SetCheckFailureHandler(CheckFailureHandler handler) {
  g_check_failure_handler = handler;
}

namespace internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << file << ":" << line << ": " << condition << " failed";
}

CheckFailure::CheckFailure(const char* file, int line, const char* condition,
                           const std::string& extra) {
  stream_ << file << ":" << line << ": " << condition << " failed " << extra;
}

CheckFailure::~CheckFailure() noexcept(false) {
  std::string message = stream_.str();
  if (g_check_failure_handler != nullptr) {
    g_check_failure_handler(message);
    // The handler must not return; fall through to abort if it does.
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace coursenav

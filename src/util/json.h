#ifndef COURSENAV_UTIL_JSON_H_
#define COURSENAV_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace coursenav {

/// A minimal JSON document model.
///
/// Used by the catalog loader (`parsers/catalog_loader`) and the graph/path
/// exporters (`graph/export`). Supports the full JSON value grammar with the
/// usual practical restrictions: numbers are IEEE doubles, object keys are
/// unique (later duplicates win), and input must be UTF-8 (escapes are passed
/// through unvalidated).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// std::map keeps serialization deterministic (sorted keys), which the
  /// golden-file tests rely on.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}
  JsonValue(int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses a complete JSON document. Trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; each fails with InvalidArgument on a type mismatch.
  Result<bool> GetBool() const;
  Result<double> GetNumber() const;
  Result<int64_t> GetInt() const;
  Result<std::string> GetString() const;

  /// Unchecked accessors, for use after the type has been verified.
  const Array& array() const { return array_; }
  Array& array() { return array_; }
  const Object& object() const { return object_; }
  Object& object() { return object_; }

  /// Object member lookup; NotFound if absent or not an object.
  Result<JsonValue> Get(std::string_view key) const;

  /// True if this is an object containing `key`.
  bool Has(std::string_view key) const;

  /// Serializes compactly ("{"a":1}") or pretty-printed when `indent` > 0.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view s);

}  // namespace coursenav

#endif  // COURSENAV_UTIL_JSON_H_

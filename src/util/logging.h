#ifndef COURSENAV_UTIL_LOGGING_H_
#define COURSENAV_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace coursenav {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects log emission to `sink` (called once per message, without the
/// trailing newline). Passing nullptr restores the default stderr sink.
/// Emission is serialized: the sink never runs concurrently with itself,
/// so tests and collectors need no locking of their own. The sink must not
/// log (deadlock).
using LogSink = std::function<void(LogLevel, std::string_view)>;
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log sink; emits on destruction. Not for direct use — see the
/// COURSENAV_LOG macro below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace coursenav

/// Usage: COURSENAV_LOG(kInfo) << "expanded " << n << " nodes";
#define COURSENAV_LOG(severity)                                  \
  ::coursenav::internal::LogMessage(                             \
      ::coursenav::LogLevel::severity, __FILE__, __LINE__)

#endif  // COURSENAV_UTIL_LOGGING_H_

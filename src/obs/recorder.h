#ifndef COURSENAV_OBS_RECORDER_H_
#define COURSENAV_OBS_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace coursenav::obs {

/// One finished request's summary, as kept by the flight recorder: the
/// envelope digest (identities + timing + outcome), plus the sampled span
/// tree when the server kept one for this request.
struct RecordedRequest {
  std::string trace_id;
  std::string tenant;
  std::string request_id;
  /// The wire outcome name ("ok", "timeout", "overloaded", ...).
  std::string outcome;
  std::string status_message;
  double deadline_ms = 0.0;
  double queue_wait_ms = 0.0;
  double service_ms = 0.0;
  int64_t served_seq = -1;
  /// Seconds since the recorder was constructed (monotonic clock).
  double age_seconds = 0.0;
  std::vector<SpanRecord> trace;

  bool is_ok() const { return outcome == "ok"; }

  JsonValue ToJson() const;
};

struct FlightRecorderConfig {
  /// Ring-buffer capacity: the newest `capacity` requests are retained.
  size_t capacity = 256;
  /// A non-ok outcome arriving after this many seconds without one fires
  /// the auto-dump sink — the black box flushes on the *first* sign of
  /// trouble after quiet, not on every subsequent failure of a burst.
  double quiet_seconds = 5.0;
};

/// A fixed-size ring buffer of recent request summaries — the serving
/// layer's black box. Thread-safe; recording is a mutex push into a
/// bounded deque (cold next to request execution). Dumps to JSON-lines on
/// demand and automatically (via the sink callback) on the first non-ok
/// outcome after a quiet period.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Installs the auto-dump sink. The sink receives the JSON-lines dump of
  /// everything retained at trigger time and runs outside the recorder's
  /// lock; null uninstalls.
  void SetAutoDumpSink(std::function<void(const std::string&)> sink);

  /// Appends one finished request, evicting the oldest past capacity, and
  /// fires the auto-dump sink when this is the first non-ok outcome after
  /// `quiet_seconds` without one.
  void Record(RecordedRequest record);

  /// The retained records, oldest first.
  std::vector<RecordedRequest> Snapshot() const;

  /// One compact JSON object per retained record, oldest first.
  std::string DumpJsonLines() const;

  int64_t total_recorded() const;
  int64_t non_ok_recorded() const;
  /// Times the auto-dump sink fired.
  int64_t auto_dumps() const;

  const FlightRecorderConfig& config() const { return config_; }

 private:
  const FlightRecorderConfig config_;
  Stopwatch epoch_;

  mutable Mutex mu_;
  std::deque<RecordedRequest> ring_ CN_GUARDED_BY(mu_);
  std::function<void(const std::string&)> sink_ CN_GUARDED_BY(mu_);
  int64_t total_ CN_GUARDED_BY(mu_) = 0;
  int64_t non_ok_ CN_GUARDED_BY(mu_) = 0;
  int64_t auto_dumps_ CN_GUARDED_BY(mu_) = 0;
  /// Epoch seconds of the last non-ok record; negative = never.
  double last_non_ok_seconds_ CN_GUARDED_BY(mu_) = -1.0;
};

}  // namespace coursenav::obs

#endif  // COURSENAV_OBS_RECORDER_H_

#ifndef COURSENAV_OBS_TRACE_H_
#define COURSENAV_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

/// Compile-time kill-switch for span instrumentation. When 0, ScopedSpan,
/// StageAccumulator, and the COURSENAV_TRACE_SPAN macro compile to empty
/// inline bodies — zero clock reads, zero branches on the hot path. The
/// Tracer type itself always exists so exporters and tools still link.
#ifndef COURSENAV_TRACING
#define COURSENAV_TRACING 1
#endif

namespace coursenav::obs {

/// One attribute on a finished span. A tagged scalar keeps the exporter
/// trivial (no variant headers in this hot include).
struct SpanAttribute {
  enum class Kind { kInt, kDouble, kString };

  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  static SpanAttribute Int(std::string_view key, int64_t value);
  static SpanAttribute Double(std::string_view key, double value);
  static SpanAttribute String(std::string_view key, std::string_view value);
};

/// A finished span: a named interval on the tracer's steady-clock timeline
/// with a parent link (0 = root) and optional attributes.
struct SpanRecord {
  int64_t span_id = 0;
  int64_t parent_id = 0;
  std::string name;
  /// Microseconds since the owning tracer's epoch (steady clock).
  int64_t start_us = 0;
  int64_t duration_us = 0;
  std::vector<SpanAttribute> attributes;
};

/// Collects finished spans for one exploration run / CLI invocation /
/// benchmark repetition. Span *recording* takes a mutex (spans are emitted
/// at stage granularity, not per node, so this is cold); parent linkage is
/// tracked per thread. Bounded: past `max_spans`, further records are
/// dropped and counted, never reallocated without bound.
class Tracer {
 public:
  explicit Tracer(size_t max_spans = 1 << 18);

  /// Microseconds since this tracer's construction (steady clock).
  int64_t NowMicros() const;

  /// Allocates a fresh span id (lock-free).
  int64_t NextSpanId();

  /// Records a finished span. Thread-safe.
  void Record(SpanRecord record);

  /// Emits an already-measured interval as a span parented under the
  /// calling thread's current span (aggregate stage spans use this).
  void EmitSpan(std::string_view name, int64_t start_us, int64_t duration_us,
                std::vector<SpanAttribute> attributes = {});

  /// Copies out everything recorded so far, in record order.
  std::vector<SpanRecord> Spans() const;

  size_t span_count() const;
  /// Spans discarded because the buffer was full.
  size_t dropped() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  size_t max_spans_;  // set in the constructor, read-only afterwards
  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ CN_GUARDED_BY(mu_);
  size_t dropped_ CN_GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> next_id_{1};
};

/// The tracer observed by instrumentation on the calling thread, or null
/// when tracing is not active (the common case — one pointer load).
Tracer* CurrentTracer();

/// The calling thread's innermost open span id (0 when none). Exposed for
/// aggregate emitters; ScopedSpan maintains it automatically.
int64_t CurrentSpanId();

/// RAII installation of a tracer for the calling thread. Restores the
/// previous tracer (usually none) on destruction.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* previous_;
  int64_t previous_span_;
};

namespace internal {
/// Swaps the thread-local current span id, returning the previous one.
int64_t ExchangeCurrentSpan(int64_t span_id);
void SetThreadTracer(Tracer* tracer);
}  // namespace internal

#if COURSENAV_TRACING

/// RAII span: opens on construction (when a tracer is installed on this
/// thread), records on destruction. Cheap when tracing is inactive: one
/// thread-local load and branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : tracer_(CurrentTracer()) {
    if (tracer_ == nullptr) return;
    record_.span_id = tracer_->NextSpanId();
    record_.name = std::string(name);
    record_.start_us = tracer_->NowMicros();
    record_.parent_id = internal::ExchangeCurrentSpan(record_.span_id);
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    record_.duration_us = tracer_->NowMicros() - record_.start_us;
    internal::ExchangeCurrentSpan(record_.parent_id);
    tracer_->Record(std::move(record_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

  void AddInt(std::string_view key, int64_t value) {
    if (tracer_ != nullptr) {
      record_.attributes.push_back(SpanAttribute::Int(key, value));
    }
  }
  void AddDouble(std::string_view key, double value) {
    if (tracer_ != nullptr) {
      record_.attributes.push_back(SpanAttribute::Double(key, value));
    }
  }
  void AddString(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) {
      record_.attributes.push_back(SpanAttribute::String(key, value));
    }
  }

 private:
  Tracer* tracer_;
  SpanRecord record_;
};

/// Accumulates many short intervals into one aggregate span — the pattern
/// for per-child hot paths (pruning checks, ranking evaluation) where a
/// span per call would swamp the trace. Bind once per run, sample with
/// StageSample, then Emit one span carrying total duration and call count.
class StageAccumulator {
 public:
  StageAccumulator() : tracer_(CurrentTracer()) {}

  bool enabled() const { return tracer_ != nullptr; }

  void Add(int64_t duration_us) {
    total_us_ += duration_us;
    ++count_;
  }

  int64_t total_us() const { return total_us_; }
  int64_t count() const { return count_; }

  /// Emits the aggregate as one span (even when no samples were taken, so
  /// traces always show the stage) parented under the current span.
  void Emit(std::string_view name,
            std::vector<SpanAttribute> extra_attributes = {}) const;

  Tracer* tracer() const { return tracer_; }

 private:
  Tracer* tracer_;
  int64_t total_us_ = 0;
  int64_t count_ = 0;
};

/// RAII sample feeding a StageAccumulator; reads the clock only when the
/// accumulator is bound to a tracer.
class StageSample {
 public:
  explicit StageSample(StageAccumulator* accumulator)
      : accumulator_(accumulator),
        start_us_(accumulator->enabled()
                      ? accumulator->tracer()->NowMicros()
                      : 0) {}

  ~StageSample() {
    if (accumulator_->enabled()) {
      accumulator_->Add(accumulator_->tracer()->NowMicros() - start_us_);
    }
  }

  StageSample(const StageSample&) = delete;
  StageSample& operator=(const StageSample&) = delete;

 private:
  StageAccumulator* accumulator_;
  int64_t start_us_;
};

#else  // !COURSENAV_TRACING — every instrumentation type is a no-op.

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  bool enabled() const { return false; }
  void AddInt(std::string_view, int64_t) {}
  void AddDouble(std::string_view, double) {}
  void AddString(std::string_view, std::string_view) {}
};

class StageAccumulator {
 public:
  bool enabled() const { return false; }
  void Add(int64_t) {}
  int64_t total_us() const { return 0; }
  int64_t count() const { return 0; }
  void Emit(std::string_view, std::vector<SpanAttribute> = {}) const {}
  Tracer* tracer() const { return nullptr; }
};

class StageSample {
 public:
  explicit StageSample(StageAccumulator*) {}
};

#endif  // COURSENAV_TRACING

/// Span taxonomy (docs/observability.md documents the full tree).
inline constexpr std::string_view kSpanGenerateDeadline = "generate/deadline";
inline constexpr std::string_view kSpanGenerateGoal = "generate/goal";
inline constexpr std::string_view kSpanGenerateRanked = "generate/ranked";
inline constexpr std::string_view kSpanCountPaths = "count/paths";
inline constexpr std::string_view kSpanGraphConstruct = "graph/construct";
inline constexpr std::string_view kSpanExpandLoop = "expand/loop";
inline constexpr std::string_view kSpanPruneTime = "prune/time";
inline constexpr std::string_view kSpanPruneAvailability =
    "prune/availability";
inline constexpr std::string_view kSpanRankEvaluate = "rank/evaluate";
inline constexpr std::string_view kSpanFlowCheck = "flow/credited_slots";
inline constexpr std::string_view kSpanDegradeLadder = "degrade/ladder";
inline constexpr std::string_view kSpanDegradeRung = "degrade/rung";
inline constexpr std::string_view kSpanSessionQuery = "session/query";
inline constexpr std::string_view kSpanPlanLower = "plan/lower";
inline constexpr std::string_view kSpanServeRequest = "serve/request";
inline constexpr std::string_view kSpanServeAdmissionWait =
    "serve/admission_wait";
inline constexpr std::string_view kSpanServeClamp = "serve/clamp";

}  // namespace coursenav::obs

#endif  // COURSENAV_OBS_TRACE_H_

#include "obs/metrics.h"

#include <algorithm>

namespace coursenav::obs {

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

int64_t Histogram::UpperBound(int bucket) {
  if (bucket >= kNumBuckets - 1) return INT64_MAX;  // +Inf bucket
  return int64_t{1} << bucket;
}

int Histogram::BucketIndex(int64_t value) {
  if (value < 1) return 0;
  int bucket = 1;
  while (bucket < kNumBuckets - 1 && value >= (int64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

namespace {

/// Interning body shared by the three kinds. The caller holds the
/// registry's mutex and passes the guarded containers by reference — the
/// lock lives in the member function so the thread-safety analysis sees
/// the guarded accesses under the right capability.
template <typename Slot>
MetricId InternLocked(std::unordered_map<std::string, int>& ids,
                      std::deque<Slot>& slots,
                      std::deque<std::string>& names, MetricKind kind,
                      std::string_view name) {
  auto it = ids.find(std::string(name));
  if (it != ids.end()) return {kind, it->second};
  int index = static_cast<int>(slots.size());
  slots.emplace_back();
  names.emplace_back(name);
  ids.emplace(std::string(name), index);
  return {kind, index};
}

}  // namespace

MetricId MetricRegistry::InternCounter(std::string_view name) {
  MutexLock lock(mu_);
  return InternLocked(counter_ids_, counters_, counter_names_,
                      MetricKind::kCounter, name);
}

MetricId MetricRegistry::InternGauge(std::string_view name) {
  MutexLock lock(mu_);
  return InternLocked(gauge_ids_, gauges_, gauge_names_, MetricKind::kGauge,
                      name);
}

MetricId MetricRegistry::InternHistogram(std::string_view name) {
  MutexLock lock(mu_);
  return InternLocked(histogram_ids_, histograms_, histogram_names_,
                      MetricKind::kHistogram, name);
}

Counter* MetricRegistry::counter(MetricId id) {
  MutexLock lock(mu_);
  return &counters_[static_cast<size_t>(id.index)];
}

Gauge* MetricRegistry::gauge(MetricId id) {
  MutexLock lock(mu_);
  return &gauges_[static_cast<size_t>(id.index)];
}

Histogram* MetricRegistry::histogram(MetricId id) {
  MutexLock lock(mu_);
  return &histograms_[static_cast<size_t>(id.index)];
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    MutexLock lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (size_t i = 0; i < counters_.size(); ++i) {
      MetricSnapshot snap;
      snap.name = counter_names_[i];
      snap.kind = MetricKind::kCounter;
      snap.value = counters_[i].Value();
      out.push_back(std::move(snap));
    }
    for (size_t i = 0; i < gauges_.size(); ++i) {
      MetricSnapshot snap;
      snap.name = gauge_names_[i];
      snap.kind = MetricKind::kGauge;
      snap.value = gauges_[i].Value();
      out.push_back(std::move(snap));
    }
    for (size_t i = 0; i < histograms_.size(); ++i) {
      MetricSnapshot snap;
      snap.name = histogram_names_[i];
      snap.kind = MetricKind::kHistogram;
      snap.value = histograms_[i].Count();
      snap.sum = histograms_[i].Sum();
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        snap.buckets[static_cast<size_t>(b)] = histograms_[i].BucketCount(b);
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.name < b.name;
            });
  return out;
}

size_t MetricRegistry::InternedNameCount() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricRegistry::AccumulateInto(MetricRegistry* target) const {
  if (target == this || target == nullptr) return;
  std::vector<MetricSnapshot> snapshot = Snapshot();
  for (const MetricSnapshot& snap : snapshot) {
    switch (snap.kind) {
      case MetricKind::kCounter:
        if (snap.value != 0) target->GetCounter(snap.name)->Increment(snap.value);
        break;
      case MetricKind::kGauge:
        target->GetGauge(snap.name)->UpdateMax(snap.value);
        break;
      case MetricKind::kHistogram:
        if (snap.value != 0) {
          target->GetHistogram(snap.name)->Merge(snap.value, snap.sum,
                                                 snap.buckets);
        }
        break;
    }
  }
}

MetricRegistry& GlobalMetrics() {
  // Leaky singleton: workers may flush metrics during static destruction.
  static MetricRegistry* registry =
      new MetricRegistry();  // NOLINT(coursenav-raw-new)
  return *registry;
}

std::string LabeledMetricName(std::string_view base, std::string_view key,
                              std::string_view value) {
  std::string name;
  name.reserve(base.size() + key.size() + value.size() + 2);
  name.append(base);
  name.push_back('|');
  name.append(key);
  name.push_back('=');
  name.append(value);
  return name;
}

ExplorationMetrics::ExplorationMetrics(MetricRegistry* registry)
    : registry_(registry), handles_{} {
  if (registry == nullptr) return;  // detached per-worker tally sheet
  Counter** h = handles_;
  h[0] = registry->GetCounter(kMetricNodesCreated);
  h[1] = registry->GetCounter(kMetricEdgesCreated);
  h[2] = registry->GetCounter(kMetricNodesExpanded);
  h[3] = registry->GetCounter(kMetricTerminalPaths);
  h[4] = registry->GetCounter(kMetricGoalPaths);
  h[5] = registry->GetCounter(kMetricDeadEndPaths);
  h[6] = registry->GetCounter(kMetricPrunedTime);
  h[7] = registry->GetCounter(kMetricPrunedAvailability);
  h[8] = registry->GetCounter(kMetricBudgetChecks);
}

void ExplorationMetrics::Publish() {
  if (registry_ == nullptr) return;
  const int64_t tallies[kNumTallies] = {
      nodes_created, edges_created, nodes_expanded,
      terminal_paths, goal_paths,   dead_end_paths,
      pruned_time,   pruned_availability, budget_checks};
  for (int i = 0; i < kNumTallies; ++i) {
    int64_t delta = tallies[i] - published_[i];
    if (delta != 0) handles_[i]->Increment(delta);
    published_[i] = tallies[i];
  }
}

}  // namespace coursenav::obs

#include "obs/export.h"

#include <algorithm>
#include <map>

#include "util/string_util.h"

namespace coursenav::obs {

namespace {

std::string SeriesName(std::string_view prefix, std::string_view name) {
  return std::string(prefix) + std::string(name);
}

}  // namespace

std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot,
                             std::string_view prefix) {
  std::string out;
  for (const MetricSnapshot& metric : snapshot) {
    std::string series = SeriesName(prefix, metric.name);
    out += StrFormat("# TYPE %s %s\n", series.c_str(),
                     std::string(MetricKindName(metric.kind)).c_str());
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += StrFormat("%s %lld\n", series.c_str(),
                         static_cast<long long>(metric.value));
        break;
      case MetricKind::kHistogram: {
        int64_t cumulative = 0;
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          cumulative += metric.buckets[static_cast<size_t>(b)];
          if (b == Histogram::kNumBuckets - 1) {
            out += StrFormat("%s_bucket{le=\"+Inf\"} %lld\n", series.c_str(),
                             static_cast<long long>(cumulative));
          } else {
            out += StrFormat(
                "%s_bucket{le=\"%lld\"} %lld\n", series.c_str(),
                static_cast<long long>(Histogram::UpperBound(b)),
                static_cast<long long>(cumulative));
          }
        }
        out += StrFormat("%s_sum %lld\n", series.c_str(),
                         static_cast<long long>(metric.sum));
        out += StrFormat("%s_count %lld\n", series.c_str(),
                         static_cast<long long>(metric.value));
        break;
      }
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricRegistry& registry,
                             std::string_view prefix) {
  return RenderPrometheus(registry.Snapshot(), prefix);
}

JsonValue SpanToJson(const SpanRecord& span) {
  JsonValue::Object object;
  object["span_id"] = JsonValue(span.span_id);
  object["parent_id"] = JsonValue(span.parent_id);
  object["name"] = JsonValue(span.name);
  object["start_us"] = JsonValue(span.start_us);
  object["dur_us"] = JsonValue(span.duration_us);
  if (!span.attributes.empty()) {
    JsonValue::Object attrs;
    for (const SpanAttribute& attr : span.attributes) {
      switch (attr.kind) {
        case SpanAttribute::Kind::kInt:
          attrs[attr.key] = JsonValue(attr.int_value);
          break;
        case SpanAttribute::Kind::kDouble:
          attrs[attr.key] = JsonValue(attr.double_value);
          break;
        case SpanAttribute::Kind::kString:
          attrs[attr.key] = JsonValue(attr.string_value);
          break;
      }
    }
    object["attrs"] = JsonValue(std::move(attrs));
  }
  return JsonValue(std::move(object));
}

std::string TraceToJsonLines(const Tracer& tracer) {
  std::string out;
  for (const SpanRecord& span : tracer.Spans()) {
    out += SpanToJson(span).Dump();
    out += "\n";
  }
  return out;
}

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& span : spans) {
    SpanAggregate& agg = by_name[span.name];
    agg.name = span.name;
    ++agg.count;
    agg.total_us += span.duration_us;
    agg.max_us = std::max(agg.max_us, span.duration_us);
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.total_us > b.total_us;
            });
  return out;
}

}  // namespace coursenav::obs

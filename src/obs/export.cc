#include "obs/export.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/string_util.h"

namespace coursenav::obs {

namespace {

/// A metric name split back out of the LabeledMetricName encoding. Names
/// without a '|' are plain (empty label key).
struct ParsedName {
  std::string base;
  std::string label_key;
  std::string label_value;
};

ParsedName ParseMetricName(std::string_view name) {
  ParsedName parsed;
  size_t bar = name.find('|');
  if (bar == std::string_view::npos) {
    parsed.base = std::string(name);
    return parsed;
  }
  parsed.base = std::string(name.substr(0, bar));
  std::string_view label = name.substr(bar + 1);
  size_t eq = label.find('=');
  if (eq == std::string_view::npos) {
    // Malformed encoding: treat the remainder as a value-less key.
    parsed.label_key = std::string(label);
    return parsed;
  }
  parsed.label_key = std::string(label.substr(0, eq));
  parsed.label_value = std::string(label.substr(eq + 1));
  return parsed;
}

/// `{key="value"}` with the value escaped; empty for unlabeled series.
std::string LabelSuffix(const ParsedName& parsed) {
  if (parsed.label_key.empty()) return "";
  return StrFormat("{%s=\"%s\"}", parsed.label_key.c_str(),
                   EscapePrometheusLabelValue(parsed.label_value).c_str());
}

/// Bucket series need `le` merged with the metric's own label.
std::string BucketSuffix(const ParsedName& parsed, std::string_view le) {
  if (parsed.label_key.empty()) {
    return StrFormat("{le=\"%s\"}", std::string(le).c_str());
  }
  return StrFormat("{%s=\"%s\",le=\"%s\"}", parsed.label_key.c_str(),
                   EscapePrometheusLabelValue(parsed.label_value).c_str(),
                   std::string(le).c_str());
}

}  // namespace

std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot,
                             std::string_view prefix) {
  std::string out;
  // One `# TYPE` header per (kind, base): labeled series of one base are
  // adjacent in the sorted snapshot but may be interleaved with other
  // bases, so track what was already announced.
  std::map<std::pair<MetricKind, std::string>, bool> announced;
  for (const MetricSnapshot& metric : snapshot) {
    ParsedName parsed = ParseMetricName(metric.name);
    std::string series = std::string(prefix) + parsed.base;
    if (!announced[{metric.kind, parsed.base}]) {
      announced[{metric.kind, parsed.base}] = true;
      out += StrFormat("# TYPE %s %s\n", series.c_str(),
                       std::string(MetricKindName(metric.kind)).c_str());
    }
    const std::string labels = LabelSuffix(parsed);
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += StrFormat("%s%s %lld\n", series.c_str(), labels.c_str(),
                         static_cast<long long>(metric.value));
        break;
      case MetricKind::kHistogram: {
        int64_t cumulative = 0;
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          cumulative += metric.buckets[static_cast<size_t>(b)];
          std::string le =
              b == Histogram::kNumBuckets - 1
                  ? "+Inf"
                  : StrFormat("%lld", static_cast<long long>(
                                          Histogram::UpperBound(b)));
          out += StrFormat("%s_bucket%s %lld\n", series.c_str(),
                           BucketSuffix(parsed, le).c_str(),
                           static_cast<long long>(cumulative));
        }
        out += StrFormat("%s_sum%s %lld\n", series.c_str(), labels.c_str(),
                         static_cast<long long>(metric.sum));
        out += StrFormat("%s_count%s %lld\n", series.c_str(), labels.c_str(),
                         static_cast<long long>(metric.value));
        break;
      }
    }
  }
  return out;
}

std::string EscapePrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

std::string UnescapePrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out.push_back(value[i]);
      continue;
    }
    ++i;
    switch (value[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '"':
        out.push_back('"');
        break;
      default:  // Unknown escape: keep both bytes verbatim.
        out.push_back('\\');
        out.push_back(value[i]);
        break;
    }
  }
  return out;
}

JsonValue MetricsToJson(const std::vector<MetricSnapshot>& snapshot) {
  JsonValue::Object counters;
  JsonValue::Object gauges;
  JsonValue::Object histograms;
  for (const MetricSnapshot& metric : snapshot) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        counters[metric.name] = JsonValue(metric.value);
        break;
      case MetricKind::kGauge:
        gauges[metric.name] = JsonValue(metric.value);
        break;
      case MetricKind::kHistogram: {
        JsonValue::Object hist;
        hist["count"] = JsonValue(metric.value);
        hist["sum"] = JsonValue(metric.sum);
        hist["p50_us"] = JsonValue(HistogramQuantile(metric, 0.5));
        hist["p99_us"] = JsonValue(HistogramQuantile(metric, 0.99));
        histograms[metric.name] = JsonValue(std::move(hist));
        break;
      }
    }
  }
  JsonValue::Object out;
  out["counters"] = JsonValue(std::move(counters));
  out["gauges"] = JsonValue(std::move(gauges));
  out["histograms"] = JsonValue(std::move(histograms));
  return JsonValue(std::move(out));
}

int64_t HistogramQuantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.value <= 0) return 0;
  const double target = q * static_cast<double>(snapshot.value);
  int64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    cumulative += snapshot.buckets[static_cast<size_t>(b)];
    if (static_cast<double>(cumulative) >= target) {
      return Histogram::UpperBound(b);
    }
  }
  return Histogram::UpperBound(Histogram::kNumBuckets - 1);
}

void PublishTracerHealth(size_t dropped_spans, MetricRegistry& registry) {
  registry.GetGauge(kMetricTraceDroppedSpans)
      ->UpdateMax(static_cast<int64_t>(dropped_spans));
}

void PublishRegistryHealth(MetricRegistry& registry) {
  // Interning the gauge itself grows the table, so count first and accept
  // the off-by-one on the very first publish (the gauge then exists).
  const size_t interned = registry.InternedNameCount();
  registry.GetGauge(kMetricInternedNames)
      ->Set(static_cast<int64_t>(interned));
}

std::string RenderPrometheus(const MetricRegistry& registry,
                             std::string_view prefix) {
  return RenderPrometheus(registry.Snapshot(), prefix);
}

JsonValue SpanToJson(const SpanRecord& span) {
  JsonValue::Object object;
  object["span_id"] = JsonValue(span.span_id);
  object["parent_id"] = JsonValue(span.parent_id);
  object["name"] = JsonValue(span.name);
  object["start_us"] = JsonValue(span.start_us);
  object["dur_us"] = JsonValue(span.duration_us);
  if (!span.attributes.empty()) {
    JsonValue::Object attrs;
    for (const SpanAttribute& attr : span.attributes) {
      switch (attr.kind) {
        case SpanAttribute::Kind::kInt:
          attrs[attr.key] = JsonValue(attr.int_value);
          break;
        case SpanAttribute::Kind::kDouble:
          attrs[attr.key] = JsonValue(attr.double_value);
          break;
        case SpanAttribute::Kind::kString:
          attrs[attr.key] = JsonValue(attr.string_value);
          break;
      }
    }
    object["attrs"] = JsonValue(std::move(attrs));
  }
  return JsonValue(std::move(object));
}

std::string TraceToJsonLines(const Tracer& tracer) {
  std::string out;
  for (const SpanRecord& span : tracer.Spans()) {
    out += SpanToJson(span).Dump();
    out += "\n";
  }
  return out;
}

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& span : spans) {
    SpanAggregate& agg = by_name[span.name];
    agg.name = span.name;
    ++agg.count;
    agg.total_us += span.duration_us;
    agg.max_us = std::max(agg.max_us, span.duration_us);
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.total_us > b.total_us;
            });
  return out;
}

}  // namespace coursenav::obs

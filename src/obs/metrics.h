#ifndef COURSENAV_OBS_METRICS_H_
#define COURSENAV_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav::obs {

/// What a metric slot measures. Counters only grow, gauges hold the last
/// (or maximum) observation, histograms bucket observations by log2 value.
enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view MetricKindName(MetricKind kind);

/// Interned handle for a registered metric name. Ids are indices into the
/// owning registry's per-kind storage; interning is the only operation that
/// takes a lock — everything on the hot path is a relaxed atomic.
struct MetricId {
  MetricKind kind = MetricKind::kCounter;
  int index = -1;

  bool valid() const { return index >= 0; }
};

/// Monotonically increasing count. Lock-free; safe to increment from any
/// number of threads concurrently.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value, plus a monotone high-watermark
/// helper for peak tracking. Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is currently lower.
  void UpdateMax(int64_t value) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < value && !value_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucketed histogram of non-negative integer observations
/// (typically microseconds or node counts). Bucket `i` counts observations
/// whose value is < UpperBound(i); the last bucket is unbounded. Lock-free.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  /// Upper bound (exclusive) of bucket `i`: 2^i, except the last bucket
  /// which absorbs everything (rendered as +Inf).
  static int64_t UpperBound(int bucket);

  /// Bucket index for a value: 0 for v < 1, else 1 + floor(log2(v)),
  /// clamped to the last bucket. Negative values clamp to bucket 0.
  static int BucketIndex(int64_t value);

  void Observe(int64_t value) {
    buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  /// Adds another histogram's tallies (from a snapshot) into this one,
  /// preserving exact bucket counts and sum.
  void Merge(int64_t count, int64_t sum,
             const std::array<int64_t, kNumBuckets>& buckets) {
    for (int b = 0; b < kNumBuckets; ++b) {
      int64_t n = buckets[static_cast<size_t>(b)];
      if (n != 0) {
        buckets_[static_cast<size_t>(b)].fetch_add(n,
                                                   std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Point-in-time copy of one metric, for exporters and tests.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter/gauge value; for histograms the observation count.
  int64_t value = 0;
  /// Histogram only.
  int64_t sum = 0;
  std::array<int64_t, Histogram::kNumBuckets> buckets{};
};

/// A named collection of metrics. Interning a name is mutex-protected and
/// returns a stable id/pointer; subsequent updates through the handle are
/// lock-free. Metric names are unique per kind within one registry.
///
/// Two registries exist in practice: a short-lived per-run registry owned
/// by each exploration engine (so a run's numbers are isolated), and the
/// process-global registry (`GlobalMetrics()`) into which finished runs
/// accumulate and which the exporters snapshot.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Interns `name`, returning the existing id when already registered.
  MetricId InternCounter(std::string_view name);
  MetricId InternGauge(std::string_view name);
  MetricId InternHistogram(std::string_view name);

  /// Handle lookup; pointers stay valid for the registry's lifetime.
  Counter* counter(MetricId id);
  Gauge* gauge(MetricId id);
  Histogram* histogram(MetricId id);

  /// Convenience: intern + handle in one call (the common setup pattern).
  Counter* GetCounter(std::string_view name) {
    return counter(InternCounter(name));
  }
  Gauge* GetGauge(std::string_view name) { return gauge(InternGauge(name)); }
  Histogram* GetHistogram(std::string_view name) {
    return histogram(InternHistogram(name));
  }

  /// Point-in-time copy of every metric, sorted by (kind, name) for
  /// deterministic export.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Total interned names across all three kinds. Labeled per-tenant series
  /// intern one name per (metric, label) pair, so this is the number
  /// exporter consumers watch to detect unbounded label cardinality.
  size_t InternedNameCount() const;

  /// Adds every counter value and histogram bucket of this registry into
  /// `target` (interning names there as needed); gauges propagate as
  /// UpdateMax. Used to fold a finished run's registry into the global one.
  void AccumulateInto(MetricRegistry* target) const;

 private:
  /// Guards the name maps and the deques' growth; updates through the
  /// returned Counter/Gauge/Histogram pointers are lock-free (the deques
  /// give stable element addresses across growth).
  mutable Mutex mu_;
  std::unordered_map<std::string, int> counter_ids_ CN_GUARDED_BY(mu_);
  std::unordered_map<std::string, int> gauge_ids_ CN_GUARDED_BY(mu_);
  std::unordered_map<std::string, int> histogram_ids_ CN_GUARDED_BY(mu_);
  std::deque<Counter> counters_ CN_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ CN_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ CN_GUARDED_BY(mu_);
  std::deque<std::string> counter_names_ CN_GUARDED_BY(mu_);
  std::deque<std::string> gauge_names_ CN_GUARDED_BY(mu_);
  std::deque<std::string> histogram_names_ CN_GUARDED_BY(mu_);
};

/// The process-wide registry the exporters snapshot. Never destroyed.
MetricRegistry& GlobalMetrics();

/// Encodes one label pair into an interned metric name: `base|key=value`.
/// The registry treats the result as an opaque name; the Prometheus
/// renderer splits it back apart and emits `base{key="value"}` with the
/// value escaped, so hostile label values (quotes, backslashes, newlines)
/// round-trip through the text exposition format.
std::string LabeledMetricName(std::string_view base, std::string_view key,
                              std::string_view value);

// ------------------------------------------------------------------
// Canonical metric names (shared by the engine, exporters, and tests).
// Prometheus rendering prefixes these with "coursenav_".

inline constexpr std::string_view kMetricNodesCreated =
    "exploration_nodes_created_total";
inline constexpr std::string_view kMetricEdgesCreated =
    "exploration_edges_created_total";
inline constexpr std::string_view kMetricNodesExpanded =
    "exploration_nodes_expanded_total";
inline constexpr std::string_view kMetricTerminalPaths =
    "exploration_terminal_paths_total";
inline constexpr std::string_view kMetricGoalPaths =
    "exploration_goal_paths_total";
inline constexpr std::string_view kMetricDeadEndPaths =
    "exploration_dead_end_paths_total";
inline constexpr std::string_view kMetricPrunedTime =
    "exploration_pruned_time_total";
inline constexpr std::string_view kMetricPrunedAvailability =
    "exploration_pruned_availability_total";
inline constexpr std::string_view kMetricBudgetChecks =
    "exploration_budget_checks_total";
inline constexpr std::string_view kMetricRuns = "exploration_runs_total";
inline constexpr std::string_view kMetricRuntimeMicros =
    "exploration_runtime_us";
inline constexpr std::string_view kMetricPeakNodes = "exploration_peak_nodes";
inline constexpr std::string_view kMetricFlowChecks =
    "flow_credited_slots_total";
inline constexpr std::string_view kMetricFlowSolves =
    "flow_network_solves_total";
inline constexpr std::string_view kMetricDegradationRungs =
    "degradation_rungs_attempted_total";
inline constexpr std::string_view kMetricDegradationServed =
    "degradation_responses_served_total";
inline constexpr std::string_view kMetricSessionCommits =
    "session_commits_total";
inline constexpr std::string_view kMetricSessionUndos =
    "session_undos_total";
inline constexpr std::string_view kMetricSessionQueries =
    "session_queries_total";
inline constexpr std::string_view kMetricSessionCacheHits =
    "session_goal_path_cache_hits_total";
inline constexpr std::string_view kMetricSessionCacheMisses =
    "session_goal_path_cache_misses_total";

// Observability self-monitoring: consumers watch these to detect
// truncated traces and label-cardinality growth.
inline constexpr std::string_view kMetricTraceDroppedSpans =
    "trace_dropped_spans";
inline constexpr std::string_view kMetricInternedNames =
    "metrics_interned_names";

// Serving layer (src/serve/): admission control, shedding, and client
// retries. Per-tenant series are labeled via LabeledMetricName(base,
// "tenant", name) and render as `base{tenant="..."}`.
inline constexpr std::string_view kMetricServeSubmitted =
    "serve_requests_submitted_total";
inline constexpr std::string_view kMetricServeAdmitted =
    "serve_requests_admitted_total";
inline constexpr std::string_view kMetricServeCompleted =
    "serve_requests_completed_total";
inline constexpr std::string_view kMetricServeShed =
    "serve_requests_shed_total";
inline constexpr std::string_view kMetricServeRejected =
    "serve_requests_rejected_total";
inline constexpr std::string_view kMetricServeDegraded =
    "serve_responses_degraded_total";
inline constexpr std::string_view kMetricServeTimeout =
    "serve_responses_timeout_total";
inline constexpr std::string_view kMetricServeCancelled =
    "serve_responses_cancelled_total";
inline constexpr std::string_view kMetricServeSlowClient =
    "serve_slow_client_total";
inline constexpr std::string_view kMetricServeFaultsInjected =
    "serve_faults_injected_total";
inline constexpr std::string_view kMetricServeClientRetries =
    "serve_client_retries_total";
inline constexpr std::string_view kMetricServeQueueDepth =
    "serve_queue_depth";
inline constexpr std::string_view kMetricServeInflight = "serve_inflight";
inline constexpr std::string_view kMetricServeQueueWaitMicros =
    "serve_queue_wait_us";
inline constexpr std::string_view kMetricServeServiceMicros =
    "serve_service_us";
inline constexpr std::string_view kMetricServeTenantRequests =
    "serve_tenant_requests_total";
inline constexpr std::string_view kMetricServeTenantInflight =
    "serve_tenant_inflight";
inline constexpr std::string_view kMetricServeTenantQueueWaitMicros =
    "serve_tenant_queue_wait_us";
inline constexpr std::string_view kMetricServeTenantServiceMicros =
    "serve_tenant_service_us";
inline constexpr std::string_view kMetricServeTenantDeadlineMet =
    "serve_tenant_deadline_met_total";
inline constexpr std::string_view kMetricServeTenantDeadlineMissed =
    "serve_tenant_deadline_missed_total";

// Process-wide epoch-keyed request cache (src/cache/): shared plan,
// canonical-result, goal-path-count, and availability-verdict reuse
// across sessions. Hits/misses are per tier; epoch_invalidations counts
// explicit Invalidate() calls plus fault-driven epoch rotations observed.
inline constexpr std::string_view kMetricCachePlanHits =
    "cache_plan_hits_total";
inline constexpr std::string_view kMetricCachePlanMisses =
    "cache_plan_misses_total";
inline constexpr std::string_view kMetricCacheResultHits =
    "cache_result_hits_total";
inline constexpr std::string_view kMetricCacheResultMisses =
    "cache_result_misses_total";
inline constexpr std::string_view kMetricCacheCountHits =
    "cache_count_hits_total";
inline constexpr std::string_view kMetricCacheCountMisses =
    "cache_count_misses_total";
inline constexpr std::string_view kMetricCacheBypass =
    "cache_bypass_total";
inline constexpr std::string_view kMetricCacheEvictions =
    "cache_evictions_total";
inline constexpr std::string_view kMetricCacheEpochInvalidations =
    "cache_epoch_invalidations_total";
inline constexpr std::string_view kMetricCacheResultBytes =
    "cache_result_bytes";

/// The per-run instrumentation bundle every generator increments: one
/// plain int64 tally per legacy `ExplorationStats` counter (plus budget
/// checks). A generation run is single-threaded, so a hot-path increment
/// is one register add; routing every per-candidate bump through the
/// registry's atomic counters instead costs an RMW each and measurably
/// slows Table 2's goal runs. `Publish()` pushes the tallies into the
/// owning registry's lock-free counters, adding only the delta since the
/// last publish so it is safe to call repeatedly; the engine publishes
/// before folding the run into `GlobalMetrics()`.
class ExplorationMetrics {
 public:
  /// With a null registry the bundle is a detached tally sheet: increments
  /// work normally, `Publish()` is a no-op. The parallel engine gives each
  /// worker a detached bundle and folds them via `MergeFrom` at join, so
  /// the run's registry sees every tally exactly once.
  explicit ExplorationMetrics(MetricRegistry* registry);

  int64_t nodes_created = 0;
  int64_t edges_created = 0;
  int64_t nodes_expanded = 0;
  int64_t terminal_paths = 0;
  int64_t goal_paths = 0;
  int64_t dead_end_paths = 0;
  int64_t pruned_time = 0;
  int64_t pruned_availability = 0;
  int64_t budget_checks = 0;

  /// Adds the tallies accumulated since the last publish into the
  /// registry's counters.
  void Publish();

  /// Folds another bundle's raw tallies into this one. Used after a
  /// parallel run to join the per-worker tally sheets; the sources must
  /// never Publish themselves (they are detached), or the counts would
  /// double into the registry.
  void MergeFrom(const ExplorationMetrics& other) {
    nodes_created += other.nodes_created;
    edges_created += other.edges_created;
    nodes_expanded += other.nodes_expanded;
    terminal_paths += other.terminal_paths;
    goal_paths += other.goal_paths;
    dead_end_paths += other.dead_end_paths;
    pruned_time += other.pruned_time;
    pruned_availability += other.pruned_availability;
    budget_checks += other.budget_checks;
  }

  MetricRegistry* registry() const { return registry_; }

 private:
  static constexpr int kNumTallies = 9;

  MetricRegistry* registry_;
  Counter* handles_[kNumTallies];
  int64_t published_[kNumTallies] = {};
};

}  // namespace coursenav::obs

#endif  // COURSENAV_OBS_METRICS_H_

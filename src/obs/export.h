#ifndef COURSENAV_OBS_EXPORT_H_
#define COURSENAV_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace coursenav::obs {

/// Renders a metrics snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, `_bucket{le="..."}` / `_sum` / `_count` series for
/// histograms. Metric names are prefixed (default "coursenav_"). Names
/// carrying an encoded label (`base|key=value`, see LabeledMetricName)
/// render as `base{key="value"}` with the value escaped; labeled series
/// sharing one base share one `# TYPE` header.
std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot,
                             std::string_view prefix = "coursenav_");

/// Convenience: snapshot + render in one call.
std::string RenderPrometheus(const MetricRegistry& registry,
                             std::string_view prefix = "coursenav_");

/// Prometheus label-value escaping: backslash, double quote, and newline
/// become `\\`, `\"`, and `\n` so hostile label values survive the text
/// exposition format; Unescape inverts it exactly.
std::string EscapePrometheusLabelValue(std::string_view value);
std::string UnescapePrometheusLabelValue(std::string_view value);

/// A metrics snapshot as one JSON object — the structured twin of the
/// Prometheus text format, consumed by the admin plane's /statusz:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"count",
/// "sum", "p50_us", "p99_us"}}}. Labeled names keep their `base|key=value`
/// encoding as the JSON key.
JsonValue MetricsToJson(const std::vector<MetricSnapshot>& snapshot);

/// Approximate quantile (0 < q <= 1) of a histogram snapshot: the upper
/// bound of the first bucket whose cumulative count reaches q * count.
/// Returns 0 for empty histograms; the unbounded last bucket reports
/// INT64_MAX.
int64_t HistogramQuantile(const MetricSnapshot& snapshot, double q);

/// Mirrors a tracer's health into gauges: sets kMetricTraceDroppedSpans to
/// `dropped` (monotone max, so concurrent publishers never regress it).
void PublishTracerHealth(size_t dropped_spans, MetricRegistry& registry);

/// Sets kMetricInternedNames to the registry's current interning-table
/// size. Call before rendering so consumers can watch label cardinality.
void PublishRegistryHealth(MetricRegistry& registry);

/// One span as a JSON object: span_id, parent_id, name, start_us, dur_us,
/// and an "attrs" object.
JsonValue SpanToJson(const SpanRecord& span);

/// The whole trace as JSON lines — one compact span object per line (the
/// `--trace-out` format; `jq` and trace viewers ingest it line by line).
std::string TraceToJsonLines(const Tracer& tracer);

/// Per-name aggregation of a span list: count, total and max duration.
/// This is what the benchmark harnesses print as the per-stage profile.
struct SpanAggregate {
  std::string name;
  int64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans);

}  // namespace coursenav::obs

#endif  // COURSENAV_OBS_EXPORT_H_

#ifndef COURSENAV_OBS_EXPORT_H_
#define COURSENAV_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace coursenav::obs {

/// Renders a metrics snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, `_bucket{le="..."}` / `_sum` / `_count` series for
/// histograms. Metric names are prefixed (default "coursenav_").
std::string RenderPrometheus(const std::vector<MetricSnapshot>& snapshot,
                             std::string_view prefix = "coursenav_");

/// Convenience: snapshot + render in one call.
std::string RenderPrometheus(const MetricRegistry& registry,
                             std::string_view prefix = "coursenav_");

/// One span as a JSON object: span_id, parent_id, name, start_us, dur_us,
/// and an "attrs" object.
JsonValue SpanToJson(const SpanRecord& span);

/// The whole trace as JSON lines — one compact span object per line (the
/// `--trace-out` format; `jq` and trace viewers ingest it line by line).
std::string TraceToJsonLines(const Tracer& tracer);

/// Per-name aggregation of a span list: count, total and max duration.
/// This is what the benchmark harnesses print as the per-stage profile.
struct SpanAggregate {
  std::string name;
  int64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};

std::vector<SpanAggregate> AggregateSpans(
    const std::vector<SpanRecord>& spans);

}  // namespace coursenav::obs

#endif  // COURSENAV_OBS_EXPORT_H_

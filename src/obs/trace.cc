#include "obs/trace.h"

namespace coursenav::obs {

namespace {
/// Thread-local tracing context. Plain pointers/ints: trivially
/// destructible per the static-storage rules.
thread_local Tracer* tls_tracer = nullptr;
thread_local int64_t tls_current_span = 0;
}  // namespace

SpanAttribute SpanAttribute::Int(std::string_view key, int64_t value) {
  SpanAttribute attr;
  attr.key = std::string(key);
  attr.kind = Kind::kInt;
  attr.int_value = value;
  return attr;
}

SpanAttribute SpanAttribute::Double(std::string_view key, double value) {
  SpanAttribute attr;
  attr.key = std::string(key);
  attr.kind = Kind::kDouble;
  attr.double_value = value;
  return attr;
}

SpanAttribute SpanAttribute::String(std::string_view key,
                                    std::string_view value) {
  SpanAttribute attr;
  attr.key = std::string(key);
  attr.kind = Kind::kString;
  attr.string_value = std::string(value);
  return attr;
}

Tracer::Tracer(size_t max_spans)
    : epoch_(std::chrono::steady_clock::now()), max_spans_(max_spans) {}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t Tracer::NextSpanId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::Record(SpanRecord record) {
  MutexLock lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(record));
}

void Tracer::EmitSpan(std::string_view name, int64_t start_us,
                      int64_t duration_us,
                      std::vector<SpanAttribute> attributes) {
  SpanRecord record;
  record.span_id = NextSpanId();
  record.parent_id = CurrentSpanId();
  record.name = std::string(name);
  record.start_us = start_us;
  record.duration_us = duration_us;
  record.attributes = std::move(attributes);
  Record(std::move(record));
}

std::vector<SpanRecord> Tracer::Spans() const {
  MutexLock lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  MutexLock lock(mu_);
  return spans_.size();
}

size_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

Tracer* CurrentTracer() { return tls_tracer; }

int64_t CurrentSpanId() { return tls_current_span; }

ScopedTracer::ScopedTracer(Tracer* tracer)
    : previous_(tls_tracer), previous_span_(tls_current_span) {
  tls_tracer = tracer;
  tls_current_span = 0;
}

ScopedTracer::~ScopedTracer() {
  tls_tracer = previous_;
  tls_current_span = previous_span_;
}

namespace internal {

int64_t ExchangeCurrentSpan(int64_t span_id) {
  int64_t previous = tls_current_span;
  tls_current_span = span_id;
  return previous;
}

void SetThreadTracer(Tracer* tracer) { tls_tracer = tracer; }

}  // namespace internal

#if COURSENAV_TRACING

void StageAccumulator::Emit(std::string_view name,
                            std::vector<SpanAttribute> extra_attributes) const {
  if (tracer_ == nullptr) return;
  std::vector<SpanAttribute> attributes;
  attributes.push_back(SpanAttribute::Int("calls", count_));
  for (SpanAttribute& attr : extra_attributes) {
    attributes.push_back(std::move(attr));
  }
  int64_t now = tracer_->NowMicros();
  tracer_->EmitSpan(name, now - total_us_, total_us_, std::move(attributes));
}

#endif  // COURSENAV_TRACING

}  // namespace coursenav::obs

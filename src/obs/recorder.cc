#include "obs/recorder.h"

#include <utility>

#include "obs/export.h"

namespace coursenav::obs {

JsonValue RecordedRequest::ToJson() const {
  JsonValue::Object object;
  object["trace_id"] = JsonValue(trace_id);
  object["tenant"] = JsonValue(tenant);
  object["request_id"] = JsonValue(request_id);
  object["outcome"] = JsonValue(outcome);
  if (!status_message.empty()) {
    object["status_message"] = JsonValue(status_message);
  }
  object["deadline_ms"] = JsonValue(deadline_ms);
  object["queue_wait_ms"] = JsonValue(queue_wait_ms);
  object["service_ms"] = JsonValue(service_ms);
  object["served_seq"] = JsonValue(served_seq);
  object["age_seconds"] = JsonValue(age_seconds);
  if (!trace.empty()) {
    std::vector<JsonValue> spans;
    spans.reserve(trace.size());
    for (const SpanRecord& span : trace) spans.push_back(SpanToJson(span));
    object["trace"] = JsonValue(std::move(spans));
  }
  return JsonValue(std::move(object));
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {}

void FlightRecorder::SetAutoDumpSink(
    std::function<void(const std::string&)> sink) {
  MutexLock lock(mu_);
  sink_ = std::move(sink);
}

void FlightRecorder::Record(RecordedRequest record) {
  std::function<void(const std::string&)> fire;
  std::string dump;
  {
    MutexLock lock(mu_);
    record.age_seconds = epoch_.ElapsedSeconds();
    const bool bad = !record.is_ok();
    ring_.push_back(std::move(record));
    while (ring_.size() > config_.capacity) ring_.pop_front();
    ++total_;
    if (bad) {
      ++non_ok_;
      const double now = ring_.back().age_seconds;
      const bool after_quiet =
          last_non_ok_seconds_ < 0.0 ||
          now - last_non_ok_seconds_ >= config_.quiet_seconds;
      last_non_ok_seconds_ = now;
      if (after_quiet && sink_) {
        ++auto_dumps_;
        fire = sink_;
        for (const RecordedRequest& kept : ring_) {
          dump += kept.ToJson().Dump();
          dump += "\n";
        }
      }
    }
  }
  if (fire) fire(dump);
}

std::vector<RecordedRequest> FlightRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<RecordedRequest>(ring_.begin(), ring_.end());
}

std::string FlightRecorder::DumpJsonLines() const {
  std::string out;
  MutexLock lock(mu_);
  for (const RecordedRequest& record : ring_) {
    out += record.ToJson().Dump();
    out += "\n";
  }
  return out;
}

int64_t FlightRecorder::total_recorded() const {
  MutexLock lock(mu_);
  return total_;
}

int64_t FlightRecorder::non_ok_recorded() const {
  MutexLock lock(mu_);
  return non_ok_;
}

int64_t FlightRecorder::auto_dumps() const {
  MutexLock lock(mu_);
  return auto_dumps_;
}

}  // namespace coursenav::obs

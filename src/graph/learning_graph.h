#ifndef COURSENAV_GRAPH_LEARNING_GRAPH_H_
#define COURSENAV_GRAPH_LEARNING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "catalog/term.h"
#include "util/bitset.h"

namespace coursenav {

using NodeId = int32_t;
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNodeId = -1;
inline constexpr EdgeId kInvalidEdgeId = -1;

/// One enrollment status `n_i` (Section 2): the semester `s_i`, the courses
/// completed by then `X_i`, and the course options `Y_i` available in `s_i`.
struct LearningNode {
  Term term;
  DynamicBitset completed;  ///< X_i
  DynamicBitset options;    ///< Y_i
  EdgeId parent_edge = kInvalidEdgeId;
  std::vector<EdgeId> out_edges;
  /// Set when this node satisfies the exploration task's condition (for
  /// deadline-driven paths: `s_i == d`; for goal-driven: the goal holds).
  bool is_goal = false;
  /// Accumulated path cost from the root under the active ranking function
  /// (0 when no ranking is in effect).
  double path_cost = 0.0;
};

/// One transition `e(n_i, n_{i+1})`: the course selection `W_{i,i+1}`
/// elected in semester `s_i`.
struct LearningEdge {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  DynamicBitset selection;  ///< W_{i,i+1} ⊆ Y_i
  double cost = 0.0;        ///< edge cost under the active ranking function
};

/// The learning graph `G(E, V)` produced by the generators.
///
/// Generators expand statuses forward in time, so the materialized graph is
/// a rooted tree whose overlapping root-to-leaf paths are the learning
/// paths (the paper's Figures 1 and 3). Nodes and edges live in flat
/// arenas; ids are indices.
///
/// The graph tracks an approximate memory footprint so generators can
/// enforce the caller's memory budget — reproducing, deliberately, the
/// paper's "could not store the graph in memory" Table 2 cells.
class LearningGraph {
 public:
  LearningGraph() = default;

  LearningGraph(const LearningGraph&) = delete;
  LearningGraph& operator=(const LearningGraph&) = delete;
  LearningGraph(LearningGraph&&) = default;
  LearningGraph& operator=(LearningGraph&&) = default;

  /// Creates the start node `n_1`. Must be called exactly once, first.
  NodeId AddRoot(Term term, DynamicBitset completed, DynamicBitset options);

  /// Creates a node one semester after `parent` plus the edge electing
  /// `selection` in the parent's semester. The child's path cost defaults
  /// to `parent.path_cost + edge_cost` (additive rankings).
  NodeId AddChild(NodeId parent, DynamicBitset selection,
                  DynamicBitset completed, DynamicBitset options,
                  double edge_cost = 0.0);

  /// Like AddChild, but with an explicit accumulated path cost — for
  /// rankings whose fold is not addition (see RankingFunction::Combine).
  NodeId AddChildWithPathCost(NodeId parent, DynamicBitset selection,
                              DynamicBitset completed, DynamicBitset options,
                              double edge_cost, double path_cost);

  void MarkGoal(NodeId id) { nodes_[static_cast<size_t>(id)].is_goal = true; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  const LearningNode& node(NodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const LearningEdge& edge(EdgeId id) const {
    return edges_[static_cast<size_t>(id)];
  }

  NodeId root() const { return nodes_.empty() ? kInvalidNodeId : 0; }

  /// Ids of all nodes flagged as goals, in creation order.
  std::vector<NodeId> GoalNodes() const;

  /// Ids of all nodes with no outgoing edges (path terminals).
  std::vector<NodeId> LeafNodes() const;

  /// Approximate heap bytes held by nodes, edges, and their bitsets.
  size_t MemoryUsage() const { return memory_bytes_; }

  /// True once the fault injector simulated an allocation failure in this
  /// graph's arena (see util/fault_injection.h). Generators surface it as
  /// ResourceExhausted at their next budget check; the node materialized by
  /// the failing call is still valid, so the graph stays well-formed.
  bool allocation_failed() const { return allocation_failed_; }

 private:
  std::vector<LearningNode> nodes_;
  std::vector<LearningEdge> edges_;
  size_t memory_bytes_ = 0;
  bool allocation_failed_ = false;
};

}  // namespace coursenav

#endif  // COURSENAV_GRAPH_LEARNING_GRAPH_H_

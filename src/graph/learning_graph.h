#ifndef COURSENAV_GRAPH_LEARNING_GRAPH_H_
#define COURSENAV_GRAPH_LEARNING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "catalog/term.h"
#include "util/bitset.h"
#include "util/chunked_vector.h"

namespace coursenav {

using NodeId = int32_t;
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNodeId = -1;
inline constexpr EdgeId kInvalidEdgeId = -1;

/// One enrollment status `n_i` (Section 2): the semester `s_i`, the courses
/// completed by then `X_i`, and the course options `Y_i` available in `s_i`.
/// Node payloads keep their bitsets inline (array-of-structures): the
/// chunked arenas' stable-pointer contract is what lets parallel workers
/// hold `LearningNode*` across shard growth, so the sets of *materialized*
/// nodes cannot be hoisted into per-field matrices without breaking every
/// such reference. The data-oriented hot path lives one level up instead —
/// generators stage each expansion's *candidate* children in a
/// structure-of-arrays `internal::CandidateBatch` (contiguous completed /
/// selection word matrices) and run the SIMD pruning kernels there, only
/// copying survivors into arena nodes.
struct LearningNode {
  Term term;
  DynamicBitset completed;  ///< X_i
  DynamicBitset options;    ///< Y_i
  EdgeId parent_edge = kInvalidEdgeId;
  std::vector<EdgeId> out_edges;
  /// Set when this node satisfies the exploration task's condition (for
  /// deadline-driven paths: `s_i == d`; for goal-driven: the goal holds).
  bool is_goal = false;
  /// Accumulated path cost from the root under the active ranking function
  /// (0 when no ranking is in effect).
  double path_cost = 0.0;
};

/// One transition `e(n_i, n_{i+1})`: the course selection `W_{i,i+1}`
/// elected in semester `s_i`.
struct LearningEdge {
  NodeId from = kInvalidNodeId;
  NodeId to = kInvalidNodeId;
  DynamicBitset selection;  ///< W_{i,i+1} ⊆ Y_i
  double cost = 0.0;        ///< edge cost under the active ranking function
};

/// The learning graph `G(E, V)` produced by the generators.
///
/// Generators expand statuses forward in time, so the materialized graph is
/// a rooted tree whose overlapping root-to-leaf paths are the learning
/// paths (the paper's Figures 1 and 3).
///
/// Nodes and edges live in chunk-allocated arenas: growth never relocates
/// an element, so references returned by `node()` / `edge()` stay valid for
/// the graph's lifetime (generators hold a parent reference across child
/// insertions instead of snapshot-copying its bitsets).
///
/// A graph has one arena *shard* by default. The parallel frontier engine
/// (`src/exec/`) configures one shard per worker: each worker appends nodes
/// and edges only to its own shard, so the hot path needs no locks or
/// atomics. Ids encode `(shard, local index)`; after a parallel run,
/// `Canonicalize()` renumbers the merged shards into exactly the id order a
/// serial run produces, making parallel output byte-identical to serial.
///
/// Thread-safety contract for multi-shard graphs: concurrent `AddChildTo`
/// calls must target distinct shards; a node may be read and mutated
/// (out_edges, is_goal) only by the worker that currently owns it via the
/// frontier (ownership transfer through the work-stealing deque provides
/// the happens-before edge); aggregate accessors (`num_nodes`,
/// `MemoryUsage`, traversals) are safe only once the workers have joined.
/// Cross-thread node access must go through the stable `LearningNode*`
/// carried by the frontier item, never through `node(id)` (the owning
/// shard's chunk table may be growing).
///
/// The graph tracks an approximate memory footprint so generators can
/// enforce the caller's memory budget — reproducing, deliberately, the
/// paper's "could not store the graph in memory" Table 2 cells.
class LearningGraph {
 public:
  /// Shard-id bit layout of NodeId/EdgeId: high bits select the shard,
  /// low bits the index within it.
  static constexpr int kShardShift = 27;
  static constexpr int kMaxShards = 16;
  static constexpr int32_t kLocalMask = (int32_t{1} << kShardShift) - 1;
  /// Once a shard holds this many nodes its `allocation_failed` flag trips,
  /// surfacing as ResourceExhausted before local indices can overflow the
  /// id encoding.
  static constexpr int32_t kShardSoftCapacity = kLocalMask - 4096;

  LearningGraph() : shards_(1) {}

  LearningGraph(const LearningGraph&) = delete;
  LearningGraph& operator=(const LearningGraph&) = delete;
  LearningGraph(LearningGraph&&) = default;
  LearningGraph& operator=(LearningGraph&&) = default;

  /// Splits the arenas into `num_shards` (1..kMaxShards). Must be called
  /// before any node exists; the parallel engine allocates one shard per
  /// worker.
  void ConfigureShards(int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Creates the start node `n_1` in shard 0. Must be called exactly once,
  /// first.
  NodeId AddRoot(Term term, DynamicBitset completed, DynamicBitset options);

  /// Creates a node one semester after `parent` plus the edge electing
  /// `selection` in the parent's semester. The child's path cost defaults
  /// to `parent.path_cost + edge_cost` (additive rankings).
  NodeId AddChild(NodeId parent, DynamicBitset selection,
                  DynamicBitset completed, DynamicBitset options,
                  double edge_cost = 0.0);

  /// Like AddChild, but with an explicit accumulated path cost — for
  /// rankings whose fold is not addition (see RankingFunction::Combine).
  NodeId AddChildWithPathCost(NodeId parent, DynamicBitset selection,
                              DynamicBitset completed, DynamicBitset options,
                              double edge_cost, double path_cost);

  /// A freshly created child: its id plus a stable pointer the creating
  /// worker hands to the frontier (cross-thread reads go through the
  /// pointer, never through `node(id)`).
  struct CreatedChild {
    NodeId id = kInvalidNodeId;
    LearningNode* node = nullptr;
  };

  /// Parallel-engine variant of AddChild: materializes the child and its
  /// inbound edge in `shard`, linking it under `*parent` (which the caller
  /// must own exclusively; `parent_id` is its id). Only the worker that
  /// owns `shard` may call this for that shard.
  CreatedChild AddChildTo(int shard, NodeId parent_id, LearningNode* parent,
                          DynamicBitset selection, DynamicBitset completed,
                          DynamicBitset options, double edge_cost,
                          double path_cost);

  void MarkGoal(NodeId id) { node_mut(id).is_goal = true; }

  /// Stable mutable pointer to a node, for seeding the parallel frontier
  /// (typically the root). Subject to the thread-safety contract above:
  /// the caller must hold exclusive ownership of the node.
  LearningNode* stable_node_ptr(NodeId id) { return &node_mut(id); }

  int64_t num_nodes() const {
    int64_t n = 0;
    for (const Shard& shard : shards_) {
      n += static_cast<int64_t>(shard.nodes.size());
    }
    return n;
  }
  int64_t num_edges() const {
    int64_t n = 0;
    for (const Shard& shard : shards_) {
      n += static_cast<int64_t>(shard.edges.size());
    }
    return n;
  }

  const LearningNode& node(NodeId id) const {
    const Shard& shard = shards_[static_cast<size_t>(id >> kShardShift)];
    return shard.nodes[static_cast<size_t>(id & kLocalMask)];
  }
  const LearningEdge& edge(EdgeId id) const {
    const Shard& shard = shards_[static_cast<size_t>(id >> kShardShift)];
    return shard.edges[static_cast<size_t>(id & kLocalMask)];
  }

  NodeId root() const {
    return shards_[0].nodes.empty() ? kInvalidNodeId : 0;
  }

  /// Ids of all nodes flagged as goals, in id order (for canonical graphs,
  /// creation order).
  std::vector<NodeId> GoalNodes() const;

  /// Ids of all nodes with no outgoing edges (path terminals).
  std::vector<NodeId> LeafNodes() const;

  /// Approximate heap bytes held by nodes, edges, and their bitsets, summed
  /// over all shards. Only safe once workers have joined.
  size_t MemoryUsage() const {
    size_t total = 0;
    for (const Shard& shard : shards_) total += shard.memory_bytes;
    return total;
  }

  /// Per-shard memory footprint — safe for the owning worker to poll while
  /// the run is live (feeds the parallel engine's atomic budget counters).
  size_t ShardMemoryUsage(int shard) const {
    return shards_[static_cast<size_t>(shard)].memory_bytes;
  }

  /// True once the fault injector simulated an allocation failure in this
  /// graph's arenas (see util/fault_injection.h), or a shard reached its id
  /// soft capacity. Generators surface it as ResourceExhausted at their
  /// next budget check; the node materialized by the failing call is still
  /// valid, so the graph stays well-formed. Only safe once workers have
  /// joined (workers poll their own shard via ShardAllocationFailed).
  bool allocation_failed() const {
    for (const Shard& shard : shards_) {
      if (shard.allocation_failed) return true;
    }
    return false;
  }

  /// Shard-local view of the allocation-failure flag (each worker only ever
  /// allocates into — and therefore only ever trips — its own shard).
  bool ShardAllocationFailed(int shard) const {
    return shards_[static_cast<size_t>(shard)].allocation_failed;
  }

  /// Structural validator (debug builds): aborts via CN_CHECK when the
  /// graph is corrupt. Verifies shard/id encoding consistency (every
  /// parent/child/out-edge id decodes to a live arena slot), the
  /// edges↔non-root-nodes bijection, strict term advance along every edge
  /// (which proves the parent links acyclic), selection/completed-set
  /// algebra (`child.X = parent.X ∪ W`, `W ⊆ parent.Y`), uniform bitset
  /// universes, and — for canonicalized single-shard graphs — that the
  /// contiguous numbering orders every parent before its children.
  ///
  /// O(nodes + edges); call sites gate on CN_DCHECK_IS_ON() (Canonicalize
  /// self-checks its output under the `dcheck` preset). Always compiled,
  /// so tests can invoke it directly in any build.
  void CheckInvariants() const;

  /// Renumbers the graph into the node/edge id order a serial run produces
  /// (the generators' LIFO expansion order over each node's out-edges) and
  /// merges all shards into one arena. After a *complete* parallel run the
  /// result is byte-identical to the serial graph regardless of worker
  /// count; for budget-truncated runs it is a well-formed renumbering of
  /// whatever was materialized. No-op for single-shard graphs (a serial run
  /// is already canonical).
  void Canonicalize();

  /// Deep copy. The graph class is deliberately move-only (accidental
  /// copies of million-node arenas are bugs), so the one legitimate
  /// copy — the epoch-keyed result cache handing a cached canonical graph
  /// to a new request — is explicit. Preserves shard structure, ids,
  /// memory accounting, and the allocation-failure flags, so the clone is
  /// byte-identical to the original under traversal, export, and
  /// CheckInvariants.
  LearningGraph Clone() const;

 private:
  /// Test-only backdoor (tests/lint_test.cc): hand-corrupts arenas to
  /// prove CheckInvariants rejects structurally invalid graphs.
  friend class LearningGraphTestPeer;

  struct Shard {
    ChunkedVector<LearningNode> nodes;
    ChunkedVector<LearningEdge> edges;
    size_t memory_bytes = 0;
    bool allocation_failed = false;
  };

  LearningNode& node_mut(NodeId id) {
    Shard& shard = shards_[static_cast<size_t>(id >> kShardShift)];
    return shard.nodes[static_cast<size_t>(id & kLocalMask)];
  }
  LearningEdge& edge_mut(EdgeId id) {
    Shard& shard = shards_[static_cast<size_t>(id >> kShardShift)];
    return shard.edges[static_cast<size_t>(id & kLocalMask)];
  }

  std::vector<Shard> shards_;
};

}  // namespace coursenav

#endif  // COURSENAV_GRAPH_LEARNING_GRAPH_H_

#include "graph/path.h"

#include <algorithm>

#include "util/string_util.h"

namespace coursenav {

LearningPath LearningPath::FromGraph(const LearningGraph& graph, NodeId leaf) {
  // Walk parents to the root, then reverse.
  std::vector<EdgeId> chain;
  NodeId cursor = leaf;
  while (graph.node(cursor).parent_edge != kInvalidEdgeId) {
    EdgeId edge_id = graph.node(cursor).parent_edge;
    chain.push_back(edge_id);
    cursor = graph.edge(edge_id).from;
  }
  std::reverse(chain.begin(), chain.end());

  const LearningNode& root = graph.node(cursor);
  LearningPath path(root.term, root.completed);
  for (EdgeId edge_id : chain) {
    const LearningEdge& edge = graph.edge(edge_id);
    path.AppendStep(graph.node(edge.from).term, edge.selection);
  }
  path.set_cost(graph.node(leaf).path_cost);
  return path;
}

void LearningPath::AppendStep(Term term, DynamicBitset selection) {
  steps_.push_back({term, std::move(selection)});
}

DynamicBitset LearningPath::FinalCompleted() const {
  DynamicBitset completed = start_completed_;
  for (const PathStep& step : steps_) completed |= step.selection;
  return completed;
}

Status LearningPath::Validate(const Catalog& catalog,
                              const OfferingSchedule& schedule) const {
  DynamicBitset completed = start_completed_;
  Term expected = start_term_;
  for (const PathStep& step : steps_) {
    if (step.term != expected) {
      return Status::FailedPrecondition(
          "path step at " + step.term.ToString() + " expected " +
          expected.ToString());
    }
    Status violation = Status::OK();
    step.selection.ForEach([&](int id) {
      if (!violation.ok()) return;
      CourseId course = static_cast<CourseId>(id);
      if (completed.test(course)) {
        violation = Status::FailedPrecondition(
            "course '" + catalog.course(course).code + "' re-elected in " +
            step.term.ToString());
      } else if (!schedule.IsOffered(course, step.term)) {
        violation = Status::FailedPrecondition(
            "course '" + catalog.course(course).code + "' not offered in " +
            step.term.ToString());
      } else if (!catalog.compiled_prereq(course).Eval(completed)) {
        violation = Status::FailedPrecondition(
            "prerequisite of '" + catalog.course(course).code +
            "' unsatisfied in " + step.term.ToString());
      }
    });
    if (!violation.ok()) return violation;
    completed |= step.selection;
    expected = expected.Next();
  }
  return Status::OK();
}

std::string LearningPath::ToString(const Catalog& catalog) const {
  std::string out;
  for (const PathStep& step : steps_) {
    out += step.term.ToString();
    out += ": ";
    out += catalog.CourseSetToString(step.selection);
    out += "\n";
  }
  return out;
}

bool operator==(const LearningPath& a, const LearningPath& b) {
  if (a.start_term_ != b.start_term_ ||
      !(a.start_completed_ == b.start_completed_) ||
      a.steps_.size() != b.steps_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.steps_.size(); ++i) {
    if (a.steps_[i].term != b.steps_[i].term ||
        !(a.steps_[i].selection == b.steps_[i].selection)) {
      return false;
    }
  }
  return true;
}

}  // namespace coursenav

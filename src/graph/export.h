#ifndef COURSENAV_GRAPH_EXPORT_H_
#define COURSENAV_GRAPH_EXPORT_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "graph/learning_graph.h"
#include "graph/path.h"
#include "util/json.h"

namespace coursenav {

/// Back end of the paper's Learning Path Visualizer (Figure 2): renders
/// learning graphs and paths into Graphviz DOT and JSON for a front end.

/// Graphviz DOT rendering. Nodes are labelled with the semester and the
/// completed set; edges with the elected selection. Goal nodes are drawn
/// with a double border.
std::string LearningGraphToDot(const LearningGraph& graph,
                               const Catalog& catalog);

/// JSON document with "nodes" and "edges" arrays.
JsonValue LearningGraphToJson(const LearningGraph& graph,
                              const Catalog& catalog);

/// JSON rendering of a single path: start term, start set, steps, cost.
JsonValue LearningPathToJson(const LearningPath& path, const Catalog& catalog);

/// JSON array of paths (a ranked result set).
JsonValue LearningPathsToJson(const std::vector<LearningPath>& paths,
                              const Catalog& catalog);

}  // namespace coursenav

#endif  // COURSENAV_GRAPH_EXPORT_H_

#include "graph/analytics.h"

#include <algorithm>

#include "util/string_util.h"

namespace coursenav {

GraphAnalytics AnalyzeLearningGraph(const LearningGraph& graph,
                                    const Catalog& catalog) {
  GraphAnalytics analytics;
  analytics.course_path_counts.assign(static_cast<size_t>(catalog.size()), 0);
  if (graph.num_nodes() == 0) return analytics;

  // Bottom-up goal-leaf counts. Children always have larger ids than their
  // parent (nodes are appended during expansion), so one reverse sweep
  // computes every subtree count.
  std::vector<uint64_t> goal_leaves(static_cast<size_t>(graph.num_nodes()),
                                    0);
  for (NodeId id = static_cast<NodeId>(graph.num_nodes()) - 1; id >= 0;
       --id) {
    const LearningNode& node = graph.node(id);
    if (node.out_edges.empty()) {
      goal_leaves[static_cast<size_t>(id)] = node.is_goal ? 1 : 0;
    } else {
      uint64_t total = 0;
      for (EdgeId edge_id : node.out_edges) {
        total += goal_leaves[static_cast<size_t>(graph.edge(edge_id).to)];
      }
      goal_leaves[static_cast<size_t>(id)] = total;
    }
  }
  analytics.goal_path_count = goal_leaves[0];

  // Edge pass: every goal path through edge (u -> v) elects W(u,v) in
  // u's semester; a path elects a course at most once, so summing per-edge
  // subtree counts gives exact per-course path counts.
  std::map<int, uint64_t> load_weighted;  // term -> sum of |W| over paths
  std::map<int, uint64_t> paths_at_term;  // term -> paths making a choice
  for (EdgeId edge_id = 0; edge_id < graph.num_edges(); ++edge_id) {
    const LearningEdge& edge = graph.edge(edge_id);
    uint64_t through = goal_leaves[static_cast<size_t>(edge.to)];
    if (through == 0) continue;
    edge.selection.ForEach([&](int course) {
      analytics.course_path_counts[static_cast<size_t>(course)] += through;
    });
    int term_index = graph.node(edge.from).term.index();
    load_weighted[term_index] +=
        through * static_cast<uint64_t>(edge.selection.count());
    paths_at_term[term_index] += through;
  }
  for (const auto& [term_index, paths] : paths_at_term) {
    analytics.average_load_by_term[term_index] =
        static_cast<double>(load_weighted[term_index]) /
        static_cast<double>(paths);
  }

  // Length histogram over goal leaves.
  Term root_term = graph.node(graph.root()).term;
  for (NodeId leaf : graph.GoalNodes()) {
    ++analytics.length_histogram[graph.node(leaf).term - root_term];
  }
  return analytics;
}

LearningGraph ExtractGoalSubgraph(const LearningGraph& graph) {
  LearningGraph out;
  if (graph.num_nodes() == 0) return out;

  // Mark every node with a goal node in its subtree (children follow
  // parents in id order, so one reverse sweep suffices).
  std::vector<bool> keep(static_cast<size_t>(graph.num_nodes()), false);
  for (NodeId id = static_cast<NodeId>(graph.num_nodes()) - 1; id >= 0;
       --id) {
    const LearningNode& node = graph.node(id);
    bool keep_this = node.is_goal;
    for (EdgeId edge_id : node.out_edges) {
      if (keep[static_cast<size_t>(graph.edge(edge_id).to)]) {
        keep_this = true;
      }
    }
    keep[static_cast<size_t>(id)] = keep_this;
  }
  if (!keep[0]) return out;

  // Rebuild top-down; parents always precede children in id order.
  std::vector<NodeId> remap(static_cast<size_t>(graph.num_nodes()),
                            kInvalidNodeId);
  const LearningNode& root = graph.node(graph.root());
  remap[0] = out.AddRoot(root.term, root.completed, root.options);
  if (root.is_goal) out.MarkGoal(remap[0]);
  for (NodeId id = 1; id < graph.num_nodes(); ++id) {
    if (!keep[static_cast<size_t>(id)]) continue;
    const LearningNode& node = graph.node(id);
    const LearningEdge& edge = graph.edge(node.parent_edge);
    NodeId parent = remap[static_cast<size_t>(edge.from)];
    NodeId copy = out.AddChildWithPathCost(parent, edge.selection,
                                           node.completed, node.options,
                                           edge.cost, node.path_cost);
    remap[static_cast<size_t>(id)] = copy;
    if (node.is_goal) out.MarkGoal(copy);
  }
  return out;
}

std::vector<CourseId> GraphAnalytics::CoursesByCriticality() const {
  std::vector<CourseId> order;
  for (size_t i = 0; i < course_path_counts.size(); ++i) {
    order.push_back(static_cast<CourseId>(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [this](CourseId a, CourseId b) {
                     return course_path_counts[static_cast<size_t>(a)] >
                            course_path_counts[static_cast<size_t>(b)];
                   });
  return order;
}

double GraphAnalytics::CriticalityOf(CourseId course) const {
  if (goal_path_count == 0) return 0.0;
  return static_cast<double>(
             course_path_counts[static_cast<size_t>(course)]) /
         static_cast<double>(goal_path_count);
}

std::string GraphAnalytics::ToString(const Catalog& catalog,
                                     int top_courses) const {
  std::string out =
      StrFormat("goal paths: %llu\n",
                static_cast<unsigned long long>(goal_path_count));
  out += "length histogram (semesters: paths):";
  for (const auto& [length, count] : length_histogram) {
    out += StrFormat(" %d:%llu", length,
                     static_cast<unsigned long long>(count));
  }
  out += "\naverage load by term:";
  for (const auto& [term_index, load] : average_load_by_term) {
    out += StrFormat(" %s:%.2f",
                     Term::FromIndex(term_index).ToShortString().c_str(),
                     load);
  }
  out += "\nmost critical courses:\n";
  int shown = 0;
  for (CourseId course : CoursesByCriticality()) {
    if (shown >= top_courses) break;
    if (course_path_counts[static_cast<size_t>(course)] == 0) break;
    out += StrFormat("  %-10s %5.1f%%\n",
                     catalog.course(course).code.c_str(),
                     100.0 * CriticalityOf(course));
    ++shown;
  }
  return out;
}

}  // namespace coursenav

#include "graph/export.h"

#include "util/string_util.h"

namespace coursenav {

namespace {

std::vector<std::string> CourseCodes(const DynamicBitset& set,
                                     const Catalog& catalog) {
  std::vector<std::string> codes;
  set.ForEach([&](int id) {
    codes.push_back(catalog.course(static_cast<CourseId>(id)).code);
  });
  return codes;
}

JsonValue CodesArray(const DynamicBitset& set, const Catalog& catalog) {
  JsonValue::Array out;
  for (std::string& code : CourseCodes(set, catalog)) {
    out.emplace_back(std::move(code));
  }
  return JsonValue(std::move(out));
}

}  // namespace

std::string LearningGraphToDot(const LearningGraph& graph,
                               const Catalog& catalog) {
  std::string out = "digraph learning_graph {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const LearningNode& node = graph.node(id);
    out += StrFormat("  n%d [label=\"%s\\nX=%s\"%s];\n", id,
                     node.term.ToString().c_str(),
                     catalog.CourseSetToString(node.completed).c_str(),
                     node.is_goal ? ", peripheries=2" : "");
  }
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const LearningEdge& edge = graph.edge(id);
    out += StrFormat("  n%d -> n%d [label=\"%s\"];\n", edge.from, edge.to,
                     catalog.CourseSetToString(edge.selection).c_str());
  }
  out += "}\n";
  return out;
}

JsonValue LearningGraphToJson(const LearningGraph& graph,
                              const Catalog& catalog) {
  JsonValue::Array nodes;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const LearningNode& node = graph.node(id);
    JsonValue::Object obj;
    obj["id"] = JsonValue(static_cast<int64_t>(id));
    obj["term"] = JsonValue(node.term.ToString());
    obj["completed"] = CodesArray(node.completed, catalog);
    obj["options"] = CodesArray(node.options, catalog);
    obj["is_goal"] = JsonValue(node.is_goal);
    nodes.emplace_back(std::move(obj));
  }
  JsonValue::Array edges;
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const LearningEdge& edge = graph.edge(id);
    JsonValue::Object obj;
    obj["from"] = JsonValue(static_cast<int64_t>(edge.from));
    obj["to"] = JsonValue(static_cast<int64_t>(edge.to));
    obj["selection"] = CodesArray(edge.selection, catalog);
    edges.emplace_back(std::move(obj));
  }
  JsonValue::Object doc;
  doc["nodes"] = JsonValue(std::move(nodes));
  doc["edges"] = JsonValue(std::move(edges));
  return JsonValue(std::move(doc));
}

JsonValue LearningPathToJson(const LearningPath& path,
                             const Catalog& catalog) {
  JsonValue::Object doc;
  doc["start_term"] = JsonValue(path.start_term().ToString());
  doc["start_completed"] = CodesArray(path.start_completed(), catalog);
  doc["cost"] = JsonValue(path.cost());
  JsonValue::Array steps;
  for (const PathStep& step : path.steps()) {
    JsonValue::Object obj;
    obj["term"] = JsonValue(step.term.ToString());
    obj["selection"] = CodesArray(step.selection, catalog);
    steps.emplace_back(std::move(obj));
  }
  doc["steps"] = JsonValue(std::move(steps));
  return JsonValue(std::move(doc));
}

JsonValue LearningPathsToJson(const std::vector<LearningPath>& paths,
                              const Catalog& catalog) {
  JsonValue::Array out;
  for (const LearningPath& path : paths) {
    out.push_back(LearningPathToJson(path, catalog));
  }
  return JsonValue(std::move(out));
}

}  // namespace coursenav

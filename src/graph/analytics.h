#ifndef COURSENAV_GRAPH_ANALYTICS_H_
#define COURSENAV_GRAPH_ANALYTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/term.h"
#include "graph/learning_graph.h"

namespace coursenav {

/// Aggregate insight over a generated learning graph — the kind of summary
/// a front end shows when the raw path set is too large to browse (the
/// paper's motivation for ranking; analytics is the complementary
/// aggregate view).
///
/// All statistics are computed over *goal paths* (root-to-goal-leaf), via
/// one bottom-up pass that counts goal leaves under every node; no path is
/// ever materialized.
struct GraphAnalytics {
  /// Total goal paths in the graph.
  uint64_t goal_path_count = 0;

  /// goal paths electing each course somewhere (index = course id). A
  /// course with share ~1.0 is unavoidable; ~0.0 is dead weight.
  std::vector<uint64_t> course_path_counts;

  /// Histogram of goal-path lengths in semesters.
  std::map<int, uint64_t> length_histogram;

  /// Per-term average elected load over goal paths (term index ->
  /// average selection size).
  std::map<int, double> average_load_by_term;

  /// Courses sorted by descending criticality (share of goal paths).
  /// Ties broken by course id.
  std::vector<CourseId> CoursesByCriticality() const;

  /// Share of goal paths electing `course` (0 when there are no paths).
  double CriticalityOf(CourseId course) const;

  /// Multi-line human-readable report.
  std::string ToString(const Catalog& catalog, int top_courses = 10) const;
};

/// Analyzes `graph` (as produced by the deadline-driven or goal-driven
/// generator). Runs in O(nodes + edges).
GraphAnalytics AnalyzeLearningGraph(const LearningGraph& graph,
                                    const Catalog& catalog);

/// Extracts the subgraph of `graph` containing exactly the nodes and edges
/// on some root-to-goal path — what the Learning Path Visualizer should
/// draw after a goal-driven run (dead-end branches stripped). Preserves
/// relative order, costs, and goal marks. Returns an empty graph when
/// there is no goal node.
LearningGraph ExtractGoalSubgraph(const LearningGraph& graph);

}  // namespace coursenav

#endif  // COURSENAV_GRAPH_ANALYTICS_H_

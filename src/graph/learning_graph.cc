#include "graph/learning_graph.h"

#include <cassert>

#include "util/fault_injection.h"

namespace coursenav {

namespace {

size_t NodeFootprint(const LearningNode& node) {
  return sizeof(LearningNode) + node.completed.MemoryUsage() +
         node.options.MemoryUsage() +
         node.out_edges.capacity() * sizeof(EdgeId);
}

size_t EdgeFootprint(const LearningEdge& edge) {
  return sizeof(LearningEdge) + edge.selection.MemoryUsage();
}

}  // namespace

NodeId LearningGraph::AddRoot(Term term, DynamicBitset completed,
                              DynamicBitset options) {
  assert(nodes_.empty());
  LearningNode node;
  node.term = term;
  node.completed = std::move(completed);
  node.options = std::move(options);
  memory_bytes_ += NodeFootprint(node);
  nodes_.push_back(std::move(node));
  return 0;
}

NodeId LearningGraph::AddChild(NodeId parent, DynamicBitset selection,
                               DynamicBitset completed, DynamicBitset options,
                               double edge_cost) {
  double path_cost =
      nodes_[static_cast<size_t>(parent)].path_cost + edge_cost;
  return AddChildWithPathCost(parent, std::move(selection),
                              std::move(completed), std::move(options),
                              edge_cost, path_cost);
}

NodeId LearningGraph::AddChildWithPathCost(NodeId parent,
                                           DynamicBitset selection,
                                           DynamicBitset completed,
                                           DynamicBitset options,
                                           double edge_cost,
                                           double path_cost) {
  assert(parent >= 0 && parent < static_cast<NodeId>(nodes_.size()));
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr && injector->ShouldInject(kFaultSiteGraphAlloc)) {
    allocation_failed_ = true;
  }

  NodeId child_id = static_cast<NodeId>(nodes_.size());
  EdgeId edge_id = static_cast<EdgeId>(edges_.size());

  LearningEdge edge;
  edge.from = parent;
  edge.to = child_id;
  edge.selection = std::move(selection);
  edge.cost = edge_cost;
  memory_bytes_ += EdgeFootprint(edge);
  edges_.push_back(std::move(edge));

  LearningNode child;
  child.term = nodes_[static_cast<size_t>(parent)].term.Next();
  child.completed = std::move(completed);
  child.options = std::move(options);
  child.parent_edge = edge_id;
  child.path_cost = path_cost;
  memory_bytes_ += NodeFootprint(child);
  nodes_.push_back(std::move(child));

  nodes_[static_cast<size_t>(parent)].out_edges.push_back(edge_id);
  return child_id;
}

std::vector<NodeId> LearningGraph::GoalNodes() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_goal) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> LearningGraph::LeafNodes() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].out_edges.empty()) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

}  // namespace coursenav

// coursenav:deterministic — canonical numbering replays serial LIFO order.
#include "graph/learning_graph.h"

#include <cassert>
#include <utility>

#include "util/check.h"
#include "util/fault_injection.h"

namespace coursenav {

namespace {

size_t NodeFootprint(const LearningNode& node) {
  return sizeof(LearningNode) + node.completed.MemoryUsage() +
         node.options.MemoryUsage() +
         node.out_edges.capacity() * sizeof(EdgeId);
}

size_t EdgeFootprint(const LearningEdge& edge) {
  return sizeof(LearningEdge) + edge.selection.MemoryUsage();
}

}  // namespace

void LearningGraph::ConfigureShards(int num_shards) {
  assert(num_shards >= 1 && num_shards <= kMaxShards);
  assert(shards_[0].nodes.empty() && "shards must be configured first");
  shards_.clear();
  shards_.resize(static_cast<size_t>(num_shards));
}

NodeId LearningGraph::AddRoot(Term term, DynamicBitset completed,
                              DynamicBitset options) {
  assert(shards_[0].nodes.empty());
  LearningNode node;
  node.term = term;
  node.completed = std::move(completed);
  node.options = std::move(options);
  shards_[0].memory_bytes += NodeFootprint(node);
  shards_[0].nodes.push_back(std::move(node));
  return 0;
}

NodeId LearningGraph::AddChild(NodeId parent, DynamicBitset selection,
                               DynamicBitset completed, DynamicBitset options,
                               double edge_cost) {
  double path_cost = node(parent).path_cost + edge_cost;
  return AddChildWithPathCost(parent, std::move(selection),
                              std::move(completed), std::move(options),
                              edge_cost, path_cost);
}

NodeId LearningGraph::AddChildWithPathCost(NodeId parent,
                                           DynamicBitset selection,
                                           DynamicBitset completed,
                                           DynamicBitset options,
                                           double edge_cost,
                                           double path_cost) {
  return AddChildTo(/*shard=*/parent >> kShardShift, parent,
                    &node_mut(parent), selection, std::move(completed),
                    std::move(options), edge_cost, path_cost)
      .id;
}

LearningGraph::CreatedChild LearningGraph::AddChildTo(
    int shard_index, NodeId parent_id, LearningNode* parent,
    DynamicBitset selection, DynamicBitset completed, DynamicBitset options,
    double edge_cost, double path_cost) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr && injector->ShouldInject(kFaultSiteGraphAlloc)) {
    shard.allocation_failed = true;
  }
  if (static_cast<int32_t>(shard.nodes.size()) >= kShardSoftCapacity) {
    // Id space of this shard is nearly exhausted; surface as an allocation
    // failure so the next budget check stops the run cleanly.
    shard.allocation_failed = true;
  }

  NodeId child_id = static_cast<NodeId>(shard_index) << kShardShift |
                    static_cast<NodeId>(shard.nodes.size());
  EdgeId edge_id = static_cast<EdgeId>(shard_index) << kShardShift |
                   static_cast<EdgeId>(shard.edges.size());

  LearningEdge edge;
  edge.from = parent_id;
  edge.to = child_id;
  edge.selection = std::move(selection);
  edge.cost = edge_cost;
  shard.memory_bytes += EdgeFootprint(edge);
  shard.edges.push_back(std::move(edge));

  LearningNode child;
  child.term = parent->term.Next();
  child.completed = std::move(completed);
  child.options = std::move(options);
  child.parent_edge = edge_id;
  child.path_cost = path_cost;
  shard.memory_bytes += NodeFootprint(child);
  LearningNode& stored = shard.nodes.push_back(std::move(child));

  parent->out_edges.push_back(edge_id);
  return CreatedChild{child_id, &stored};
}

std::vector<NodeId> LearningGraph::GoalNodes() const {
  std::vector<NodeId> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      if (shard.nodes[i].is_goal) {
        out.push_back(static_cast<NodeId>(s) << kShardShift |
                      static_cast<NodeId>(i));
      }
    }
  }
  return out;
}

std::vector<NodeId> LearningGraph::LeafNodes() const {
  std::vector<NodeId> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      if (shard.nodes[i].out_edges.empty()) {
        out.push_back(static_cast<NodeId>(s) << kShardShift |
                      static_cast<NodeId>(i));
      }
    }
  }
  return out;
}

void LearningGraph::CheckInvariants() const {
  CN_CHECK_GE(num_shards(), 1);
  CN_CHECK_LE(num_shards(), kMaxShards);
  const int64_t total_nodes = num_nodes();
  if (total_nodes == 0) {
    CN_CHECK_EQ(num_edges(), 0) << "edges exist in an empty graph";
    return;
  }
  CN_CHECK(!shards_[0].nodes.empty())
      << "graph has nodes but shard 0 holds no root";
  const LearningNode& root_node = node(0);
  CN_CHECK_EQ(root_node.parent_edge, kInvalidEdgeId)
      << "the root must not have a parent edge";
  // Node+edge are materialized pairwise by AddChildTo, so edges biject
  // with non-root nodes even in a budget-truncated run.
  CN_CHECK_EQ(num_edges(), total_nodes - 1);
  const int universe = root_node.completed.universe_size();

  auto valid_node = [&](NodeId id) {
    if (id < 0) return false;
    const size_t shard = static_cast<size_t>(id >> kShardShift);
    const size_t local = static_cast<size_t>(id & kLocalMask);
    return shard < shards_.size() && local < shards_[shard].nodes.size();
  };
  auto valid_edge = [&](EdgeId id) {
    if (id < 0) return false;
    const size_t shard = static_cast<size_t>(id >> kShardShift);
    const size_t local = static_cast<size_t>(id & kLocalMask);
    return shard < shards_.size() && local < shards_[shard].edges.size();
  };

  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    CN_CHECK_LE(static_cast<int64_t>(shard.nodes.size()),
                int64_t{kLocalMask} + 1)
        << "shard " << s << " overflows the local-id encoding";
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      const NodeId id = static_cast<NodeId>(s) << kShardShift |
                        static_cast<NodeId>(i);
      const LearningNode& current = shard.nodes[i];
      CN_CHECK_EQ(current.completed.universe_size(), universe)
          << "node " << id << " completed-set universe mismatch";
      CN_CHECK_EQ(current.options.universe_size(), universe)
          << "node " << id << " option-set universe mismatch";
      if (id != 0) {
        CN_CHECK(valid_edge(current.parent_edge))
            << "node " << id << " parent edge " << current.parent_edge
            << " does not decode to a live arena slot";
        const LearningEdge& inbound = edge(current.parent_edge);
        CN_CHECK_EQ(inbound.to, id)
            << "parent edge of node " << id << " targets another node";
        CN_CHECK(valid_node(inbound.from))
            << "parent edge of node " << id << " has an invalid source";
        const LearningNode& parent = node(inbound.from);
        // Terms advance exactly one semester along every edge, which also
        // proves the parent links acyclic (they strictly decrease).
        CN_CHECK_EQ(current.term.index(), parent.term.index() + 1)
            << "edge " << current.parent_edge
            << " does not advance time by one semester (parent-link cycle?)";
        CN_CHECK(inbound.selection.IsSubsetOf(parent.options))
            << "selection of edge " << current.parent_edge
            << " elects courses outside the parent's options";
        CN_CHECK((parent.completed | inbound.selection) == current.completed)
            << "node " << id
            << " completed set is not parent.completed ∪ selection";
      }
      for (EdgeId out : current.out_edges) {
        CN_CHECK(valid_edge(out))
            << "out edge " << out << " of node " << id
            << " does not decode to a live arena slot";
        CN_CHECK_EQ(edge(out).from, id)
            << "out edge " << out << " does not originate at node " << id;
        CN_CHECK(valid_node(edge(out).to));
        CN_CHECK_EQ(node(edge(out).to).parent_edge, out)
            << "edge " << out << " is not the parent edge of its target";
      }
    }
  }

  if (shards_.size() == 1) {
    // Canonical (serial-order) numbering: contiguous ids with every parent
    // numbered before each of its children.
    for (size_t i = 0; i < shards_[0].edges.size(); ++i) {
      const LearningEdge& current = shards_[0].edges[i];
      CN_CHECK_LT(current.from, current.to)
          << "canonical numbering must order parents before children";
    }
  }
}

LearningGraph LearningGraph::Clone() const {
  LearningGraph out;
  out.shards_.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& src = shards_[s];
    Shard& dst = out.shards_[s];
    for (size_t i = 0; i < src.nodes.size(); ++i) {
      dst.nodes.push_back(src.nodes[i]);
    }
    for (size_t i = 0; i < src.edges.size(); ++i) {
      dst.edges.push_back(src.edges[i]);
    }
    dst.memory_bytes = src.memory_bytes;
    dst.allocation_failed = src.allocation_failed;
  }
  return out;
}

void LearningGraph::Canonicalize() {
  if (shards_.size() == 1) {
    // Serial runs are canonical already; still self-check in dcheck builds.
    if (CN_DCHECK_IS_ON()) CheckInvariants();
    return;
  }
  if (root() == kInvalidNodeId) {
    shards_.clear();
    shards_.resize(1);
    return;
  }

  LearningGraph out;

  // Replay the serial generators' numbering: ids are assigned when a node
  // is created, all children of one expansion get consecutive ids in
  // out-edge order, and the worklist is LIFO — the next node expanded is
  // the most recently created child.
  std::vector<NodeId> worklist;
  std::vector<NodeId> remap_stack;  // new ids, parallel to `worklist`
  // The replay touches every node exactly once; sizing the stacks up front
  // keeps the merge allocation-free apart from the rebuilt arenas.
  worklist.reserve(static_cast<size_t>(num_nodes()));
  remap_stack.reserve(static_cast<size_t>(num_nodes()));

  {
    LearningNode& old_root = node_mut(0);
    NodeId new_root = out.AddRoot(old_root.term, std::move(old_root.completed),
                                  std::move(old_root.options));
    if (old_root.is_goal) out.MarkGoal(new_root);
    worklist.push_back(0);
    remap_stack.push_back(new_root);
  }

  while (!worklist.empty()) {
    NodeId old_id = worklist.back();
    worklist.pop_back();
    NodeId new_id = remap_stack.back();
    remap_stack.pop_back();

    // Copy the out-edge list: appending children below mutates the arena
    // the old node lives in only via distinct elements, but keep the loop
    // simple and allocation-light.
    const std::vector<EdgeId>& out_edges = node_mut(old_id).out_edges;
    for (EdgeId old_edge_id : out_edges) {
      LearningEdge& old_edge = edge_mut(old_edge_id);
      LearningNode& old_child = node_mut(old_edge.to);
      NodeId new_child = out.AddChildWithPathCost(
          new_id, std::move(old_edge.selection), std::move(old_child.completed),
          std::move(old_child.options), old_edge.cost, old_child.path_cost);
      if (old_child.is_goal) out.MarkGoal(new_child);
      worklist.push_back(old_edge.to);
      remap_stack.push_back(new_child);
    }
  }

  *this = std::move(out);
  // The merge rebuilt every id: prove the renumbered graph well-formed
  // before anyone reads it (dcheck builds only; the sweep is O(n)).
  if (CN_DCHECK_IS_ON()) CheckInvariants();
}

}  // namespace coursenav

#include "graph/learning_graph.h"

#include <cassert>
#include <utility>

#include "util/fault_injection.h"

namespace coursenav {

namespace {

size_t NodeFootprint(const LearningNode& node) {
  return sizeof(LearningNode) + node.completed.MemoryUsage() +
         node.options.MemoryUsage() +
         node.out_edges.capacity() * sizeof(EdgeId);
}

size_t EdgeFootprint(const LearningEdge& edge) {
  return sizeof(LearningEdge) + edge.selection.MemoryUsage();
}

}  // namespace

void LearningGraph::ConfigureShards(int num_shards) {
  assert(num_shards >= 1 && num_shards <= kMaxShards);
  assert(shards_[0].nodes.empty() && "shards must be configured first");
  shards_.clear();
  shards_.resize(static_cast<size_t>(num_shards));
}

NodeId LearningGraph::AddRoot(Term term, DynamicBitset completed,
                              DynamicBitset options) {
  assert(shards_[0].nodes.empty());
  LearningNode node;
  node.term = term;
  node.completed = std::move(completed);
  node.options = std::move(options);
  shards_[0].memory_bytes += NodeFootprint(node);
  shards_[0].nodes.push_back(std::move(node));
  return 0;
}

NodeId LearningGraph::AddChild(NodeId parent, DynamicBitset selection,
                               DynamicBitset completed, DynamicBitset options,
                               double edge_cost) {
  double path_cost = node(parent).path_cost + edge_cost;
  return AddChildWithPathCost(parent, std::move(selection),
                              std::move(completed), std::move(options),
                              edge_cost, path_cost);
}

NodeId LearningGraph::AddChildWithPathCost(NodeId parent,
                                           DynamicBitset selection,
                                           DynamicBitset completed,
                                           DynamicBitset options,
                                           double edge_cost,
                                           double path_cost) {
  return AddChildTo(/*shard=*/parent >> kShardShift, parent,
                    &node_mut(parent), selection, std::move(completed),
                    std::move(options), edge_cost, path_cost)
      .id;
}

LearningGraph::CreatedChild LearningGraph::AddChildTo(
    int shard_index, NodeId parent_id, LearningNode* parent,
    DynamicBitset selection, DynamicBitset completed, DynamicBitset options,
    double edge_cost, double path_cost) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr && injector->ShouldInject(kFaultSiteGraphAlloc)) {
    shard.allocation_failed = true;
  }
  if (static_cast<int32_t>(shard.nodes.size()) >= kShardSoftCapacity) {
    // Id space of this shard is nearly exhausted; surface as an allocation
    // failure so the next budget check stops the run cleanly.
    shard.allocation_failed = true;
  }

  NodeId child_id = static_cast<NodeId>(shard_index) << kShardShift |
                    static_cast<NodeId>(shard.nodes.size());
  EdgeId edge_id = static_cast<EdgeId>(shard_index) << kShardShift |
                   static_cast<EdgeId>(shard.edges.size());

  LearningEdge edge;
  edge.from = parent_id;
  edge.to = child_id;
  edge.selection = std::move(selection);
  edge.cost = edge_cost;
  shard.memory_bytes += EdgeFootprint(edge);
  shard.edges.push_back(std::move(edge));

  LearningNode child;
  child.term = parent->term.Next();
  child.completed = std::move(completed);
  child.options = std::move(options);
  child.parent_edge = edge_id;
  child.path_cost = path_cost;
  shard.memory_bytes += NodeFootprint(child);
  LearningNode& stored = shard.nodes.push_back(std::move(child));

  parent->out_edges.push_back(edge_id);
  return CreatedChild{child_id, &stored};
}

std::vector<NodeId> LearningGraph::GoalNodes() const {
  std::vector<NodeId> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      if (shard.nodes[i].is_goal) {
        out.push_back(static_cast<NodeId>(s) << kShardShift |
                      static_cast<NodeId>(i));
      }
    }
  }
  return out;
}

std::vector<NodeId> LearningGraph::LeafNodes() const {
  std::vector<NodeId> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      if (shard.nodes[i].out_edges.empty()) {
        out.push_back(static_cast<NodeId>(s) << kShardShift |
                      static_cast<NodeId>(i));
      }
    }
  }
  return out;
}

void LearningGraph::Canonicalize() {
  if (shards_.size() == 1) return;  // serial runs are canonical already
  if (root() == kInvalidNodeId) {
    shards_.clear();
    shards_.resize(1);
    return;
  }

  LearningGraph out;

  // Replay the serial generators' numbering: ids are assigned when a node
  // is created, all children of one expansion get consecutive ids in
  // out-edge order, and the worklist is LIFO — the next node expanded is
  // the most recently created child.
  std::vector<NodeId> worklist;
  std::vector<NodeId> remap_stack;  // new ids, parallel to `worklist`

  {
    LearningNode& old_root = node_mut(0);
    NodeId new_root = out.AddRoot(old_root.term, std::move(old_root.completed),
                                  std::move(old_root.options));
    if (old_root.is_goal) out.MarkGoal(new_root);
    worklist.push_back(0);
    remap_stack.push_back(new_root);
  }

  while (!worklist.empty()) {
    NodeId old_id = worklist.back();
    worklist.pop_back();
    NodeId new_id = remap_stack.back();
    remap_stack.pop_back();

    // Copy the out-edge list: appending children below mutates the arena
    // the old node lives in only via distinct elements, but keep the loop
    // simple and allocation-light.
    const std::vector<EdgeId>& out_edges = node_mut(old_id).out_edges;
    for (EdgeId old_edge_id : out_edges) {
      LearningEdge& old_edge = edge_mut(old_edge_id);
      LearningNode& old_child = node_mut(old_edge.to);
      NodeId new_child = out.AddChildWithPathCost(
          new_id, std::move(old_edge.selection), std::move(old_child.completed),
          std::move(old_child.options), old_edge.cost, old_child.path_cost);
      if (old_child.is_goal) out.MarkGoal(new_child);
      worklist.push_back(old_edge.to);
      remap_stack.push_back(new_child);
    }
  }

  *this = std::move(out);
}

}  // namespace coursenav

#ifndef COURSENAV_GRAPH_PATH_H_
#define COURSENAV_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "graph/learning_graph.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav {

/// One semester of a learning path: the selection `W` elected in `term`.
struct PathStep {
  Term term;
  DynamicBitset selection;
};

/// A learning path `p_i`: a time-ordered sequence of selections starting
/// from an initial enrollment status.
class LearningPath {
 public:
  LearningPath(Term start_term, DynamicBitset start_completed)
      : start_term_(start_term), start_completed_(std::move(start_completed)) {}

  /// Reconstructs the root-to-`leaf` path of `graph`.
  static LearningPath FromGraph(const LearningGraph& graph, NodeId leaf);

  void AppendStep(Term term, DynamicBitset selection);

  Term start_term() const { return start_term_; }
  const DynamicBitset& start_completed() const { return start_completed_; }
  const std::vector<PathStep>& steps() const { return steps_; }

  /// Number of semester transitions (the paper's time-based path cost).
  int Length() const { return static_cast<int>(steps_.size()); }

  /// Completed set after the final step.
  DynamicBitset FinalCompleted() const;

  /// Accumulated ranking cost, if one was assigned by a ranked generator.
  double cost() const { return cost_; }
  void set_cost(double cost) { cost_ = cost; }

  /// Checks the path against the catalog's prerequisites and the schedule:
  /// steps must be in consecutive semesters, every elected course must be
  /// offered in its step's semester, not yet completed, and have its
  /// prerequisite satisfied by the courses completed before that semester.
  Status Validate(const Catalog& catalog,
                  const OfferingSchedule& schedule) const;

  /// Multi-line rendering: one "Fall 2012: {COSI11A, COSI29A}" row per step.
  std::string ToString(const Catalog& catalog) const;

  /// Paths are equal when they start identically and elect the same
  /// selections in the same semesters.
  friend bool operator==(const LearningPath& a, const LearningPath& b);

 private:
  Term start_term_;
  DynamicBitset start_completed_;
  std::vector<PathStep> steps_;
  double cost_ = 0.0;
};

}  // namespace coursenav

#endif  // COURSENAV_GRAPH_PATH_H_

#ifndef COURSENAV_CACHE_REQUEST_CACHE_H_
#define COURSENAV_CACHE_REQUEST_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/epoch.h"
#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/counting.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "core/pruning.h"
#include "obs/metrics.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "requirements/goal.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace coursenav::cache {

/// How the cache participated in answering one request.
enum class CacheOutcome {
  /// Caching is off for this caller (server --cache=off, or no cache wired).
  kDisabled,
  /// The request is not cacheable (unserializable in-memory goal/ranking,
  /// non-OK termination, count-only degradation rung, ...). Executed
  /// directly.
  kBypass,
  /// Cacheable, but no prior result at the current epoch. Executed and
  /// (when it completed) inserted.
  kMiss,
  /// Served from a prior run's canonical result, byte-identically.
  kHit,
};

/// Wire and log name: "off", "bypass", "miss", "hit".
std::string_view CacheOutcomeName(CacheOutcome outcome);

/// Parses a CacheOutcomeName back to the enum.
Result<CacheOutcome> ParseCacheOutcome(std::string_view name);

/// Capacity bounds of the process-wide tiers. Every tier is LRU within its
/// bound; the result tier is additionally byte-bounded (graphs dominate).
struct CacheConfig {
  size_t plan_capacity = 128;
  size_t result_capacity = 64;
  size_t result_max_bytes = 256u << 20;  // 256 MiB of cached graphs
  size_t count_capacity = 1024;
  /// Distinct epochs whose availability-verdict tiers are kept live; older
  /// epochs' tiers are dropped wholesale (they are unreachable anyway).
  size_t availability_epochs = 4;
};

/// Point-in-time counters, for /statusz and tests.
struct CacheStats {
  int64_t plan_hits = 0;
  int64_t plan_misses = 0;
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  int64_t count_hits = 0;
  int64_t count_misses = 0;
  int64_t bypasses = 0;
  int64_t evictions = 0;
  int64_t epoch_invalidations = 0;
  size_t result_bytes = 0;
  size_t result_entries = 0;
  size_t plan_entries = 0;
  size_t count_entries = 0;
};

/// The process-wide epoch-keyed request cache: plan, canonical-result,
/// goal-path-count, and availability-verdict reuse across sessions and
/// serve workers (docs/caching.md).
///
/// Correctness rests on two rules:
///   1. Every key includes the dataset's epoch token (cache/epoch.h), so a
///      churn fault, an Invalidate() call, or a different dataset can never
///      surface a stale entry.
///   2. The epoch is captured before a run and re-read after; a result is
///      inserted only when both observations agree. A run that raced an
///      epoch rotation — and might have observed perturbed offerings — is
///      returned to its caller but never cached.
///
/// Determinism: a result hit returns a deep copy of the stored canonical
/// response, byte-identical to what the original (cold) run produced —
/// graphs, path order, and stats alike. Only complete (termination-OK)
/// runs are stored, which is what makes the thread-count- and
/// wall-clock-budget-free result key sound (see docs/caching.md).
///
/// All methods are thread-safe. The tier mutexes (`plan_mu_`,
/// `result_mu_`, `count_mu_`, `avail_mu_`) are leaf locks, never nested
/// with each other or any other lock, and never held across an
/// exploration run (tools/lint/lock_order.txt).
class RequestCache {
 public:
  explicit RequestCache(CacheConfig config = {});
  RequestCache(const RequestCache&) = delete;
  RequestCache& operator=(const RequestCache&) = delete;

  /// The never-destroyed process-wide instance the serving layer and
  /// sessions share.
  static RequestCache& Global();

  /// Cache-aware replacement for plan::Execute: lowers and runs `request`
  /// against (catalog, schedule), consulting the plan and result tiers and
  /// threading the epoch's shared availability tier into the run.
  /// `outcome` (optional) reports how the answer was produced.
  Result<ExplorationResponse> Execute(const Catalog& catalog,
                                      const OfferingSchedule& schedule,
                                      const ExplorationRequest& request,
                                      CacheOutcome* outcome = nullptr);

  /// Cache-aware goal-path count (core/counting.h), shared across
  /// sessions. `goal` is held by shared_ptr: each cached entry pins its
  /// goal alive, so the pointer-identity part of the key can never alias a
  /// recycled address.
  Result<uint64_t> CountGoalPaths(const Catalog& catalog,
                                  const OfferingSchedule& schedule,
                                  const EnrollmentStatus& start, Term deadline,
                                  std::shared_ptr<const Goal> goal,
                                  const ExplorationOptions& options,
                                  const GoalDrivenConfig& config = {},
                                  CacheOutcome* outcome = nullptr);

  /// Explicitly rotates the dataset's epoch (EpochRegistry::Invalidate):
  /// every entry derived from it becomes unreachable.
  void Invalidate(const Catalog& catalog, const OfferingSchedule& schedule);

  /// Drops every entry in every tier (epochs are unaffected).
  void Clear();

  CacheStats Stats() const;

 private:
  struct ResultEntry {
    std::shared_ptr<const ExplorationResponse> response;
    size_t bytes = 0;
  };
  struct CountEntry {
    uint64_t goal_paths = 0;
    /// Keeps the goal object alive while the entry exists, so the raw
    /// pointer embedded in the key stays unique (no address reuse).
    std::shared_ptr<const Goal> pin;
  };
  /// One epoch's availability-verdict tiers, one per goal spec.
  struct AvailabilityEpoch {
    uint64_t epoch_token = 0;
    std::unordered_map<std::string,
                       std::shared_ptr<internal::SharedAvailabilityCache>>
        by_goal;
  };
  template <typename Value>
  struct LruMap {
    std::list<std::pair<std::string, Value>> order;  // front = most recent
    std::unordered_map<
        std::string,
        typename std::list<std::pair<std::string, Value>>::iterator>
        index;
  };

  /// The epoch's shared availability tier for `goal_key`, created on first
  /// use. The returned tier stays alive at least as long as the returned
  /// shared_ptr (eviction drops the map's reference only).
  std::shared_ptr<internal::SharedAvailabilityCache> AvailabilityTier(
      uint64_t epoch_token, const std::string& goal_key);

  const CacheConfig config_;

  mutable Mutex plan_mu_;
  LruMap<plan::ExplorationPlan> plans_ CN_GUARDED_BY(plan_mu_);

  mutable Mutex result_mu_;
  LruMap<ResultEntry> results_ CN_GUARDED_BY(result_mu_);
  size_t result_bytes_ CN_GUARDED_BY(result_mu_) = 0;

  mutable Mutex count_mu_;
  LruMap<CountEntry> counts_ CN_GUARDED_BY(count_mu_);

  mutable Mutex avail_mu_;
  std::vector<AvailabilityEpoch> avail_epochs_ CN_GUARDED_BY(avail_mu_);

  /// Per-instance tallies (lock-free), the source of truth for Stats().
  /// Each bump also mirrors into the process-global obs registry's cache_*
  /// series via the handles below, so a test-local cache instance still
  /// reads its own numbers while /metrics aggregates everything.
  struct Tallies {
    obs::Counter plan_hits, plan_misses;
    obs::Counter result_hits, result_misses;
    obs::Counter count_hits, count_misses;
    obs::Counter bypasses, evictions, epoch_invalidations;
  };
  Tallies tallies_;

  // Interned once at construction from the process-global registry.
  obs::Counter* plan_hits_;
  obs::Counter* plan_misses_;
  obs::Counter* result_hits_;
  obs::Counter* result_misses_;
  obs::Counter* count_hits_;
  obs::Counter* count_misses_;
  obs::Counter* bypasses_;
  obs::Counter* evictions_;
  obs::Counter* epoch_invalidations_;
  obs::Gauge* result_bytes_gauge_;
};

}  // namespace coursenav::cache

#endif  // COURSENAV_CACHE_REQUEST_CACHE_H_

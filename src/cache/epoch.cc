#include "cache/epoch.h"

#include <string_view>

#include "catalog/term.h"
#include "util/bitset.h"
#include "util/fault_injection.h"

namespace coursenav::cache {

namespace {

/// splitmix64 finalizer — the same full-avalanche mix the fault injector
/// uses, giving the epoch token good bit dispersion from structured inputs.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) { return Mix(h ^ v); }

/// FNV-1a over a string; stable across platforms.
uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The ambient fault-injection contribution to the epoch token: 0 with no
/// active injector; otherwise a mix of the injector's process-unique
/// activation id and how many schedule-churn faults it has fired so far.
/// Folding the activation id in (not just the fired count) keeps epochs
/// from colliding across injection scopes — a fresh scope at a reused
/// stack address with fired==0 must not alias an earlier scope's epoch.
uint64_t InjectorToken() {
  FaultInjector* injector = ActiveFaultInjector();
  if (injector == nullptr) return 0;
  return Combine(Mix(injector->activation_id()),
                 static_cast<uint64_t>(injector->fired(
                     kFaultSiteScheduleChurn)));
}

}  // namespace

uint64_t ContentHash(const Catalog& catalog,
                     const OfferingSchedule& schedule) {
  uint64_t h = Mix(static_cast<uint64_t>(catalog.size()));
  for (CourseId id = 0; id < catalog.size(); ++id) {
    const Course& course = catalog.course(id);
    h = Combine(h, HashString(course.code));
    uint64_t workload_bits;
    static_assert(sizeof(workload_bits) == sizeof(course.workload_hours));
    __builtin_memcpy(&workload_bits, &course.workload_hours,
                     sizeof(workload_bits));
    h = Combine(h, workload_bits);
    h = Combine(h, HashString(course.prerequisites.ToString()));
  }
  if (!schedule.empty()) {
    const int first = schedule.first_term().index();
    const int last = schedule.last_term().index();
    h = Combine(h, static_cast<uint64_t>(first));
    h = Combine(h, static_cast<uint64_t>(last));
    for (int t = first; t <= last; ++t) {
      Term term = Term::FromIndex(t);
      // OfferedInRange over a single term is the recorded offering set —
      // unlike OfferedIn it never passes the schedule/churn fault seam, so
      // the fingerprint reflects the registrar data, not a perturbed query.
      DynamicBitset offered = schedule.OfferedInRange(term, term);
      h = Combine(h, offered.Hash());
    }
  }
  return h;
}

EpochRegistry& EpochRegistry::Global() {
  // Leaky singleton: sessions may consult epochs during static
  // destruction.
  static EpochRegistry* registry =
      new EpochRegistry();  // NOLINT(coursenav-raw-new)
  return *registry;
}

CatalogEpoch EpochRegistry::Current(const Catalog& catalog,
                                    const OfferingSchedule& schedule) const {
  CatalogEpoch epoch;
  epoch.content_hash = ContentHash(catalog, schedule);
  uint64_t generation = 0;
  {
    MutexLock lock(epoch_mu_);
    auto it = generations_.find(epoch.content_hash);
    if (it != generations_.end()) generation = it->second;
  }
  epoch.token =
      Combine(Combine(Mix(epoch.content_hash), generation), InjectorToken());
  return epoch;
}

void EpochRegistry::Invalidate(const Catalog& catalog,
                               const OfferingSchedule& schedule) {
  uint64_t content = ContentHash(catalog, schedule);
  MutexLock lock(epoch_mu_);
  ++generations_[content];
  ++invalidations_;
}

int64_t EpochRegistry::invalidations() const {
  MutexLock lock(epoch_mu_);
  return invalidations_;
}

}  // namespace coursenav::cache

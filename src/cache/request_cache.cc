#include "cache/request_cache.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "obs/trace.h"
#include "util/json.h"

namespace coursenav::cache {

namespace {

void SetOutcome(CacheOutcome* out, CacheOutcome value) {
  if (out != nullptr) *out = value;
}

/// Bumps an instance tally and its process-global mirror.
void Bump(obs::Counter& local, obs::Counter* global) {
  local.Increment();
  global->Increment();
}

std::string TokenHex(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// The canonical cache identity of a request: the JSON dump of a copy with
/// every execution-mechanical field neutralized —
///   - num_threads: the determinism contract makes complete output
///     byte-identical at every thread count, so thread count is not part
///     of *what* is computed (the plan tier re-keys on it separately,
///     since the serial/parallel lowering decision does depend on it);
///   - the cancel token and wall-clock budget: they bound *whether* a run
///     finishes, never what a finished run contains, and only finished
///     runs are cached. Deterministic budgets (max_nodes, max_memory_bytes)
///     stay in the key — they shape truncation deterministically;
///   - the degradation policy: the ladder driver caches per rung-rewritten
///     request, and the policy rides along without affecting any one run.
/// Fails (→ bypass) for in-memory requests with no declarative specs.
Result<std::string> CanonicalRequestKey(const ExplorationRequest& request,
                                        const Catalog& catalog) {
  ExplorationRequest canonical = request;
  canonical.options.num_threads = 0;
  canonical.options.cancel = CancellationToken();
  canonical.options.limits.max_seconds = 0.0;
  canonical.degradation.reset();
  COURSENAV_ASSIGN_OR_RETURN(JsonValue json,
                             ExplorationRequestToJson(canonical, catalog));
  return json.Dump();
}

/// Deep copy of a stored canonical response. Byte-identical under
/// traversal and export: LearningGraph::Clone preserves shard structure
/// and ids, and every other field is value-copied.
ExplorationResponse CloneResponse(const ExplorationResponse& src) {
  ExplorationResponse out;
  if (src.generation.has_value()) {
    GenerationResult generation;
    generation.graph = src.generation->graph.Clone();
    generation.stats = src.generation->stats;
    generation.termination = src.generation->termination;
    out.generation = std::move(generation);
  }
  if (src.ranked.has_value()) out.ranked = *src.ranked;
  out.paths_before_filters = src.paths_before_filters;
  out.filter_description = src.filter_description;
  return out;
}

/// Coarse footprint of a stored response, for the result tier's byte
/// bound. Graph arenas dominate; ranked paths get a flat per-path charge.
size_t ResponseBytes(const ExplorationResponse& response) {
  size_t bytes = sizeof(ExplorationResponse);
  if (response.generation.has_value()) {
    bytes += response.generation->graph.MemoryUsage();
  }
  if (response.ranked.has_value()) {
    bytes += response.ranked->paths.size() * 512;
  }
  return bytes;
}

}  // namespace

std::string_view CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kDisabled:
      return "off";
    case CacheOutcome::kBypass:
      return "bypass";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
  }
  return "off";
}

Result<CacheOutcome> ParseCacheOutcome(std::string_view name) {
  if (name == "off") return CacheOutcome::kDisabled;
  if (name == "bypass") return CacheOutcome::kBypass;
  if (name == "miss") return CacheOutcome::kMiss;
  if (name == "hit") return CacheOutcome::kHit;
  return Status::InvalidArgument("unknown cache outcome: '" +
                                 std::string(name) + "'");
}

RequestCache::RequestCache(CacheConfig config)
    : config_(config),
      plan_hits_(obs::GlobalMetrics().GetCounter(obs::kMetricCachePlanHits)),
      plan_misses_(
          obs::GlobalMetrics().GetCounter(obs::kMetricCachePlanMisses)),
      result_hits_(
          obs::GlobalMetrics().GetCounter(obs::kMetricCacheResultHits)),
      result_misses_(
          obs::GlobalMetrics().GetCounter(obs::kMetricCacheResultMisses)),
      count_hits_(obs::GlobalMetrics().GetCounter(obs::kMetricCacheCountHits)),
      count_misses_(
          obs::GlobalMetrics().GetCounter(obs::kMetricCacheCountMisses)),
      bypasses_(obs::GlobalMetrics().GetCounter(obs::kMetricCacheBypass)),
      evictions_(obs::GlobalMetrics().GetCounter(obs::kMetricCacheEvictions)),
      epoch_invalidations_(obs::GlobalMetrics().GetCounter(
          obs::kMetricCacheEpochInvalidations)),
      result_bytes_gauge_(
          obs::GlobalMetrics().GetGauge(obs::kMetricCacheResultBytes)) {}

RequestCache& RequestCache::Global() {
  // Leaky singleton: serve workers may finish requests during static
  // destruction.
  static RequestCache* cache = new RequestCache();  // NOLINT(coursenav-raw-new)
  return *cache;
}

Result<ExplorationResponse> RequestCache::Execute(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const ExplorationRequest& request, CacheOutcome* outcome) {
  SetOutcome(outcome, CacheOutcome::kBypass);
  Result<std::string> canonical_key = CanonicalRequestKey(request, catalog);
  if (!canonical_key.ok()) {
    // In-memory goal/ranking objects with no declarative spec have no
    // stable identity to key on; execute uncached.
    Bump(tallies_.bypasses, bypasses_);
    return plan::Execute(catalog, schedule, request);
  }

  const CatalogEpoch epoch =
      EpochRegistry::Global().Current(catalog, schedule);
  const std::string result_key = TokenHex(epoch.token) + '|' + *canonical_key;

  // Result tier: a hit hands back a deep copy of the stored canonical
  // response — same graph bytes, path order, and stats as the cold run.
  std::shared_ptr<const ExplorationResponse> stored;
  {
    MutexLock lock(result_mu_);
    auto it = results_.index.find(result_key);
    if (it != results_.index.end()) {
      results_.order.splice(results_.order.begin(), results_.order,
                            it->second);
      stored = it->second->second.response;
    }
  }
  if (stored != nullptr) {
    Bump(tallies_.result_hits, result_hits_);
    SetOutcome(outcome, CacheOutcome::kHit);
    return CloneResponse(*stored);
  }
  Bump(tallies_.result_misses, result_misses_);
  SetOutcome(outcome, CacheOutcome::kMiss);

  // Plan tier. The lowering decision depends on the canonical request plus
  // the requested thread count, so that re-keys here.
  const std::string plan_key =
      result_key + "|threads=" + std::to_string(request.options.num_threads);
  std::optional<plan::ExplorationPlan> plan;
  {
    MutexLock lock(plan_mu_);
    auto it = plans_.index.find(plan_key);
    if (it != plans_.index.end()) {
      plans_.order.splice(plans_.order.begin(), plans_.order, it->second);
      plan = it->second->second;
    }
  }
  if (plan.has_value()) {
    Bump(tallies_.plan_hits, plan_hits_);
    // The cached plan was lowered from a canonically identical request;
    // substitute the live one so its budgets and cancel token apply.
    plan->request = request;
  } else {
    Bump(tallies_.plan_misses, plan_misses_);
    Result<plan::ExplorationPlan> lowered = [&request] {
      obs::ScopedSpan span(obs::kSpanPlanLower);
      return plan::Planner::Lower(request);
    }();
    COURSENAV_RETURN_IF_ERROR(lowered.status());
    plan = std::move(*lowered);
    MutexLock lock(plan_mu_);
    if (plans_.index.find(plan_key) == plans_.index.end()) {
      plans_.order.emplace_front(plan_key, *plan);
      plans_.index.emplace(plan_key, plans_.order.begin());
      while (plans_.order.size() > config_.plan_capacity) {
        plans_.index.erase(plans_.order.back().first);
        plans_.order.pop_back();
        Bump(tallies_.evictions, evictions_);
      }
    }
  }

  // Availability tier: thread the epoch's shared verdict cache into the
  // run. The shared_ptr keeps the tier alive for the whole run even if a
  // concurrent eviction drops the map's reference.
  plan::ExecHooks hooks;
  std::shared_ptr<internal::SharedAvailabilityCache> availability;
  if (request.goal != nullptr && !request.goal_spec.empty() &&
      request.config.cache_availability_checks &&
      (request.type == TaskType::kGoalDriven ||
       request.type == TaskType::kRanked)) {
    availability = AvailabilityTier(epoch.token, request.goal_spec);
    hooks.shared_availability = availability.get();
  }

  Result<ExplorationResponse> run =
      plan::Executor(&catalog, &schedule).Run(*plan, hooks);
  COURSENAV_RETURN_IF_ERROR(run.status());

  // Insert only complete runs, and only when the epoch we keyed on is
  // still current: a run that raced a churn fault or an Invalidate() may
  // have observed perturbed offerings and must never be served again.
  const Status* termination = nullptr;
  if (run->generation.has_value()) {
    termination = &run->generation->termination;
  } else if (run->ranked.has_value()) {
    termination = &run->ranked->termination;
  }
  if (termination != nullptr && termination->ok()) {
    const CatalogEpoch after =
        EpochRegistry::Global().Current(catalog, schedule);
    if (after.token == epoch.token) {
      ResultEntry entry;
      entry.response =
          std::make_shared<const ExplorationResponse>(CloneResponse(*run));
      entry.bytes = ResponseBytes(*entry.response);
      MutexLock lock(result_mu_);
      if (results_.index.find(result_key) == results_.index.end()) {
        result_bytes_ += entry.bytes;
        results_.order.emplace_front(result_key, std::move(entry));
        results_.index.emplace(result_key, results_.order.begin());
        while (results_.order.size() > config_.result_capacity ||
               (result_bytes_ > config_.result_max_bytes &&
                results_.order.size() > 1)) {
          result_bytes_ -= results_.order.back().second.bytes;
          results_.index.erase(results_.order.back().first);
          results_.order.pop_back();
          Bump(tallies_.evictions, evictions_);
        }
        result_bytes_gauge_->Set(static_cast<int64_t>(result_bytes_));
      }
    }
  }
  return run;
}

Result<uint64_t> RequestCache::CountGoalPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term deadline,
    std::shared_ptr<const Goal> goal, const ExplorationOptions& options,
    const GoalDrivenConfig& config, CacheOutcome* outcome) {
  SetOutcome(outcome, CacheOutcome::kBypass);
  if (goal == nullptr) {
    return Status::InvalidArgument("goal-path counting requires a goal");
  }

  const CatalogEpoch epoch =
      EpochRegistry::Global().Current(catalog, schedule);
  // The goal has no declarative spec here (sessions hold resolved Goal
  // objects), so the key uses its address — sound because the cache entry
  // pins the shared_ptr, making address reuse impossible while the entry
  // lives. Wall-clock budget is excluded for the same reason as in
  // CanonicalRequestKey; the deterministic status cap stays.
  std::string key = TokenHex(epoch.token);
  key += '|';
  key += TokenHex(reinterpret_cast<uintptr_t>(goal.get()));
  key += "|t=";
  key += std::to_string(start.term.index());
  key += "|d=";
  key += std::to_string(deadline.index());
  key += "|X=";
  key += start.completed.ToString();
  key += "|m=";
  key += std::to_string(options.max_courses_per_term);
  key += "|avoid=";
  key += options.avoid_courses.has_value() ? options.avoid_courses->ToString()
                                           : std::string("-");
  key += "|skip=";
  key += options.allow_voluntary_skip ? '1' : '0';
  key += "|n=";
  key += std::to_string(options.limits.max_nodes);
  key += "|b=";
  key += std::to_string(options.limits.max_memory_bytes);
  key += "|cfg=";
  key += config.enable_time_pruning ? '1' : '0';
  key += config.enable_availability_pruning ? '1' : '0';
  key += config.enforce_min_selection ? '1' : '0';
  key += config.cache_availability_checks ? '1' : '0';

  std::optional<uint64_t> cached;
  {
    MutexLock lock(count_mu_);
    auto it = counts_.index.find(key);
    if (it != counts_.index.end()) {
      counts_.order.splice(counts_.order.begin(), counts_.order, it->second);
      cached = it->second->second.goal_paths;
    }
  }
  if (cached.has_value()) {
    Bump(tallies_.count_hits, count_hits_);
    SetOutcome(outcome, CacheOutcome::kHit);
    return *cached;
  }
  Bump(tallies_.count_misses, count_misses_);
  SetOutcome(outcome, CacheOutcome::kMiss);

  COURSENAV_ASSIGN_OR_RETURN(
      CountingResult counted,
      CountGoalDrivenPaths(catalog, schedule, start, deadline, *goal, options,
                           config));

  const CatalogEpoch after = EpochRegistry::Global().Current(catalog, schedule);
  if (after.token == epoch.token) {
    MutexLock lock(count_mu_);
    if (counts_.index.find(key) == counts_.index.end()) {
      counts_.order.emplace_front(key,
                                  CountEntry{counted.goal_paths, goal});
      counts_.index.emplace(key, counts_.order.begin());
      while (counts_.order.size() > config_.count_capacity) {
        counts_.index.erase(counts_.order.back().first);
        counts_.order.pop_back();
        Bump(tallies_.evictions, evictions_);
      }
    }
  }
  return counted.goal_paths;
}

std::shared_ptr<internal::SharedAvailabilityCache>
RequestCache::AvailabilityTier(uint64_t epoch_token,
                               const std::string& goal_key) {
  MutexLock lock(avail_mu_);
  for (AvailabilityEpoch& tier : avail_epochs_) {
    if (tier.epoch_token == epoch_token) {
      std::shared_ptr<internal::SharedAvailabilityCache>& slot =
          tier.by_goal[goal_key];
      if (slot == nullptr) {
        slot = std::make_shared<internal::SharedAvailabilityCache>();
      }
      return slot;
    }
  }
  avail_epochs_.push_back(AvailabilityEpoch{epoch_token, {}});
  while (avail_epochs_.size() > config_.availability_epochs) {
    avail_epochs_.erase(avail_epochs_.begin());
    Bump(tallies_.evictions, evictions_);
  }
  std::shared_ptr<internal::SharedAvailabilityCache>& slot =
      avail_epochs_.back().by_goal[goal_key];
  slot = std::make_shared<internal::SharedAvailabilityCache>();
  return slot;
}

void RequestCache::Invalidate(const Catalog& catalog,
                              const OfferingSchedule& schedule) {
  EpochRegistry::Global().Invalidate(catalog, schedule);
  Bump(tallies_.epoch_invalidations, epoch_invalidations_);
}

void RequestCache::Clear() {
  {
    MutexLock lock(plan_mu_);
    plans_.order.clear();
    plans_.index.clear();
  }
  {
    MutexLock lock(result_mu_);
    results_.order.clear();
    results_.index.clear();
    result_bytes_ = 0;
  }
  {
    MutexLock lock(count_mu_);
    counts_.order.clear();
    counts_.index.clear();
  }
  {
    MutexLock lock(avail_mu_);
    avail_epochs_.clear();
  }
  result_bytes_gauge_->Set(0);
}

CacheStats RequestCache::Stats() const {
  CacheStats stats;
  stats.plan_hits = tallies_.plan_hits.Value();
  stats.plan_misses = tallies_.plan_misses.Value();
  stats.result_hits = tallies_.result_hits.Value();
  stats.result_misses = tallies_.result_misses.Value();
  stats.count_hits = tallies_.count_hits.Value();
  stats.count_misses = tallies_.count_misses.Value();
  stats.bypasses = tallies_.bypasses.Value();
  stats.evictions = tallies_.evictions.Value();
  stats.epoch_invalidations = tallies_.epoch_invalidations.Value();
  {
    MutexLock lock(result_mu_);
    stats.result_bytes = result_bytes_;
    stats.result_entries = results_.order.size();
  }
  {
    MutexLock lock(plan_mu_);
    stats.plan_entries = plans_.order.size();
  }
  {
    MutexLock lock(count_mu_);
    stats.count_entries = counts_.order.size();
  }
  return stats;
}

}  // namespace coursenav::cache

#ifndef COURSENAV_CACHE_EPOCH_H_
#define COURSENAV_CACHE_EPOCH_H_

#include <cstdint>
#include <unordered_map>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav::cache {

/// Identity of one immutable (catalog, schedule) generation — the unit of
/// validity for every process-wide cache tier (see docs/caching.md).
///
/// `content_hash` fingerprints what the dataset *says*: every course
/// (code, workload, prerequisite expression) and every recorded offering.
/// `token` additionally folds in the catalog's invalidation generation and
/// the active fault-injection activation, so a cache keyed by `token`
/// treats "same bytes, but an operator called Invalidate()" and "same
/// bytes, but a churn-faulted process state" as distinct worlds.
struct CatalogEpoch {
  uint64_t token = 0;
  uint64_t content_hash = 0;

  bool operator==(const CatalogEpoch& other) const {
    return token == other.token && content_hash == other.content_hash;
  }
};

/// Content fingerprint of a dataset: a stable 64-bit hash over the
/// catalog's interned courses (id order: code, workload, prerequisite
/// expression text) and the schedule's per-term offering sets.
///
/// Deliberately recomputed per query rather than memoized by object
/// address — a rebuilt catalog at a reused heap address must not inherit
/// the old epoch (pointer-identity ABA). The scan reads offerings via
/// `OfferedInRange`, which does NOT pass through the `schedule/churn`
/// fault seam: churn perturbs individual `OfferedIn` *queries*, not the
/// recorded schedule, and is accounted for in the epoch token instead.
uint64_t ContentHash(const Catalog& catalog, const OfferingSchedule& schedule);

/// Process-wide source of truth for catalog epochs.
///
/// The epoch token for a dataset changes when any of the following does:
///   - the dataset's content hash (a different catalog or schedule);
///   - its invalidation generation (`Invalidate()` — the explicit
///     operator/test API for "drop everything derived from this dataset");
///   - the ambient fault-injection state: with an active injector the
///     token folds in the injector's unique activation id and the number
///     of `schedule/churn` faults it has fired, so every churn event
///     rotates the epoch and no two injection scopes ever share one.
class EpochRegistry {
 public:
  EpochRegistry() = default;
  EpochRegistry(const EpochRegistry&) = delete;
  EpochRegistry& operator=(const EpochRegistry&) = delete;

  /// The never-destroyed process-wide registry.
  static EpochRegistry& Global();

  /// The dataset's current epoch. Cheap relative to an exploration run
  /// (one pass over the catalog and schedule), but not free — callers on a
  /// hot path capture it once per request.
  CatalogEpoch Current(const Catalog& catalog,
                       const OfferingSchedule& schedule) const;

  /// Bumps the dataset's invalidation generation: every epoch-keyed entry
  /// derived from it is unreachable from the next `Current()` on. Safe to
  /// call concurrently with readers — in-flight runs that captured the old
  /// epoch finish against it and their insert attempts no-op.
  void Invalidate(const Catalog& catalog, const OfferingSchedule& schedule);

  /// Total `Invalidate()` calls, for the obs cache_* counters.
  int64_t invalidations() const;

 private:
  /// Guards the generation map. Leaf lock: never held while any other
  /// cache mutex is held (registered in tools/lint/lock_order.txt).
  mutable Mutex epoch_mu_;
  /// content hash -> explicit invalidation generation (absent = 0).
  std::unordered_map<uint64_t, uint64_t> generations_ CN_GUARDED_BY(epoch_mu_);
  int64_t invalidations_ CN_GUARDED_BY(epoch_mu_) = 0;
};

}  // namespace coursenav::cache

#endif  // COURSENAV_CACHE_EPOCH_H_

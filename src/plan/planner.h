#ifndef COURSENAV_PLAN_PLANNER_H_
#define COURSENAV_PLAN_PLANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "plan/request.h"
#include "util/result.h"

namespace coursenav::plan {

/// The operator vocabulary a request lowers into. Every exploration is a
/// linear chain drawn from this set (see docs/planner.md):
///
///   Source → Expand [→ Prune] [→ Rank → Limit [→ Filter]]
///
/// Filter runs *after* Limit by design: path filters cut the top-k answer
/// down (fewer than k paths may survive), they do not backfill it —
/// matching the CLI's long-standing semantics.
enum class OperatorKind { kSource, kExpand, kPrune, kFilter, kRank, kLimit };

std::string_view OperatorKindName(OperatorKind kind);

/// One operator of a lowered plan, with a human-readable parameterization
/// for plan descriptions (`coursenav ... --show-plan`).
struct PlanOperator {
  OperatorKind kind = OperatorKind::kSource;
  std::string detail;
};

/// A lowered, executable exploration plan: the request (possibly rewritten
/// by the degradation ladder), its operator chain, and the
/// serial-vs-parallel decision — made once here instead of once per
/// generator.
struct ExplorationPlan {
  ExplorationRequest request;
  std::vector<PlanOperator> ops;

  /// True when the Expand operator runs on the work-stealing parallel
  /// frontier engine; `workers` is then the effective worker count.
  /// Ranked plans are never parallel (best-first top-k is
  /// order-dependent), regardless of `request.options.num_threads`.
  bool parallel = false;
  int workers = 0;

  /// Planner remarks a caller should surface, e.g. the explicit "ranked
  /// runs serial" note when a ranked request asked for threads.
  std::vector<std::string> notes;

  /// Multi-line human-readable rendering: one line per operator plus the
  /// notes.
  std::string Describe() const;
};

/// Lowers declarative requests into executable plans.
class Planner {
 public:
  /// Structural validation + lowering. Fails on requests that are
  /// malformed independent of any catalog: a goal-driven or ranked
  /// request without a goal, a ranked request without a ranking, an
  /// unknown task type. Catalog-dependent validation (finalized catalog,
  /// set sizes, window) happens in the executor's prologue, preserving
  /// the legacy generators' error order.
  static Result<ExplorationPlan> Lower(const ExplorationRequest& request);
};

/// Rewrites `request` for one rung of the degradation ladder — the ladder
/// re-expressed as plan rewrites. kFull is the identity;
/// kAggressivePruning forces every pruning strategy on (goal-driven
/// requests only); kRankedSmallK caps k at `policy.degraded_top_k`;
/// kCountOnly applies `policy.count_max_nodes`. Non-full materializing
/// rungs also apply `policy.degraded_max_nodes`. FailedPrecondition when
/// the rung does not apply to this request (no goal / no ranking), with
/// the same messages the service ladder always reported.
Result<ExplorationRequest> RewriteForDegradation(
    const ExplorationRequest& request, DegradationLevel level,
    const DegradationPolicy& policy);

}  // namespace coursenav::plan

#endif  // COURSENAV_PLAN_PLANNER_H_

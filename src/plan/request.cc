#include "plan/request.h"

#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "expr/parser.h"
#include "requirements/expr_goal.h"

namespace coursenav {

std::string_view TaskTypeName(TaskType type) {
  switch (type) {
    case TaskType::kDeadlineDriven:
      return "deadline";
    case TaskType::kGoalDriven:
      return "goal";
    case TaskType::kRanked:
      return "ranked";
  }
  return "unknown";
}

Result<TaskType> ParseTaskType(std::string_view name) {
  for (TaskType type : {TaskType::kDeadlineDriven, TaskType::kGoalDriven,
                        TaskType::kRanked}) {
    if (TaskTypeName(type) == name) return type;
  }
  return Status::InvalidArgument("unknown exploration task type '" +
                                 std::string(name) + "'");
}

std::string_view DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "full";
    case DegradationLevel::kAggressivePruning:
      return "aggressive-pruning";
    case DegradationLevel::kRankedSmallK:
      return "ranked-small-k";
    case DegradationLevel::kCountOnly:
      return "count-only";
  }
  return "unknown";
}

Result<DegradationLevel> ParseDegradationLevel(std::string_view name) {
  for (DegradationLevel level :
       {DegradationLevel::kFull, DegradationLevel::kAggressivePruning,
        DegradationLevel::kRankedSmallK, DegradationLevel::kCountOnly}) {
    if (DegradationLevelName(level) == name) return level;
  }
  return Status::InvalidArgument("unknown degradation level '" +
                                 std::string(name) + "'");
}

namespace {

/// Renders a course set as a JSON array of registrar codes, in id order
/// (deterministic for a given catalog).
JsonValue CourseSetToJson(const DynamicBitset& set, const Catalog& catalog) {
  JsonValue::Array codes;
  set.ForEach([&](int id) {
    codes.push_back(
        JsonValue(catalog.course(static_cast<CourseId>(id)).code));
  });
  return JsonValue(std::move(codes));
}

Result<DynamicBitset> CourseSetFromJson(const JsonValue& json,
                                        const Catalog& catalog,
                                        std::string_view what) {
  if (!json.is_array()) {
    return Status::InvalidArgument("'" + std::string(what) +
                                   "' must be an array of course codes");
  }
  std::vector<std::string> codes;
  codes.reserve(json.array().size());
  for (const JsonValue& code : json.array()) {
    COURSENAV_ASSIGN_OR_RETURN(std::string text, code.GetString());
    codes.push_back(std::move(text));
  }
  return catalog.CourseSetFromCodes(codes);
}

Result<Term> TermFromJson(const JsonValue& parent, std::string_view key) {
  COURSENAV_ASSIGN_OR_RETURN(JsonValue value, parent.Get(key));
  COURSENAV_ASSIGN_OR_RETURN(std::string text, value.GetString());
  return Term::Parse(text);
}

JsonValue DegradationPolicyToJson(const DegradationPolicy& policy) {
  JsonValue::Object object;
  JsonValue::Array ladder;
  ladder.reserve(policy.ladder.size());
  for (DegradationLevel level : policy.ladder) {
    ladder.push_back(JsonValue(std::string(DegradationLevelName(level))));
  }
  object["ladder"] = JsonValue(std::move(ladder));
  object["time_fraction"] = JsonValue(policy.time_fraction);
  object["degraded_top_k"] = JsonValue(policy.degraded_top_k);
  object["degraded_max_nodes"] = JsonValue(policy.degraded_max_nodes);
  object["count_max_nodes"] = JsonValue(policy.count_max_nodes);
  return JsonValue(std::move(object));
}

Result<DegradationPolicy> DegradationPolicyFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("'degradation' must be an object");
  }
  DegradationPolicy policy;
  if (json.Has("ladder")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue ladder, json.Get("ladder"));
    if (!ladder.is_array()) {
      return Status::InvalidArgument("'ladder' must be an array");
    }
    for (const JsonValue& entry : ladder.array()) {
      COURSENAV_ASSIGN_OR_RETURN(std::string name, entry.GetString());
      COURSENAV_ASSIGN_OR_RETURN(DegradationLevel level,
                                 ParseDegradationLevel(name));
      policy.ladder.push_back(level);
    }
  }
  if (json.Has("time_fraction")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue value, json.Get("time_fraction"));
    COURSENAV_ASSIGN_OR_RETURN(policy.time_fraction, value.GetNumber());
  }
  if (json.Has("degraded_top_k")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue value, json.Get("degraded_top_k"));
    COURSENAV_ASSIGN_OR_RETURN(int64_t k, value.GetInt());
    policy.degraded_top_k = static_cast<int>(k);
  }
  if (json.Has("degraded_max_nodes")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                               json.Get("degraded_max_nodes"));
    COURSENAV_ASSIGN_OR_RETURN(policy.degraded_max_nodes, value.GetInt());
  }
  if (json.Has("count_max_nodes")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue value, json.Get("count_max_nodes"));
    COURSENAV_ASSIGN_OR_RETURN(policy.count_max_nodes, value.GetInt());
  }
  return policy;
}

/// The ranking names ExplorationRequestFromJson can resolve without
/// external inputs. ReliabilityRanking needs an OfferingProbabilityModel
/// and is deliberately absent.
Result<std::shared_ptr<const RankingFunction>> RankingFromSpec(
    std::string_view spec, const Catalog& catalog) {
  if (spec == "time") {
    return std::static_pointer_cast<const RankingFunction>(
        std::make_shared<const TimeRanking>());
  }
  if (spec == "workload") {
    return std::static_pointer_cast<const RankingFunction>(
        std::make_shared<const WorkloadRanking>(&catalog));
  }
  if (spec == "bottleneck-workload") {
    return std::static_pointer_cast<const RankingFunction>(
        std::make_shared<const BottleneckWorkloadRanking>(&catalog));
  }
  return Status::InvalidArgument(
      "unknown ranking '" + std::string(spec) +
      "' (JSON-constructible rankings: time, workload, bottleneck-workload)");
}

}  // namespace

Result<JsonValue> ExplorationRequestToJson(const ExplorationRequest& request,
                                           const Catalog& catalog) {
  if (request.goal != nullptr && request.goal_spec.empty()) {
    return Status::InvalidArgument(
        "request goal has no declarative goal_spec; in-memory goals cannot "
        "be serialized");
  }
  if (request.ranking != nullptr && request.ranking_spec.empty()) {
    return Status::InvalidArgument(
        "request ranking has no declarative ranking_spec; in-memory "
        "rankings cannot be serialized");
  }

  JsonValue::Object object;

  JsonValue::Object start;
  start["term"] = JsonValue(request.start.term.ToString());
  start["completed"] = CourseSetToJson(request.start.completed, catalog);
  object["start"] = JsonValue(std::move(start));

  object["end_term"] = JsonValue(request.end_term.ToString());
  object["type"] = JsonValue(std::string(TaskTypeName(request.type)));
  if (!request.goal_spec.empty()) {
    object["goal"] = JsonValue(request.goal_spec);
  }
  if (!request.ranking_spec.empty()) {
    object["ranking"] = JsonValue(request.ranking_spec);
  }
  object["top_k"] = JsonValue(request.top_k);

  JsonValue::Object options;
  options["max_courses_per_term"] =
      JsonValue(request.options.max_courses_per_term);
  if (request.options.avoid_courses.has_value()) {
    options["avoid"] =
        CourseSetToJson(*request.options.avoid_courses, catalog);
  }
  options["allow_voluntary_skip"] =
      JsonValue(request.options.allow_voluntary_skip);
  options["num_threads"] = JsonValue(request.options.num_threads);
  JsonValue::Object limits;
  limits["max_nodes"] = JsonValue(request.options.limits.max_nodes);
  limits["max_memory_bytes"] =
      JsonValue(static_cast<int64_t>(request.options.limits.max_memory_bytes));
  limits["max_seconds"] = JsonValue(request.options.limits.max_seconds);
  options["limits"] = JsonValue(std::move(limits));
  object["options"] = JsonValue(std::move(options));

  JsonValue::Object config;
  config["enable_time_pruning"] =
      JsonValue(request.config.enable_time_pruning);
  config["enable_availability_pruning"] =
      JsonValue(request.config.enable_availability_pruning);
  config["enforce_min_selection"] =
      JsonValue(request.config.enforce_min_selection);
  config["cache_availability_checks"] =
      JsonValue(request.config.cache_availability_checks);
  object["config"] = JsonValue(std::move(config));

  if (request.filters.active()) {
    JsonValue::Object filters;
    filters["max_term_hours"] = JsonValue(request.filters.max_term_hours);
    filters["max_skips"] = JsonValue(request.filters.max_skips);
    object["filters"] = JsonValue(std::move(filters));
  }

  if (request.degradation.has_value()) {
    object["degradation"] = DegradationPolicyToJson(*request.degradation);
  }

  return JsonValue(std::move(object));
}

Result<ExplorationRequest> ExplorationRequestFromJson(const JsonValue& json,
                                                      const Catalog& catalog) {
  if (!json.is_object()) {
    return Status::InvalidArgument("exploration request must be an object");
  }
  ExplorationRequest request;

  COURSENAV_ASSIGN_OR_RETURN(JsonValue start, json.Get("start"));
  COURSENAV_ASSIGN_OR_RETURN(request.start.term,
                             TermFromJson(start, "term"));
  request.start.completed = catalog.NewCourseSet();
  if (start.Has("completed")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue completed, start.Get("completed"));
    COURSENAV_ASSIGN_OR_RETURN(
        request.start.completed,
        CourseSetFromJson(completed, catalog, "completed"));
  }

  COURSENAV_ASSIGN_OR_RETURN(request.end_term,
                             TermFromJson(json, "end_term"));

  COURSENAV_ASSIGN_OR_RETURN(JsonValue type_value, json.Get("type"));
  COURSENAV_ASSIGN_OR_RETURN(std::string type_name, type_value.GetString());
  COURSENAV_ASSIGN_OR_RETURN(request.type, ParseTaskType(type_name));

  if (json.Has("goal")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue goal_value, json.Get("goal"));
    COURSENAV_ASSIGN_OR_RETURN(request.goal_spec, goal_value.GetString());
    COURSENAV_ASSIGN_OR_RETURN(expr::Expr parsed,
                               expr::ParseBoolExpr(request.goal_spec));
    COURSENAV_ASSIGN_OR_RETURN(std::shared_ptr<const ExprGoal> goal,
                               ExprGoal::Create(parsed, catalog));
    request.goal = std::move(goal);
  }

  if (json.Has("ranking")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue ranking_value, json.Get("ranking"));
    COURSENAV_ASSIGN_OR_RETURN(request.ranking_spec,
                               ranking_value.GetString());
    COURSENAV_ASSIGN_OR_RETURN(request.ranking,
                               RankingFromSpec(request.ranking_spec, catalog));
  }

  if (json.Has("top_k")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue k_value, json.Get("top_k"));
    COURSENAV_ASSIGN_OR_RETURN(int64_t k, k_value.GetInt());
    request.top_k = static_cast<int>(k);
  }

  if (json.Has("options")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue options, json.Get("options"));
    if (options.Has("max_courses_per_term")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                 options.Get("max_courses_per_term"));
      COURSENAV_ASSIGN_OR_RETURN(int64_t m, value.GetInt());
      request.options.max_courses_per_term = static_cast<int>(m);
    }
    if (options.Has("avoid")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue avoid, options.Get("avoid"));
      COURSENAV_ASSIGN_OR_RETURN(
          request.options.avoid_courses,
          CourseSetFromJson(avoid, catalog, "avoid"));
    }
    if (options.Has("allow_voluntary_skip")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                 options.Get("allow_voluntary_skip"));
      COURSENAV_ASSIGN_OR_RETURN(request.options.allow_voluntary_skip,
                                 value.GetBool());
    }
    if (options.Has("num_threads")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                 options.Get("num_threads"));
      COURSENAV_ASSIGN_OR_RETURN(int64_t threads, value.GetInt());
      request.options.num_threads = static_cast<int>(threads);
    }
    if (options.Has("limits")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue limits, options.Get("limits"));
      if (limits.Has("max_nodes")) {
        COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                   limits.Get("max_nodes"));
        COURSENAV_ASSIGN_OR_RETURN(request.options.limits.max_nodes,
                                   value.GetInt());
      }
      if (limits.Has("max_memory_bytes")) {
        COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                   limits.Get("max_memory_bytes"));
        COURSENAV_ASSIGN_OR_RETURN(int64_t bytes, value.GetInt());
        request.options.limits.max_memory_bytes =
            static_cast<size_t>(bytes);
      }
      if (limits.Has("max_seconds")) {
        COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                   limits.Get("max_seconds"));
        COURSENAV_ASSIGN_OR_RETURN(request.options.limits.max_seconds,
                                   value.GetNumber());
      }
    }
  }

  if (json.Has("config")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue config, json.Get("config"));
    struct Flag {
      const char* key;
      bool* slot;
    };
    const Flag flags[] = {
        {"enable_time_pruning", &request.config.enable_time_pruning},
        {"enable_availability_pruning",
         &request.config.enable_availability_pruning},
        {"enforce_min_selection", &request.config.enforce_min_selection},
        {"cache_availability_checks",
         &request.config.cache_availability_checks},
    };
    for (const Flag& flag : flags) {
      if (!config.Has(flag.key)) continue;
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value, config.Get(flag.key));
      COURSENAV_ASSIGN_OR_RETURN(*flag.slot, value.GetBool());
    }
  }

  if (json.Has("filters")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue filters, json.Get("filters"));
    if (filters.Has("max_term_hours")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                 filters.Get("max_term_hours"));
      COURSENAV_ASSIGN_OR_RETURN(request.filters.max_term_hours,
                                 value.GetNumber());
    }
    if (filters.Has("max_skips")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue value,
                                 filters.Get("max_skips"));
      COURSENAV_ASSIGN_OR_RETURN(int64_t skips, value.GetInt());
      request.filters.max_skips = static_cast<int>(skips);
    }
  }

  if (json.Has("degradation")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue degradation,
                               json.Get("degradation"));
    COURSENAV_ASSIGN_OR_RETURN(request.degradation,
                               DegradationPolicyFromJson(degradation));
  }

  return request;
}

namespace {

/// Checks that every key of `value` (when it is an object) is one of
/// `known`. `where` names the object in messages ("options.limits").
Status CheckObjectKeys(const JsonValue& value, std::string_view where,
                       std::initializer_list<std::string_view> known) {
  if (!value.is_object()) {
    return Status::InvalidArgument("'" + std::string(where) +
                                   "' must be an object");
  }
  for (const auto& [key, unused] : value.object()) {
    bool found = false;
    for (std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown field '" + key + "' in " +
                                     std::string(where));
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateRequestJsonSchema(const JsonValue& json) {
  COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
      json, "request",
      {"start", "end_term", "type", "goal", "ranking", "top_k", "options",
       "config", "filters", "degradation"}));
  if (json.Has("start")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue start, json.Get("start"));
    COURSENAV_RETURN_IF_ERROR(
        CheckObjectKeys(start, "start", {"term", "completed"}));
  }
  if (json.Has("options")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue options, json.Get("options"));
    COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
        options, "options",
        {"max_courses_per_term", "avoid", "allow_voluntary_skip",
         "num_threads", "limits"}));
    if (options.Has("limits")) {
      COURSENAV_ASSIGN_OR_RETURN(JsonValue limits, options.Get("limits"));
      COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
          limits, "options.limits",
          {"max_nodes", "max_memory_bytes", "max_seconds"}));
    }
  }
  if (json.Has("config")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue config, json.Get("config"));
    COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
        config, "config",
        {"enable_time_pruning", "enable_availability_pruning",
         "enforce_min_selection", "cache_availability_checks"}));
  }
  if (json.Has("filters")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue filters, json.Get("filters"));
    COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
        filters, "filters", {"max_term_hours", "max_skips"}));
  }
  if (json.Has("degradation")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue degradation,
                               json.Get("degradation"));
    COURSENAV_RETURN_IF_ERROR(CheckObjectKeys(
        degradation, "degradation",
        {"ladder", "time_fraction", "degraded_top_k", "degraded_max_nodes",
         "count_max_nodes"}));
  }
  return Status::OK();
}

}  // namespace coursenav

// coursenav:deterministic — path output order is part of the contract.
#include "plan/executor.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "core/combinations.h"
#include "core/engine.h"
#include "core/enrollment.h"
#include "core/filters.h"
#include "core/parallel_bridge.h"
#include "graph/learning_graph.h"
#include "graph/path.h"
#include "obs/trace.h"
#include "util/check.h"

namespace coursenav::plan {
namespace {

/// Pipeline prologue, part 1 — the input validation all three generators
/// used to repeat: catalog/schedule/start/options consistency plus the
/// exploration window check.
Status ValidateRequest(const Catalog& catalog, const OfferingSchedule& schedule,
                       const ExplorationRequest& request) {
  COURSENAV_RETURN_IF_ERROR(ValidateExplorationInputs(
      catalog, schedule, request.start, request.options));
  if (request.end_term <= request.start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }
  return Status::OK();
}

/// Pipeline prologue, part 2 — the Source operator: the start node n1 with
/// X1 = X and its derived option set (lines 1-3 of Algorithm 1), shared
/// root-construction boilerplate of all three loops.
NodeId ConstructRoot(const Catalog& catalog, const OfferingSchedule& schedule,
                     const ExplorationRequest& request, LearningGraph& graph,
                     obs::ExplorationMetrics& metrics) {
  DynamicBitset root_options =
      ComputeOptions(catalog, schedule, request.start.completed,
                     request.start.term, request.options);
  NodeId root = graph.AddRoot(request.start.term, request.start.completed,
                              root_options);
  metrics.nodes_created += 1;
  return root;
}

/// The deadline-driven pipeline: Source → Expand (Algorithm 1).
Result<GenerationResult> RunDeadline(const ExplorationPlan& plan,
                                     const Catalog& catalog,
                                     const OfferingSchedule& schedule) {
  const ExplorationRequest& request = plan.request;
  const ExplorationOptions& options = request.options;
  const Term end_term = request.end_term;
  COURSENAV_RETURN_IF_ERROR(ValidateRequest(catalog, schedule, request));

  obs::ScopedSpan run_span(obs::kSpanGenerateDeadline);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options,
                                     request.start.term, end_term);
  obs::ExplorationMetrics& metrics = engine.metrics();
  GenerationResult result;
  LearningGraph& graph = result.graph;

  if (plan.parallel) {
    graph.ConfigureShards(plan.workers);
  }

  NodeId root = ConstructRoot(catalog, schedule, request, graph, metrics);
  construct_span->AddInt("catalog_courses", catalog.size());
  construct_span.reset();

  if (plan.parallel) {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);
    internal::ParallelExpandSpec spec;
    spec.catalog = &catalog;
    spec.schedule = &schedule;
    spec.options = &options;
    spec.end_term = end_term;
    result.termination = internal::ExpandFrontierParallel(
        engine, spec, options.num_threads, &graph);
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
    expand_span.AddInt("threads", plan.workers);
  } else {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    // Worklist of nodes with out-degree 0 (line 4). LIFO keeps the frontier
    // small and cache-warm; expansion order does not affect the output set.
    std::vector<NodeId> worklist{root};
    // Reused X_i ∪ W scratch; assignment reuses its capacity per candidate.
    DynamicBitset next_completed;

    while (!worklist.empty()) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      NodeId current = worklist.back();
      worklist.pop_back();
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes, so references stay valid
      // across AddChild; no per-expansion snapshot copies.
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Line 5: nodes in the end semester are goal vertices; stop there.
      if (term == end_term) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        continue;
      }

      bool expanded = false;
      auto add_child = [&](const DynamicBitset& selection) {
        next_completed = completed;
        next_completed |= selection;  // line 11: X_{i+1} = X_i ∪ W
        DynamicBitset next_options = ComputeOptions(
            catalog, schedule, next_completed, term.Next(), options);  // l.13
        NodeId child =
            graph.AddChild(current, selection, DynamicBitset(next_completed),
                           std::move(next_options));
        metrics.nodes_created += 1;
        metrics.edges_created += 1;
        worklist.push_back(child);
        expanded = true;
      };

      // Lines 7-14: one child per course combination W ⊆ Y_i, |W| <= m.
      if (!node_options.empty()) {
        bool completed_enumeration = ForEachSelection(
            node_options, 1, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              if (!engine.CheckBudget(graph).ok()) return false;
              add_child(selection);
              return true;
            });
        if (!completed_enumeration) {
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      // Skip edge: advance a semester with an empty selection when nothing
      // is electable now but courses remain later (Figure 3's n4 → n7).
      // With allow_voluntary_skip the student may idle unconditionally.
      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        add_child(DynamicBitset(catalog.size()));
      }

      if (!expanded) {
        // Dead end: no options now and none later. The path ends here.
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  if (CN_DCHECK_IS_ON()) result.graph.CheckInvariants();
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  if (!result.termination.ok()) return result;

  result.termination = Status::OK();
  return result;
}

/// The goal-driven pipeline: Source → Expand → Prune (§4.2).
Result<GenerationResult> RunGoal(const ExplorationPlan& plan,
                                 const Catalog& catalog,
                                 const OfferingSchedule& schedule,
                                 const ExecHooks& hooks) {
  const ExplorationRequest& request = plan.request;
  const ExplorationOptions& options = request.options;
  const GoalDrivenConfig& config = request.config;
  const Goal& goal = *request.goal;
  const Term end_term = request.end_term;
  COURSENAV_RETURN_IF_ERROR(ValidateRequest(catalog, schedule, request));

  obs::ScopedSpan run_span(obs::kSpanGenerateGoal);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options,
                                     request.start.term, end_term);
  obs::ExplorationMetrics& metrics = engine.metrics();

  GenerationResult result;
  LearningGraph& graph = result.graph;

  if (plan.parallel) {
    graph.ConfigureShards(plan.workers);
  }

  NodeId root = ConstructRoot(catalog, schedule, request, graph, metrics);
  construct_span->AddInt("catalog_courses", catalog.size());
  construct_span.reset();  // engine + root built; close the span

  if (plan.parallel) {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);
    internal::ParallelExpandSpec spec;
    spec.catalog = &catalog;
    spec.schedule = &schedule;
    spec.options = &options;
    spec.end_term = end_term;
    spec.goal = &goal;
    spec.config = &config;
    spec.shared_availability = hooks.shared_availability;
    result.termination = internal::ExpandFrontierParallel(
        engine, spec, options.num_threads, &graph);
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
    expand_span.AddInt("threads", plan.workers);

    result.stats = engine.StatsView();
    run_span.AddInt("nodes_created", result.stats.nodes_created);
    run_span.AddInt("goal_paths", result.stats.goal_paths);
    return result;
  }

  internal::PruningOracle oracle(goal, engine, options, config,
                                 /*metrics=*/nullptr,
                                 hooks.shared_availability);
  using Verdict = internal::PruningOracle::Verdict;
  {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    std::vector<NodeId> worklist{root};
    // Candidates are staged into a structure-of-arrays batch and classified
    // wholesale (clause-major kernels); kept rows materialize in staging
    // order, which reproduces the node-at-a-time output exactly.
    internal::CandidateBatch batch;
    batch.Configure(catalog.size());
    std::vector<Verdict> verdicts;
    // Reused scratch sets: pruned candidates cost no heap traffic.
    DynamicBitset next_completed(catalog.size());
    DynamicBitset selection_scratch(catalog.size());
    const DynamicBitset empty_selection(catalog.size());

    while (!worklist.empty()) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      NodeId current = worklist.back();
      worklist.pop_back();
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes; references stay valid across
      // AddChild (no per-expansion snapshot copies).
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Stop at goal nodes: the requirement already holds here (§4.2.3).
      if (goal.IsSatisfied(completed)) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        continue;
      }
      // Stop at the end semester; this leaf misses the goal.
      if (term == end_term) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
        continue;
      }

      const Term child_term = term.Next();
      const int left_parent = oracle.LeftAt(completed);

      bool expanded = false;
      // Classifies the staged batch and materializes kept candidates in
      // staging order (same children, same worklist order as the old
      // candidate-at-a-time loop).
      auto flush_batch = [&]() {
        if (batch.empty()) return;
        oracle.ClassifyBatch(batch, child_term, left_parent, &verdicts);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (verdicts[i] != Verdict::kKeep) continue;
          batch.CopyCompletedTo(i, &next_completed);
          batch.CopySelectionTo(i, &selection_scratch);
          DynamicBitset next_options = ComputeOptions(
              catalog, schedule, next_completed, child_term, options);
          NodeId child = graph.AddChild(current, selection_scratch,
                                        DynamicBitset(next_completed),
                                        std::move(next_options));
          metrics.nodes_created += 1;
          metrics.edges_created += 1;
          worklist.push_back(child);
          expanded = true;
        }
        batch.Clear();
      };

      // Selections below Equation 1's minimum size provably miss the
      // deadline; skip enumerating them but account them as time-pruned.
      int min_selection = oracle.MinSelectionSize(left_parent, term);
      if (min_selection > 1) {
        // Only sizes up to m were ever candidates.
        int skipped_max =
            std::min(min_selection - 1, options.max_courses_per_term);
        oracle.AccountSkippedTimePruned(static_cast<int64_t>(
            CountSelections(node_options.count(), 1, skipped_max)));
      }

      if (!node_options.empty() && min_selection <= node_options.count()) {
        bool completed_enumeration = ForEachSelection(
            node_options, min_selection, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              // Near the node budget, catch the graph up to exactly the
              // state the unbatched loop would have, so the per-selection
              // check below trips at the same selection it always did.
              if (!batch.empty() &&
                  engine.MightExceedNodeBudget(graph, batch.size())) {
                flush_batch();
              }
              if (!engine.CheckBudget(graph).ok()) return false;
              batch.Push(completed, selection);
              if (batch.full()) flush_batch();
              return true;
            });
        if (!completed_enumeration) {
          flush_batch();
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      // Skip edge (empty selection), under the same pruning regime.
      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        batch.Push(completed, empty_selection);
      }
      flush_batch();

      if (!expanded) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  oracle.EmitStageSpans();
  // Structural self-checks (dcheck builds): the run's graph and the
  // oracle's availability cache must both be consistent before results
  // surface.
  if (CN_DCHECK_IS_ON()) {
    graph.CheckInvariants();
    oracle.CheckInvariants();
  }
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  run_span.AddInt("goal_paths", result.stats.goal_paths);
  return result;
}

/// Frontier entry ordered by f = g + h (accumulated cost plus the
/// ranking's admissible cost-to-go bound), with insertion order as the
/// deterministic tie-break. With a consistent heuristic, goal statuses
/// still pop in non-decreasing true cost (f == g at goals), preserving
/// Lemma 2's exact top-k.
struct FrontierEntry {
  double cost;  // f-value
  int64_t sequence;
  NodeId node;
};

struct FrontierCompare {
  /// std::priority_queue is a max-heap; invert for a min-heap.
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.sequence > b.sequence;
  }
};

/// The ranked pipeline: Source → Expand → Prune → Rank → Limit (§4.3).
/// Always serial (see the planner's "ranked runs serial" note).
Result<RankedResult> RunRanked(const ExplorationPlan& plan,
                               const Catalog& catalog,
                               const OfferingSchedule& schedule,
                               const ExecHooks& hooks) {
  const ExplorationRequest& request = plan.request;
  const ExplorationOptions& options = request.options;
  const GoalDrivenConfig& config = request.config;
  const Goal& goal = *request.goal;
  const RankingFunction& ranking = *request.ranking;
  const Term end_term = request.end_term;
  const int k = request.top_k;
  COURSENAV_RETURN_IF_ERROR(ValidateRequest(catalog, schedule, request));
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }

  obs::ScopedSpan run_span(obs::kSpanGenerateRanked);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options,
                                     request.start.term, end_term);
  internal::PruningOracle oracle(goal, engine, options, config,
                                 /*metrics=*/nullptr,
                                 hooks.shared_availability);
  using Verdict = internal::PruningOracle::Verdict;
  obs::ExplorationMetrics& metrics = engine.metrics();
  /// Aggregate wall time spent inside the ranking function (EdgeCost +
  /// admissible bound), emitted as one "rank/evaluate" span per run.
  obs::StageAccumulator rank_stage;

  RankedResult result;
  LearningGraph graph;

  NodeId root = ConstructRoot(catalog, schedule, request, graph, metrics);
  construct_span.reset();

  {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                        FrontierCompare>
        frontier;
    // Same staged-batch pruning as RunGoal (see there); ranking costs are
    // computed per kept candidate at flush, in staging order, so sequence
    // numbers — the frontier tie-break — are assigned exactly as before.
    internal::CandidateBatch batch;
    batch.Configure(catalog.size());
    std::vector<Verdict> verdicts;
    // Reused scratch sets: pruned candidates cost no heap traffic.
    DynamicBitset next_completed(catalog.size());
    DynamicBitset selection_scratch(catalog.size());
    const DynamicBitset empty_selection(catalog.size());
    int64_t sequence = 0;
    const int m = options.max_courses_per_term;
    {
      obs::StageSample sample(&rank_stage);
      frontier.push(
          {ranking.RemainingCostLowerBound(request.start.completed, goal, m),
           sequence++, root});
    }

    while (!frontier.empty() && static_cast<int>(result.paths.size()) < k) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      FrontierEntry entry = frontier.top();
      frontier.pop();
      NodeId current = entry.node;
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes; references stay valid across
      // AddChildWithPathCost (no per-expansion snapshot copies). The
      // best-first frontier revisits arbitrary nodes, which arena stability
      // also makes safe.
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Popping in cost order makes each goal hit the next-cheapest path.
      if (goal.IsSatisfied(completed)) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        LearningPath path = LearningPath::FromGraph(graph, current);
        result.paths.push_back(std::move(path));
        continue;
      }
      if (term == end_term) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
        continue;
      }

      const Term child_term = term.Next();
      const int left_parent = oracle.LeftAt(completed);

      bool expanded = false;
      auto flush_batch = [&]() {
        if (batch.empty()) return;
        oracle.ClassifyBatch(batch, child_term, left_parent, &verdicts);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (verdicts[i] != Verdict::kKeep) continue;
          batch.CopyCompletedTo(i, &next_completed);
          batch.CopySelectionTo(i, &selection_scratch);
          double edge_cost;
          double child_cost;
          double cost_to_go;
          {
            obs::StageSample sample(&rank_stage);
            edge_cost = ranking.EdgeCost(selection_scratch, term);
            child_cost = ranking.Combine(node.path_cost, edge_cost);
            cost_to_go =
                ranking.RemainingCostLowerBound(next_completed, goal, m);
          }
          DynamicBitset next_options = ComputeOptions(
              catalog, schedule, next_completed, child_term, options);
          NodeId child = graph.AddChildWithPathCost(
              current, selection_scratch, DynamicBitset(next_completed),
              std::move(next_options), edge_cost, child_cost);
          metrics.nodes_created += 1;
          metrics.edges_created += 1;
          frontier.push({child_cost + cost_to_go, sequence++, child});
          expanded = true;
        }
        batch.Clear();
      };

      int min_selection = oracle.MinSelectionSize(left_parent, term);
      if (min_selection > 1) {
        int skipped_max =
            std::min(min_selection - 1, options.max_courses_per_term);
        oracle.AccountSkippedTimePruned(static_cast<int64_t>(
            CountSelections(node_options.count(), 1, skipped_max)));
      }

      if (!node_options.empty() && min_selection <= node_options.count()) {
        bool completed_enumeration = ForEachSelection(
            node_options, min_selection, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              if (!batch.empty() &&
                  engine.MightExceedNodeBudget(graph, batch.size())) {
                flush_batch();
              }
              if (!engine.CheckBudget(graph).ok()) return false;
              batch.Push(completed, selection);
              if (batch.full()) flush_batch();
              return true;
            });
        if (!completed_enumeration) {
          flush_batch();
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        batch.Push(completed, empty_selection);
      }
      flush_batch();

      if (!expanded) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  rank_stage.Emit(obs::kSpanRankEvaluate);
  oracle.EmitStageSpans();
  if (CN_DCHECK_IS_ON()) {
    graph.CheckInvariants();
    oracle.CheckInvariants();
  }
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  run_span.AddInt("paths_returned",
                  static_cast<int64_t>(result.paths.size()));
  return result;
}

/// The Filter operator: declarative post-rank path filters. Runs after
/// Limit — filters cut the top-k answer down rather than backfilling it,
/// matching the CLI's long-standing semantics.
void ApplyFilterStage(const ExplorationRequest& request,
                      const Catalog& catalog, ExplorationResponse& response) {
  if (!request.filters.active() || !response.ranked.has_value()) return;
  std::vector<std::shared_ptr<const PathFilter>> parts;
  if (request.filters.max_term_hours > 0.0) {
    parts.push_back(std::make_shared<MaxTermWorkloadFilter>(
        &catalog, request.filters.max_term_hours));
  }
  if (request.filters.max_skips >= 0) {
    parts.push_back(
        std::make_shared<MaxSkipsFilter>(request.filters.max_skips));
  }
  AllOfFilter filter(std::move(parts));
  response.paths_before_filters =
      static_cast<int64_t>(response.ranked->paths.size());
  response.filter_description = filter.Describe();
  response.ranked->paths =
      FilterPaths(std::move(response.ranked->paths), filter);
}

}  // namespace

Result<ExplorationResponse> Executor::Run(const ExplorationPlan& plan,
                                          const ExecHooks& hooks) const {
  const ExplorationRequest& request = plan.request;
  ExplorationResponse response;
  switch (request.type) {
    case TaskType::kDeadlineDriven: {
      COURSENAV_ASSIGN_OR_RETURN(
          GenerationResult generation,
          RunDeadline(plan, *catalog_, *schedule_));
      response.generation = std::move(generation);
      return response;
    }
    case TaskType::kGoalDriven: {
      // Re-checked here so hand-built plans fail the same way lowered ones
      // do.
      if (request.goal == nullptr) {
        return Status::InvalidArgument(
            "goal-driven exploration requires a goal");
      }
      COURSENAV_ASSIGN_OR_RETURN(GenerationResult generation,
                                 RunGoal(plan, *catalog_, *schedule_, hooks));
      response.generation = std::move(generation);
      return response;
    }
    case TaskType::kRanked: {
      if (request.goal == nullptr) {
        return Status::InvalidArgument("ranked exploration requires a goal");
      }
      if (request.ranking == nullptr) {
        return Status::InvalidArgument(
            "ranked exploration requires a ranking function");
      }
      COURSENAV_ASSIGN_OR_RETURN(RankedResult ranked,
                                 RunRanked(plan, *catalog_, *schedule_, hooks));
      response.ranked = std::move(ranked);
      ApplyFilterStage(request, *catalog_, response);
      return response;
    }
  }
  return Status::InvalidArgument("unknown exploration task type");
}

Result<ExplorationResponse> Execute(const Catalog& catalog,
                                    const OfferingSchedule& schedule,
                                    const ExplorationRequest& request) {
  Result<ExplorationPlan> lowered = [&request] {
    obs::ScopedSpan span(obs::kSpanPlanLower);
    return Planner::Lower(request);
  }();
  COURSENAV_RETURN_IF_ERROR(lowered.status());
  return Executor(&catalog, &schedule).Run(*lowered);
}

}  // namespace coursenav::plan

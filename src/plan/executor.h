#ifndef COURSENAV_PLAN_EXECUTOR_H_
#define COURSENAV_PLAN_EXECUTOR_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "core/pruning.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "util/result.h"

namespace coursenav::plan {

/// Optional process-level machinery a caller threads into one execution.
/// Everything here is borrowed and must outlive the Run() call; the
/// default-constructed value reproduces the historical self-contained run.
struct ExecHooks {
  /// Availability-pruning L3 shared across runs: handed to the serial
  /// pruning oracle (in place of no L2) and to every parallel worker's
  /// oracle (in place of the run-local L2). Provided by the epoch-keyed
  /// request cache (src/cache/), which guarantees the tier only ever holds
  /// verdicts computed against the same catalog epoch and goal. Null runs
  /// with per-run caching exactly as before.
  internal::SharedAvailabilityCache* shared_availability = nullptr;
};

/// Runs lowered plans over the shared exploration machinery
/// (`internal::ExplorationEngine` + the parallel frontier engine). The one
/// place that owns the pipeline prologue (input validation, spans, engine
/// and root construction), the budget sentinels, and the three expansion
/// loops the generators used to fork.
///
/// Determinism contract: for any plan, the produced graphs and path order
/// are byte-identical to the pre-pipeline generators', serial and
/// parallel (enforced by the golden-equivalence suite, ctest label
/// `plan`).
class Executor {
 public:
  /// `catalog` and `schedule` are borrowed and must outlive the executor.
  Executor(const Catalog* catalog, const OfferingSchedule* schedule)
      : catalog_(catalog), schedule_(schedule) {}

  /// Executes `plan` and returns the response matching its task type.
  /// Budget exhaustion is reported via the payload's `termination`, not as
  /// an error (Table 2 semantics).
  Result<ExplorationResponse> Run(const ExplorationPlan& plan) const {
    return Run(plan, ExecHooks{});
  }

  /// Like Run(plan), with caller-provided process machinery (shared cache
  /// tiers). Hooks never change what is computed — a hooked run's output
  /// is byte-identical to an unhooked one — only what gets recomputed.
  Result<ExplorationResponse> Run(const ExplorationPlan& plan,
                                  const ExecHooks& hooks) const;

 private:
  const Catalog* catalog_;
  const OfferingSchedule* schedule_;
};

/// One-call convenience: Planner::Lower + Executor::Run.
Result<ExplorationResponse> Execute(const Catalog& catalog,
                                    const OfferingSchedule& schedule,
                                    const ExplorationRequest& request);

}  // namespace coursenav::plan

#endif  // COURSENAV_PLAN_EXECUTOR_H_

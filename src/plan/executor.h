#ifndef COURSENAV_PLAN_EXECUTOR_H_
#define COURSENAV_PLAN_EXECUTOR_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "util/result.h"

namespace coursenav::plan {

/// Runs lowered plans over the shared exploration machinery
/// (`internal::ExplorationEngine` + the parallel frontier engine). The one
/// place that owns the pipeline prologue (input validation, spans, engine
/// and root construction), the budget sentinels, and the three expansion
/// loops the generators used to fork.
///
/// Determinism contract: for any plan, the produced graphs and path order
/// are byte-identical to the pre-pipeline generators', serial and
/// parallel (enforced by the golden-equivalence suite, ctest label
/// `plan`).
class Executor {
 public:
  /// `catalog` and `schedule` are borrowed and must outlive the executor.
  Executor(const Catalog* catalog, const OfferingSchedule* schedule)
      : catalog_(catalog), schedule_(schedule) {}

  /// Executes `plan` and returns the response matching its task type.
  /// Budget exhaustion is reported via the payload's `termination`, not as
  /// an error (Table 2 semantics).
  Result<ExplorationResponse> Run(const ExplorationPlan& plan) const;

 private:
  const Catalog* catalog_;
  const OfferingSchedule* schedule_;
};

/// One-call convenience: Planner::Lower + Executor::Run.
Result<ExplorationResponse> Execute(const Catalog& catalog,
                                    const OfferingSchedule& schedule,
                                    const ExplorationRequest& request);

}  // namespace coursenav::plan

#endif  // COURSENAV_PLAN_EXECUTOR_H_

#ifndef COURSENAV_PLAN_REQUEST_H_
#define COURSENAV_PLAN_REQUEST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/generation.h"
#include "core/options.h"
#include "core/pruning.h"
#include "core/ranked_generator.h"
#include "core/ranking.h"
#include "requirements/goal.h"
#include "util/json.h"
#include "util/result.h"

namespace coursenav {

/// The exploration task type (Section 4's three algorithm families).
enum class TaskType { kDeadlineDriven, kGoalDriven, kRanked };

/// Canonical wire name of a task type ("deadline" / "goal" / "ranked").
std::string_view TaskTypeName(TaskType type);

/// Parses a TaskTypeName back to the enum.
Result<TaskType> ParseTaskType(std::string_view name);

/// The graceful-degradation ladder: each level trades answer fidelity for
/// survival under a budget. Rungs are tried top to bottom until one
/// completes inside its slice of the request's budget.
enum class DegradationLevel {
  /// The request exactly as posed.
  kFull = 0,
  /// Same task with every pruning strategy forced on (and, optionally, a
  /// tighter node cap): the cheapest run that still materializes the same
  /// answer set for pruning-correct goals.
  kAggressivePruning = 1,
  /// Ranked top-k with a reduced k: a handful of best plans instead of the
  /// full graph. Requires a goal and a ranking.
  kRankedSmallK = 2,
  /// DAG-memoized path counting only: "how many futures remain" without
  /// materializing any of them — the cheapest nonempty answer.
  kCountOnly = 3,
};

std::string_view DegradationLevelName(DegradationLevel level);

/// Parses the canonical rung-level name ("full", "aggressive-pruning",
/// "ranked-small-k", "count-only") back to the enum.
Result<DegradationLevel> ParseDegradationLevel(std::string_view name);

/// Tuning for the degradation ladder (service-layer
/// ExploreWithDegradation); carried declaratively on an
/// ExplorationRequest so a request file fully describes how it may
/// degrade. The planner rewrites a request for each rung — see
/// plan/planner.h RewriteForDegradation.
struct DegradationPolicy {
  /// Rungs to try, in order. Empty = the default ladder for the request's
  /// task type (see DefaultLadder in service/degradation.h).
  std::vector<DegradationLevel> ladder;

  /// Fraction of the *remaining* time budget granted to each rung except
  /// the last, which gets everything left. 0.5 means: full request gets
  /// half the deadline, the first fallback half of what remains, and so
  /// on — the ladder as a whole never exceeds the caller's deadline.
  double time_fraction = 0.5;

  /// k used by the kRankedSmallK rung (never more than the request's k).
  int degraded_top_k = 3;

  /// Node cap for degraded (non-kFull) materializing rungs; 0 = inherit
  /// the request's limit.
  int64_t degraded_max_nodes = 0;

  /// Distinct-status cap for the kCountOnly rung; 0 = inherit. Counting
  /// memoizes statuses rather than materializing nodes, so it usually
  /// deserves a far larger cap than the graph rungs.
  int64_t count_max_nodes = 0;
};

/// Declarative post-generation path filters for ranked requests (the
/// paper's Section 6 "customizable filters"), applied by the executor's
/// Filter stage after the top-k Limit — so fewer than k paths may
/// survive, same as filtering the CLI's output by hand.
struct PathFilterSpec {
  /// Per-semester workload ceiling in weekly hours; 0 = off.
  double max_term_hours = 0.0;
  /// Maximum skipped (empty-selection) semesters; -1 = off.
  int max_skips = -1;

  bool active() const { return max_term_hours > 0.0 || max_skips >= 0; }
};

/// A complete, declarative exploration request — the paper's front-end
/// parameters (Figure 2): enrollment status, horizon, goal, constraints,
/// ranking, and how the answer may degrade under budget pressure. This is
/// the single input of the planner/executor pipeline (plan/planner.h);
/// every public entry point — the Generate*Paths facades, the
/// CourseNavigator service, the CLI, and the degradation ladder — lowers
/// to one of these.
///
/// JSON round-trip: ExplorationRequestFromJson / ExplorationRequestToJson
/// below. The resolved `goal` / `ranking` pointers are the executable
/// form; `goal_spec` / `ranking_spec` are their declarative sources (a
/// boolean course expression and a ranking name), kept alongside so a
/// parsed request serializes back losslessly. Requests built in code with
/// bespoke Goal / RankingFunction objects have empty specs and cannot be
/// serialized (ToJson then fails).
struct ExplorationRequest {
  /// Current enrollment status (semester + completed courses).
  EnrollmentStatus start;
  /// The end semester `d` (exploration horizon).
  Term end_term;
  TaskType type = TaskType::kDeadlineDriven;
  /// Required for kGoalDriven and kRanked.
  std::shared_ptr<const Goal> goal;
  /// Required for kRanked.
  std::shared_ptr<const RankingFunction> ranking;
  /// Number of top paths for kRanked.
  int top_k = 10;
  /// Student constraints (max load, avoided courses, budgets, threads).
  ExplorationOptions options;
  /// Pruning configuration for goal-driven and ranked tasks.
  GoalDrivenConfig config;
  /// Post-rank path filters (kRanked only).
  PathFilterSpec filters;
  /// How the request may degrade under budget pressure; consulted by
  /// ExploreWithDegradation when the caller passes no explicit policy.
  std::optional<DegradationPolicy> degradation;

  /// Declarative sources for JSON round-tripping (see above).
  std::string goal_spec;
  std::string ranking_spec;
};

/// The union of the pipeline's outputs; exactly one of
/// `generation`/`ranked` is populated, matching the request's task type.
struct ExplorationResponse {
  std::optional<GenerationResult> generation;  // deadline- or goal-driven
  std::optional<RankedResult> ranked;          // ranked top-k

  /// For ranked responses whose request carried active filters: how many
  /// paths the search emitted before the Filter stage, and the filter's
  /// human-readable description. `paths_before_filters` is -1 when no
  /// filter ran.
  int64_t paths_before_filters = -1;
  std::string filter_description;
};

/// Serializes a request to its canonical JSON document. Fails
/// (InvalidArgument) when the request holds a resolved goal or ranking
/// with no declarative spec — such requests exist only in memory.
/// `catalog` maps course ids back to codes for the completed/avoid sets.
Result<JsonValue> ExplorationRequestToJson(const ExplorationRequest& request,
                                           const Catalog& catalog);

/// Parses a request document and resolves its specs against `catalog`:
/// `goal` becomes an ExprGoal compiled from `goal_spec`, `ranking` one of
/// the built-in rankings ("time", "workload", "bottleneck-workload") —
/// rankings that need external models (reliability) are not
/// JSON-constructible. The catalog must outlive the returned request.
///
/// Round-trip contract: FromJson(ToJson(r)) reproduces `r` field for
/// field, and ToJson(FromJson(j)) reproduces the canonical form of `j`.
Result<ExplorationRequest> ExplorationRequestFromJson(
    const JsonValue& json, const Catalog& catalog);

/// Strict structural check of a request document: every key at every level
/// must be one the round-trip schema knows. ExplorationRequestFromJson
/// itself is lax (it ignores unknown keys, so hand-written request files
/// keep working); the serving layer calls this first so a typo'd field
/// ("deadine_ms", "max_node") is a crisp rejection instead of a silently
/// ignored constraint.
Status ValidateRequestJsonSchema(const JsonValue& json);

}  // namespace coursenav

#endif  // COURSENAV_PLAN_REQUEST_H_

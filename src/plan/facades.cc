// Implements the three public Generate*Paths entry points declared in
// src/core/{deadline,goal,ranked}_generator.h as thin facades over the
// planner/executor pipeline. Dependency inversion, same pattern as
// core/parallel_bridge.h: `core` declares the API (it may not include
// `plan` headers — coursenav-lint enforces the layering DAG), and this
// file, compiled into coursenav_plan, provides the definitions. Every
// caller therefore runs through one pipeline — requests, plans, budget
// sentinels, spans, and metrics are made once, not three times.
#include <memory>
#include <utility>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "util/check.h"

namespace coursenav {

namespace {

/// Non-owning shared_ptr view of a caller-owned object (the aliasing
/// constructor with an empty control block). The facades' reference
/// parameters outlive the call by contract.
template <typename T>
std::shared_ptr<const T> Borrow(const T& object) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &object);
}

}  // namespace

Result<GenerationResult> GenerateDeadlineDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kDeadlineDriven;
  request.options = options;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             plan::Execute(catalog, schedule, request));
  CN_CHECK(response.generation.has_value());
  return std::move(*response.generation);
}

Result<GenerationResult> GenerateGoalDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kGoalDriven;
  request.goal = Borrow(goal);
  request.options = options;
  request.config = config;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             plan::Execute(catalog, schedule, request));
  CN_CHECK(response.generation.has_value());
  return std::move(*response.generation);
}

Result<RankedResult> GenerateRankedPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const RankingFunction& ranking, int k, const ExplorationOptions& options,
    const GoalDrivenConfig& config) {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kRanked;
  request.goal = Borrow(goal);
  request.ranking = Borrow(ranking);
  request.top_k = k;
  request.options = options;
  request.config = config;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             plan::Execute(catalog, schedule, request));
  CN_CHECK(response.ranked.has_value());
  return std::move(*response.ranked);
}

}  // namespace coursenav

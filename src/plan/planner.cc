#include "plan/planner.h"

#include <algorithm>
#include <utility>

#include "core/parallel_bridge.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace coursenav::plan {

std::string_view OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource:
      return "Source";
    case OperatorKind::kExpand:
      return "Expand";
    case OperatorKind::kPrune:
      return "Prune";
    case OperatorKind::kFilter:
      return "Filter";
    case OperatorKind::kRank:
      return "Rank";
    case OperatorKind::kLimit:
      return "Limit";
  }
  return "Unknown";
}

std::string ExplorationPlan::Describe() const {
  std::string out = StrFormat(
      "plan: %s exploration, %s\n",
      std::string(TaskTypeName(request.type)).c_str(),
      parallel ? StrFormat("parallel (%d workers)", workers).c_str()
               : "serial");
  for (const PlanOperator& op : ops) {
    out += StrFormat("  %s(%s)\n",
                     std::string(OperatorKindName(op.kind)).c_str(),
                     op.detail.c_str());
  }
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

namespace {

std::string PruneDetail(const GoalDrivenConfig& config) {
  std::vector<std::string> on;
  if (config.enable_time_pruning) on.push_back("time");
  if (config.enable_availability_pruning) on.push_back("availability");
  if (config.enforce_min_selection) on.push_back("min-selection");
  if (config.cache_availability_checks) on.push_back("cached");
  if (on.empty()) return "off";
  std::string detail;
  for (size_t i = 0; i < on.size(); ++i) {
    if (i > 0) detail += ", ";
    detail += on[i];
  }
  return detail;
}

std::string FilterDetail(const PathFilterSpec& filters) {
  std::string detail;
  if (filters.max_term_hours > 0.0) {
    detail += StrFormat("max_term_hours=%.1f", filters.max_term_hours);
  }
  if (filters.max_skips >= 0) {
    if (!detail.empty()) detail += ", ";
    detail += StrFormat("max_skips=%d", filters.max_skips);
  }
  return detail;
}

}  // namespace

Result<ExplorationPlan> Planner::Lower(const ExplorationRequest& request) {
  ExplorationPlan plan;
  plan.request = request;

  // The serial/parallel decision, made once for the whole pipeline. Ranked
  // search is inherently order-dependent (best-first frontier), so it
  // never parallelizes — but a caller asking for threads deserves to hear
  // that explicitly instead of a silent ignore.
  const bool wants_threads = request.options.num_threads != 0;
  if (request.type != TaskType::kRanked && wants_threads) {
    plan.parallel = true;
    plan.workers = internal::EffectiveWorkers(request.options.num_threads);
  }

  const std::string source_detail =
      StrFormat("start=%s, end=%s", request.start.term.ToString().c_str(),
                request.end_term.ToString().c_str());
  const std::string expand_detail =
      plan.parallel
          ? StrFormat("work-stealing frontier, %d workers", plan.workers)
          : "serial LIFO worklist";

  switch (request.type) {
    case TaskType::kDeadlineDriven:
      plan.ops.push_back({OperatorKind::kSource, source_detail});
      plan.ops.push_back({OperatorKind::kExpand, expand_detail});
      return plan;

    case TaskType::kGoalDriven:
      if (request.goal == nullptr) {
        return Status::InvalidArgument(
            "goal-driven exploration requires a goal");
      }
      plan.ops.push_back({OperatorKind::kSource, source_detail});
      plan.ops.push_back({OperatorKind::kExpand, expand_detail});
      plan.ops.push_back({OperatorKind::kPrune, PruneDetail(request.config)});
      return plan;

    case TaskType::kRanked: {
      if (request.goal == nullptr) {
        return Status::InvalidArgument("ranked exploration requires a goal");
      }
      if (request.ranking == nullptr) {
        return Status::InvalidArgument(
            "ranked exploration requires a ranking function");
      }
      if (wants_threads) {
        std::string note = StrFormat(
            "ranked runs serial: best-first top-k is order-dependent, "
            "ignoring num_threads=%d",
            request.options.num_threads);
        COURSENAV_LOG(kInfo) << note;
        plan.notes.push_back(std::move(note));
      }
      plan.ops.push_back({OperatorKind::kSource, source_detail});
      plan.ops.push_back(
          {OperatorKind::kExpand, "serial best-first frontier"});
      plan.ops.push_back({OperatorKind::kPrune, PruneDetail(request.config)});
      plan.ops.push_back(
          {OperatorKind::kRank, "ranking=" + request.ranking->name()});
      plan.ops.push_back(
          {OperatorKind::kLimit, StrFormat("k=%d", request.top_k)});
      if (request.filters.active()) {
        plan.ops.push_back(
            {OperatorKind::kFilter, FilterDetail(request.filters)});
      }
      return plan;
    }
  }
  return Status::InvalidArgument("unknown exploration task type");
}

Result<ExplorationRequest> RewriteForDegradation(
    const ExplorationRequest& request, DegradationLevel level,
    const DegradationPolicy& policy) {
  ExplorationRequest attempt = request;
  switch (level) {
    case DegradationLevel::kFull:
      break;
    case DegradationLevel::kAggressivePruning:
      if (request.goal == nullptr || request.type == TaskType::kRanked) {
        return Status::FailedPrecondition(
            "aggressive pruning needs a goal-driven request");
      }
      attempt.type = TaskType::kGoalDriven;
      attempt.config.enable_time_pruning = true;
      attempt.config.enable_availability_pruning = true;
      attempt.config.enforce_min_selection = true;
      attempt.config.cache_availability_checks = true;
      break;
    case DegradationLevel::kRankedSmallK:
      if (request.goal == nullptr || request.ranking == nullptr) {
        return Status::FailedPrecondition(
            "ranked fallback needs a goal and a ranking");
      }
      attempt.type = TaskType::kRanked;
      attempt.top_k =
          std::max(1, std::min(request.top_k, policy.degraded_top_k));
      break;
    case DegradationLevel::kCountOnly:
      if (policy.count_max_nodes > 0) {
        attempt.options.limits.max_nodes = policy.count_max_nodes;
      }
      break;
  }
  if (level != DegradationLevel::kFull && policy.degraded_max_nodes > 0 &&
      level != DegradationLevel::kCountOnly) {
    attempt.options.limits.max_nodes = policy.degraded_max_nodes;
  }
  return attempt;
}

}  // namespace coursenav::plan

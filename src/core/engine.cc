#include "core/engine.h"

#include "util/string_util.h"

namespace coursenav::internal {

ExplorationEngine::ExplorationEngine(const Catalog& catalog,
                                     const OfferingSchedule& schedule,
                                     const ExplorationOptions& options,
                                     Term start, Term end)
    : options_(options),
      metrics_(&registry_),
      budget_(options.limits.max_seconds, options.cancel),
      start_(start),
      end_(end),
      empty_set_(catalog.size()) {
  int horizon = end - start;  // semesters in [start, end)
  if (horizon < 0) horizon = 0;
  available_from_.assign(static_cast<size_t>(horizon),
                         DynamicBitset(catalog.size()));
  // Suffix unions, last enrollable semester first.
  for (int k = horizon - 1; k >= 0; --k) {
    DynamicBitset acc = schedule.OfferedIn(start + k);
    if (options.avoid_courses.has_value()) {
      acc.Subtract(*options.avoid_courses);
    }
    if (k + 1 < horizon) acc |= available_from_[static_cast<size_t>(k + 1)];
    available_from_[static_cast<size_t>(k)] = std::move(acc);
  }
}

ExplorationEngine::~ExplorationEngine() {
  metrics_.Publish();
  obs::MetricRegistry& global = obs::GlobalMetrics();
  registry_.AccumulateInto(&global);
  global.GetCounter(obs::kMetricRuns)->Increment();
  global.GetHistogram(obs::kMetricRuntimeMicros)
      ->Observe(static_cast<int64_t>(ElapsedSeconds() * 1e6));
  global.GetGauge(obs::kMetricPeakNodes)->UpdateMax(metrics_.nodes_created);
}

const DynamicBitset& ExplorationEngine::AvailableFrom(Term term) const {
  int k = term - start_;
  if (k < 0) k = 0;
  if (k >= static_cast<int>(available_from_.size())) return empty_set_;
  return available_from_[static_cast<size_t>(k)];
}

bool ExplorationEngine::FutureCourseExists(const DynamicBitset& completed,
                                           Term term) const {
  const DynamicBitset& later = AvailableFrom(term.Next());
  DynamicBitset remaining = later;
  remaining.Subtract(completed);
  return !remaining.empty();
}

Status ExplorationEngine::CheckBudget(const LearningGraph& graph) {
  ++metrics_.budget_checks;
  if (graph.allocation_failed()) {
    return Status::ResourceExhausted(
        "simulated allocation failure (fault injection)");
  }
  const ExplorationLimits& limits = options_.limits;
  if (limits.max_nodes > 0 && graph.num_nodes() >= limits.max_nodes) {
    return Status::ResourceExhausted(
        StrFormat("node budget of %lld reached",
                  static_cast<long long>(limits.max_nodes)));
  }
  if (limits.max_memory_bytes > 0 &&
      graph.MemoryUsage() >= limits.max_memory_bytes) {
    return Status::ResourceExhausted(
        StrFormat("memory budget of %zu bytes reached",
                  limits.max_memory_bytes));
  }
  return budget_.Check();
}

}  // namespace coursenav::internal

#ifndef COURSENAV_CORE_PARALLEL_BRIDGE_H_
#define COURSENAV_CORE_PARALLEL_BRIDGE_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/engine.h"
#include "core/options.h"
#include "core/pruning.h"
#include "graph/learning_graph.h"
#include "requirements/goal.h"
#include "util/status.h"

// The contract between the serial generators (this module) and the
// parallel frontier engine (src/exec/). Dependency inversion keeps the
// module layering DAG acyclic — `core` may not include `exec` headers
// (coursenav-lint enforces it) — so core *declares* the expansion entry
// points here and src/exec/parallel_expander.cc *implements* them. The
// implementation is compiled into coursenav_core (see src/core/CMakeLists),
// which also keeps the library link graph cycle-free.

namespace coursenav::internal {

/// Worker count for an `ExplorationOptions::num_threads` request: 0 means
/// the serial path (callers should not reach the expander at all), anything
/// else clamps to [1, LearningGraph::kMaxShards] — one graph shard per
/// worker bounds the thread count.
int EffectiveWorkers(int num_threads);

/// What to expand: the deadline-driven loop when `goal` is null, the
/// goal-driven loop (with its pruning oracle) otherwise. All referenced
/// objects must outlive the expansion call.
struct ParallelExpandSpec {
  const Catalog* catalog = nullptr;
  const OfferingSchedule* schedule = nullptr;
  const ExplorationOptions* options = nullptr;
  Term end_term;
  const Goal* goal = nullptr;
  const GoalDrivenConfig* config = nullptr;  // required when goal != null

  /// Optional availability-pruning L3: a process-wide, epoch-scoped
  /// `SharedAvailabilityCache` (src/cache/) every worker oracle consults
  /// behind its private L1 in place of the run-local L2. Null (the
  /// default) keeps the historical per-run cache, which dies at join.
  /// Verdicts are a pure function of (term, reachable set) for the
  /// monotone goals the oracle caches, so sharing across runs of the same
  /// catalog epoch cannot change any verdict — only skip recomputing it.
  SharedAvailabilityCache* shared_availability = nullptr;
};

/// Expands `graph`'s frontier across `num_workers` work-stealing workers,
/// then canonicalizes the result into serial id order.
///
/// Preconditions: `graph` was configured with `EffectiveWorkers` shards and
/// holds exactly its root node; `engine.metrics().nodes_created` already
/// counts that root (mirroring the serial generators).
///
/// The expansion replicates the serial loops candidate-for-candidate —
/// enumeration order, pruning decisions, skip-edge rule, terminal
/// accounting, and one budget check per node pop plus one per enumerated
/// selection — so a *complete* run produces a canonical graph byte-identical
/// to the serial generator's and `ExplorationStats` totals that reconcile
/// exactly, at any worker count. Budget enforcement is global: relaxed
/// atomic node/byte counters plus per-worker deadline budgets feed a sticky
/// stop flag, and a budget-truncated run yields a well-formed partial graph
/// (nodes still on the frontier simply stay leaves), same as serial.
///
/// Returns the run's termination status: OK for a complete expansion, the
/// first budget/cancellation/fault verdict otherwise.
///
/// Implemented by the exec layer (src/exec/parallel_expander.cc).
Status ExpandFrontierParallel(ExplorationEngine& engine,
                              const ParallelExpandSpec& spec, int num_workers,
                              LearningGraph* graph);

}  // namespace coursenav::internal

#endif  // COURSENAV_CORE_PARALLEL_BRIDGE_H_

#ifndef COURSENAV_CORE_DEADLINE_GENERATOR_H_
#define COURSENAV_CORE_DEADLINE_GENERATOR_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/generation.h"
#include "core/options.h"
#include "util/result.h"

namespace coursenav {

/// Algorithm 1: deadline-driven learning paths.
///
/// Generates the learning graph of *all* course-selection paths from the
/// student's enrollment status `start` up to the end semester `end_term`:
/// every root-to-leaf path is one learning path. Leaves are statuses at
/// `end_term` (marked as goal nodes) or dead ends where no option exists
/// now or in any later semester of the horizon.
///
/// Selections are the non-empty subsets of the option set `Y_i` of size at
/// most `options.max_courses_per_term`; an empty "skip" selection is added
/// exactly when `Y_i` is empty but some not-yet-completed course is offered
/// later in the horizon (matching the paper's Figure 3), or always when
/// `options.allow_voluntary_skip` is set.
///
/// Fails fast on invalid inputs (unfinalized catalog, mismatched sizes,
/// `end_term <= start.term`). Budget exhaustion is *not* an error: it is
/// reported in the returned `GenerationResult::termination` together with
/// the partial graph, because a too-big-to-materialize graph is an expected
/// outcome (Table 2).
///
/// Implemented by the plan layer (src/plan/facades.cc) as a thin facade
/// over the planner/executor pipeline; output is byte-identical to running
/// the request through `plan::Execute` directly.
Result<GenerationResult> GenerateDeadlineDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options);

}  // namespace coursenav

#endif  // COURSENAV_CORE_DEADLINE_GENERATOR_H_

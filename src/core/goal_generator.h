#ifndef COURSENAV_CORE_GOAL_GENERATOR_H_
#define COURSENAV_CORE_GOAL_GENERATOR_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/generation.h"
#include "core/options.h"
#include "core/pruning.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// Section 4.2: goal-driven learning paths.
///
/// Explores like Algorithm 1 but (a) stops expanding a node once the
/// student's goal requirement is satisfied there (such nodes are the
/// output's goal leaves) or once the end semester is reached, and (b)
/// prunes, before materializing them, candidate children from which the
/// goal is provably unreachable — using the time-based (Equation 1 /
/// Lemma 1) and course-availability (Section 4.2.2) strategies configured
/// in `config`. Both strategies are sound: every goal-reaching path of the
/// deadline-driven graph survives.
///
/// `goal` must outlive the call. Budget exhaustion is reported via
/// `GenerationResult::termination`, not as an error.
///
/// Implemented by the plan layer (src/plan/facades.cc) as a thin facade
/// over the planner/executor pipeline; output is byte-identical to running
/// the request through `plan::Execute` directly.
Result<GenerationResult> GenerateGoalDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config = {});

}  // namespace coursenav

#endif  // COURSENAV_CORE_GOAL_GENERATOR_H_

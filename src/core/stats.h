#ifndef COURSENAV_CORE_STATS_H_
#define COURSENAV_CORE_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace coursenav {

/// Instrumentation emitted by every generator; the benchmark harnesses
/// report these directly (Table 1's pruning breakdown, Table 2's path
/// counts).
///
/// Since the observability refactor this struct is a *view*: generators
/// increment counters in a per-run `obs::MetricRegistry` (lock-free on the
/// hot path) and snapshot them into this legacy shape via `FromMetrics`
/// when the run finishes. The numbers here therefore reconcile exactly
/// with what the metrics exporters report.
struct ExplorationStats {
  /// Nodes materialized into the learning graph.
  int64_t nodes_created = 0;
  /// Edges materialized.
  int64_t edges_created = 0;
  /// Nodes whose expansion was attempted (popped from the worklist).
  int64_t nodes_expanded = 0;

  /// Leaves of the generated graph == learning paths in the output.
  int64_t terminal_paths = 0;
  /// Leaves satisfying the exploration condition (deadline reached, or the
  /// goal requirement holds).
  int64_t goal_paths = 0;
  /// Leaves that are dead ends (no options, no future offerings).
  int64_t dead_end_paths = 0;

  /// Candidate children rejected by the time-based strategy (Eq. 1).
  int64_t pruned_time = 0;
  /// Candidate children rejected by the course-availability strategy.
  int64_t pruned_availability = 0;

  double runtime_seconds = 0.0;

  int64_t TotalPruned() const { return pruned_time + pruned_availability; }

  /// Snapshot of a run's metric bundle in the legacy shape.
  static ExplorationStats FromMetrics(const obs::ExplorationMetrics& metrics,
                                      double runtime_seconds);

  /// One-line summary for logs: every counter, the pruning breakdown with
  /// per-strategy percentages (Table 1's layout), and the runtime.
  std::string ToString() const;

  /// Structured form for `--stats-format=json` and the exporters.
  JsonValue ToJson() const;
};

}  // namespace coursenav

#endif  // COURSENAV_CORE_STATS_H_

#ifndef COURSENAV_CORE_ENGINE_H_
#define COURSENAV_CORE_ENGINE_H_

#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/options.h"
#include "core/stats.h"
#include "graph/learning_graph.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace coursenav::internal {

/// Shared machinery of the three path generators: the availability suffix
/// cache, the skip-edge rule, and budget enforcement. Internal — not part
/// of the public API.
class ExplorationEngine {
 public:
  /// `catalog`, `schedule`, and `options` must outlive the engine.
  /// Precomputes, for every semester in `[start, end)`, the union of
  /// offerings from that semester through `end - 1` (minus avoided
  /// courses): one bitset lookup replaces a per-node schedule scan in both
  /// the skip-edge rule and the availability pruning strategy.
  ExplorationEngine(const Catalog& catalog, const OfferingSchedule& schedule,
                    const ExplorationOptions& options, Term start, Term end);

  /// Destruction folds the run's metric registry into the process-global
  /// one (plus a runs counter, a runtime histogram observation, and the
  /// peak-nodes gauge), so every run is accounted exactly once — including
  /// early-error exits.
  ~ExplorationEngine();

  /// Courses offered (and not avoided) in any semester of `[term, end-1]`.
  /// Returns the empty set for terms at or beyond `end`.
  const DynamicBitset& AvailableFrom(Term term) const;

  /// The skip-edge rule (paper Figure 3): from a status at `term`, an empty
  /// selection advances time only if some not-yet-completed course is still
  /// offered in a *later* enrollable semester `[term+1, end-1]`.
  bool FutureCourseExists(const DynamicBitset& completed, Term term) const;

  /// OK while within budget; ResourceExhausted / DeadlineExceeded once a
  /// limit in `options.limits` is hit, Cancelled once the options' token
  /// fires. The deadline and cancel flag are polled through the engine's
  /// DeadlineBudget (amortized clock reads), so this is cheap enough to
  /// call per enumerated selection. Verdicts are sticky.
  Status CheckBudget(const LearningGraph& graph);

  /// Conservative pre-check for batched expansion: true when materializing
  /// up to `staged` more nodes could reach the node budget. Callers staging
  /// candidates flush them when this fires, then run the exact
  /// `CheckBudget` — which therefore sees precisely the node count the
  /// unbatched loop would have seen (staged candidates that survive pruning
  /// are materialized before any check that could trip). Does not bump
  /// `budget_checks`.
  bool MightExceedNodeBudget(const LearningGraph& graph,
                             size_t staged) const {
    return options_.limits.max_nodes > 0 &&
           graph.num_nodes() + static_cast<int64_t>(staged) >=
               options_.limits.max_nodes;
  }

  /// Wall-clock seconds since the engine was constructed (the generation
  /// run's runtime, for stats reporting).
  double ElapsedSeconds() const { return budget_.ElapsedSeconds(); }

  DeadlineBudget& budget() { return budget_; }

  /// The run's instrumentation bundle: generators and the pruning oracle
  /// bump these plain tallies (a run is single-threaded, so no atomics on
  /// the hot path); `ExplorationStats::FromMetrics` snapshots them into
  /// the legacy struct, and the destructor publishes them into the run's
  /// registry before folding it into the global one.
  obs::ExplorationMetrics& metrics() const { return metrics_; }

  /// Legacy-shaped snapshot of the run so far.
  ExplorationStats StatsView() const {
    return ExplorationStats::FromMetrics(metrics_, ElapsedSeconds());
  }

  Term start() const { return start_; }
  Term end() const { return end_; }

 private:
  const ExplorationOptions& options_;
  /// Per-run registry; isolated so concurrent runs never share counters.
  mutable obs::MetricRegistry registry_;
  mutable obs::ExplorationMetrics metrics_;
  DeadlineBudget budget_;
  Term start_;
  Term end_;
  /// available_from_[k] = offerings in [start+k, end-1] minus avoid.
  std::vector<DynamicBitset> available_from_;
  DynamicBitset empty_set_;
};

}  // namespace coursenav::internal

#endif  // COURSENAV_CORE_ENGINE_H_

#include "core/stats.h"

#include "util/string_util.h"

namespace coursenav {

std::string ExplorationStats::ToString() const {
  return StrFormat(
      "nodes=%lld edges=%lld expanded=%lld paths=%lld (goal=%lld dead=%lld) "
      "pruned_time=%lld pruned_avail=%lld runtime=%.3fs",
      static_cast<long long>(nodes_created),
      static_cast<long long>(edges_created),
      static_cast<long long>(nodes_expanded),
      static_cast<long long>(terminal_paths),
      static_cast<long long>(goal_paths),
      static_cast<long long>(dead_end_paths),
      static_cast<long long>(pruned_time),
      static_cast<long long>(pruned_availability), runtime_seconds);
}

}  // namespace coursenav

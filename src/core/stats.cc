#include "core/stats.h"

#include "util/string_util.h"

namespace coursenav {

ExplorationStats ExplorationStats::FromMetrics(
    const obs::ExplorationMetrics& metrics, double runtime_seconds) {
  ExplorationStats stats;
  stats.nodes_created = metrics.nodes_created;
  stats.edges_created = metrics.edges_created;
  stats.nodes_expanded = metrics.nodes_expanded;
  stats.terminal_paths = metrics.terminal_paths;
  stats.goal_paths = metrics.goal_paths;
  stats.dead_end_paths = metrics.dead_end_paths;
  stats.pruned_time = metrics.pruned_time;
  stats.pruned_availability = metrics.pruned_availability;
  stats.runtime_seconds = runtime_seconds;
  return stats;
}

std::string ExplorationStats::ToString() const {
  std::string out = StrFormat(
      "nodes=%lld edges=%lld expanded=%lld paths=%lld (goal=%lld dead=%lld) ",
      static_cast<long long>(nodes_created),
      static_cast<long long>(edges_created),
      static_cast<long long>(nodes_expanded),
      static_cast<long long>(terminal_paths),
      static_cast<long long>(goal_paths),
      static_cast<long long>(dead_end_paths));
  const int64_t pruned = TotalPruned();
  if (pruned > 0) {
    const double time_share =
        100.0 * static_cast<double>(pruned_time) / static_cast<double>(pruned);
    out += StrFormat(
        "pruned=%lld (pruned_time=%lld %.1f%%, pruned_avail=%lld %.1f%%) ",
        static_cast<long long>(pruned), static_cast<long long>(pruned_time),
        time_share, static_cast<long long>(pruned_availability),
        100.0 - time_share);
  } else {
    out += StrFormat("pruned=0 (pruned_time=%lld, pruned_avail=%lld) ",
                     static_cast<long long>(pruned_time),
                     static_cast<long long>(pruned_availability));
  }
  out += StrFormat("runtime_seconds=%.3f", runtime_seconds);
  return out;
}

JsonValue ExplorationStats::ToJson() const {
  JsonValue::Object object;
  object["nodes_created"] = JsonValue(nodes_created);
  object["edges_created"] = JsonValue(edges_created);
  object["nodes_expanded"] = JsonValue(nodes_expanded);
  object["terminal_paths"] = JsonValue(terminal_paths);
  object["goal_paths"] = JsonValue(goal_paths);
  object["dead_end_paths"] = JsonValue(dead_end_paths);
  object["pruned_time"] = JsonValue(pruned_time);
  object["pruned_availability"] = JsonValue(pruned_availability);
  object["pruned_total"] = JsonValue(TotalPruned());
  object["runtime_seconds"] = JsonValue(runtime_seconds);
  return JsonValue(std::move(object));
}

}  // namespace coursenav

#include "core/ranking.h"

#include <cmath>
#include <limits>

namespace coursenav {

double TimeRanking::EdgeCost(const DynamicBitset& selection,
                             Term term) const {
  (void)selection;
  (void)term;
  return 1.0;
}

double TimeRanking::RemainingCostLowerBound(const DynamicBitset& completed,
                                            const Goal& goal,
                                            int max_courses_per_term) const {
  int left = goal.MinCoursesRemaining(completed);
  if (left >= kGoalUnreachable) {
    return static_cast<double>(kGoalUnreachable);
  }
  if (left <= 0) return 0.0;
  return static_cast<double>((left + max_courses_per_term - 1) /
                             max_courses_per_term);
}

double WorkloadRanking::EdgeCost(const DynamicBitset& selection,
                                 Term term) const {
  (void)term;
  double total = 0.0;
  selection.ForEach([&](int id) {
    total += catalog_->course(static_cast<CourseId>(id)).workload_hours;
  });
  return total;
}

double BottleneckWorkloadRanking::EdgeCost(const DynamicBitset& selection,
                                           Term term) const {
  return WorkloadRanking(catalog_).EdgeCost(selection, term);
}

double BottleneckWorkloadRanking::Combine(double path_cost,
                                          double edge_cost) const {
  return path_cost > edge_cost ? path_cost : edge_cost;
}

double ReliabilityRanking::EdgeCost(const DynamicBitset& selection,
                                    Term term) const {
  double cost = 0.0;
  selection.ForEach([&](int id) {
    double p = model_->Probability(static_cast<CourseId>(id), term);
    if (p <= 0.0) {
      cost = std::numeric_limits<double>::infinity();
    } else if (cost != std::numeric_limits<double>::infinity()) {
      cost += -std::log(p);
    }
  });
  return cost;
}

double ReliabilityRanking::CostToReliability(double cost) {
  return std::exp(-cost);
}

}  // namespace coursenav

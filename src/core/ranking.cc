#include "core/ranking.h"

#include <cmath>
#include <limits>

namespace coursenav {

double TimeRanking::EdgeCost(const DynamicBitset& selection,
                             Term term) const {
  (void)selection;
  (void)term;
  return 1.0;
}

double TimeRanking::RemainingCostLowerBound(const DynamicBitset& completed,
                                            const Goal& goal,
                                            int max_courses_per_term) const {
  int left = goal.MinCoursesRemaining(completed);
  if (left >= kGoalUnreachable) {
    return static_cast<double>(kGoalUnreachable);
  }
  if (left <= 0) return 0.0;
  return static_cast<double>((left + max_courses_per_term - 1) /
                             max_courses_per_term);
}

double WorkloadRanking::EdgeCost(const DynamicBitset& selection,
                                 Term term) const {
  (void)term;
  if (workload_.size() != static_cast<size_t>(catalog_->size())) {
    workload_.resize(static_cast<size_t>(catalog_->size()));
    for (int id = 0; id < catalog_->size(); ++id) {
      workload_[static_cast<size_t>(id)] =
          catalog_->course(static_cast<CourseId>(id)).workload_hours;
    }
  }
  double total = 0.0;
  selection.ForEach(
      [&](int id) { total += workload_[static_cast<size_t>(id)]; });
  return total;
}

double BottleneckWorkloadRanking::EdgeCost(const DynamicBitset& selection,
                                           Term term) const {
  return inner_.EdgeCost(selection, term);
}

double BottleneckWorkloadRanking::Combine(double path_cost,
                                          double edge_cost) const {
  return path_cost > edge_cost ? path_cost : edge_cost;
}

double ReliabilityRanking::EdgeCost(const DynamicBitset& selection,
                                    Term term) const {
  std::vector<double>& neg_log = neg_log_by_term_[term.index()];
  if (neg_log.size() != static_cast<size_t>(selection.universe_size())) {
    neg_log.resize(static_cast<size_t>(selection.universe_size()));
    for (int id = 0; id < selection.universe_size(); ++id) {
      double p = model_->Probability(static_cast<CourseId>(id), term);
      neg_log[static_cast<size_t>(id)] =
          p <= 0.0 ? std::numeric_limits<double>::infinity() : -std::log(p);
    }
  }
  // Mirror the direct model walk exactly: an impossible offering pins the
  // cost to +inf, and nothing is added past that point.
  double cost = 0.0;
  selection.ForEach([&](int id) {
    double v = neg_log[static_cast<size_t>(id)];
    if (v == std::numeric_limits<double>::infinity()) {
      cost = std::numeric_limits<double>::infinity();
    } else if (cost != std::numeric_limits<double>::infinity()) {
      cost += v;
    }
  });
  return cost;
}

double ReliabilityRanking::CostToReliability(double cost) {
  return std::exp(-cost);
}

}  // namespace coursenav

#include "core/filters.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"

namespace coursenav {

bool MaxTermWorkloadFilter::Keep(const LearningPath& path) const {
  for (const PathStep& step : path.steps()) {
    double hours = 0.0;
    step.selection.ForEach([&](int id) {
      hours += catalog_->course(static_cast<CourseId>(id)).workload_hours;
    });
    if (hours > max_hours_) return false;
  }
  return true;
}

std::string MaxTermWorkloadFilter::Describe() const {
  return StrFormat("semester workload <= %.1f hours/week", max_hours_);
}

bool CourseByTermFilter::Keep(const LearningPath& path) const {
  for (const PathStep& step : path.steps()) {
    if (step.term > deadline_) break;
    if (step.selection.test(course_)) return true;
  }
  // Already completed before the path started also counts.
  return path.start_completed().test(course_);
}

std::string CourseByTermFilter::Describe() const {
  return StrFormat("course #%d taken by %s", course_,
                   deadline_.ToString().c_str());
}

bool MaxSkipsFilter::Keep(const LearningPath& path) const {
  int skips = 0;
  for (const PathStep& step : path.steps()) {
    if (step.selection.empty()) ++skips;
  }
  return skips <= max_skips_;
}

std::string MaxSkipsFilter::Describe() const {
  return StrFormat("at most %d skipped semester(s)", max_skips_);
}

bool BalancedLoadFilter::Keep(const LearningPath& path) const {
  int lightest = std::numeric_limits<int>::max();
  int heaviest = 0;
  for (const PathStep& step : path.steps()) {
    int load = step.selection.count();
    if (load == 0) continue;  // skips don't count toward spread
    lightest = std::min(lightest, load);
    heaviest = std::max(heaviest, load);
  }
  if (heaviest == 0) return true;  // all-skip path is trivially balanced
  return heaviest - lightest <= max_spread_;
}

std::string BalancedLoadFilter::Describe() const {
  return StrFormat("load spread <= %d courses", max_spread_);
}

bool AllOfFilter::Keep(const LearningPath& path) const {
  for (const auto& part : parts_) {
    if (!part->Keep(path)) return false;
  }
  return true;
}

std::string AllOfFilter::Describe() const {
  std::string out = "all of [";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) out += "; ";
    out += parts_[i]->Describe();
  }
  out += "]";
  return out;
}

std::vector<LearningPath> FilterPaths(std::vector<LearningPath> paths,
                                      const PathFilter& filter) {
  std::vector<LearningPath> kept;
  kept.reserve(paths.size());
  for (LearningPath& path : paths) {
    if (filter.Keep(path)) kept.push_back(std::move(path));
  }
  return kept;
}

}  // namespace coursenav

#include "core/pruning.h"

#include <cstdint>
#include <utility>

#include "util/check.h"

namespace coursenav::internal {

PruningOracle::PruningOracle(const Goal& goal, const ExplorationEngine& engine,
                             const ExplorationOptions& options,
                             const GoalDrivenConfig& config,
                             obs::ExplorationMetrics* metrics,
                             SharedAvailabilityCache* shared_cache)
    : goal_(goal),
      engine_(engine),
      options_(options),
      config_(config),
      metrics_(metrics != nullptr ? metrics : &engine.metrics()),
      shared_cache_(shared_cache),
      goal_is_monotone_(goal.IsMonotone()) {}

int PruningOracle::LeftAt(const DynamicBitset& completed) const {
  if (!config_.enable_time_pruning) return -1;
  return goal_.MinCoursesRemaining(completed);
}

int PruningOracle::MinSelectionSize(int left_parent, Term parent_term) const {
  if (!config_.enable_time_pruning || !config_.enforce_min_selection) {
    return 1;
  }
  // Widen before multiplying: max_courses_per_term * horizon overflows int
  // for degenerate option sets (e.g. a far deadline with a huge per-term
  // cap), which would flip the lower bound positive and wrongly skip
  // selections. In int64 the product is exact; the result is at most
  // left_parent, which already fits an int.
  int64_t min_i =
      int64_t{left_parent} -
      int64_t{options_.max_courses_per_term} *
          (int64_t{engine_.end() - parent_term} - 1);
  return min_i > 1 ? static_cast<int>(min_i) : 1;
}

void PruningOracle::AccountSkippedTimePruned(int64_t count) {
  metrics_->pruned_time += count;
}

void PruningOracle::EmitStageSpans() const {
  time_stage_.Emit(
      obs::kSpanPruneTime,
      {obs::SpanAttribute::Int("pruned", metrics_->pruned_time),
       obs::SpanAttribute::Int("enabled", config_.enable_time_pruning)});
  availability_stage_.Emit(
      obs::kSpanPruneAvailability,
      {obs::SpanAttribute::Int("pruned", metrics_->pruned_availability),
       obs::SpanAttribute::Int("enabled",
                               config_.enable_availability_pruning)});
}

void PruningOracle::CheckInvariants() const {
  const int universe =
      engine_.AvailableFrom(engine_.start()).universe_size();
  for (const auto& [term_index, per_term] : availability_cache_) {
    // Verdicts are keyed by *child* terms, which lie strictly inside
    // (start, end] of the exploration window.
    CN_CHECK_GT(term_index, engine_.start().index())
        << "availability cache keyed on a term before the start";
    CN_CHECK_LE(term_index, engine_.end().index())
        << "availability cache keyed on a term past the deadline";
    const DynamicBitset& available =
        engine_.AvailableFrom(Term::FromIndex(term_index));
    for (const auto& [reachable, achievable] : per_term) {
      (void)achievable;
      CN_CHECK_EQ(reachable.universe_size(), universe)
          << "cached reachable set sized for a different catalog";
      CN_CHECK(available.IsSubsetOf(reachable))
          << "cached reachable set at term " << term_index
          << " is missing courses the catalog offers from that term";
    }
  }
}

PruningOracle::Verdict PruningOracle::ClassifyChild(
    const DynamicBitset& child_completed, int selection_size, Term child_term,
    int left_parent) {
  if (config_.enable_time_pruning) {
    obs::StageSample sample(&time_stage_);
    const int child_bound =
        options_.max_courses_per_term * (engine_.end() - child_term);
    // Fast certain-prune: one semester reduces `left` by at most |W|.
    if (left_parent - selection_size > child_bound) {
      metrics_->pruned_time += 1;
      return Verdict::kPrunedTime;
    }
    // Fast certain-keep for monotone goals: left(X ∪ W) <= left(X).
    bool needs_exact = !(goal_is_monotone_ && left_parent <= child_bound);
    if (needs_exact &&
        goal_.MinCoursesRemaining(child_completed) > child_bound) {
      metrics_->pruned_time += 1;
      return Verdict::kPrunedTime;
    }
  }
  if (config_.enable_availability_pruning) {
    obs::StageSample sample(&availability_stage_);
    const DynamicBitset& available = engine_.AvailableFrom(child_term);
    bool achievable;
    // The cache key is the reachable set, whose verdict is well-defined
    // only for monotone goals (with negative literals achievability depends
    // on the completed set itself, not just the union).
    if (config_.cache_availability_checks && goal_is_monotone_) {
      DynamicBitset reachable = child_completed;
      reachable |= available;
      auto& per_term = availability_cache_[child_term.index()];
      auto it = per_term.find(reachable);
      if (it != per_term.end()) {
        achievable = it->second;
      } else if (shared_cache_ != nullptr &&
                 shared_cache_->Lookup(child_term.index(), reachable,
                                       &achievable)) {
        // L2 hit (another worker computed this verdict); replicate into L1
        // so repeats stay lock-free.
        per_term.emplace(std::move(reachable), achievable);
      } else {
        achievable = goal_.AchievableWith(child_completed, available);
        if (shared_cache_ != nullptr) {
          shared_cache_->Insert(child_term.index(), reachable, achievable);
        }
        per_term.emplace(std::move(reachable), achievable);
      }
    } else {
      achievable = goal_.AchievableWith(child_completed, available);
    }
    if (!achievable) {
      metrics_->pruned_availability += 1;
      return Verdict::kPrunedAvailability;
    }
  }
  return Verdict::kKeep;
}

void PruningOracle::ClassifyBatch(const CandidateBatch& batch, Term child_term,
                                  int left_parent,
                                  std::vector<Verdict>* verdicts) {
  const size_t count = batch.size();
  verdicts->assign(count, Verdict::kKeep);
  if (count == 0) return;

  if (config_.enable_time_pruning) {
    obs::StageSample sample(&time_stage_);
    const int child_bound =
        options_.max_courses_per_term * (engine_.end() - child_term);
    // The monotone fast-keep test depends only on the parent's `left`, so
    // whether an exact bound is needed is decided once per batch; the exact
    // bounds themselves come from the goal's clause-major batch kernel.
    // (Bounds for fast-pruned rows are computed too — the kernel is pure,
    // so the verdicts are unaffected.)
    const bool needs_exact =
        !(goal_is_monotone_ && left_parent <= child_bound);
    if (needs_exact) {
      batch_bounds_.resize(count);
      goal_.MinCoursesRemainingBatch(batch.completed_view(),
                                     batch_bounds_.data());
    }
    // coursenav:hot — the batched time-verdict loop; the bounds buffer is
    // sized above and the availability phase (locks, cache inserts) is
    // outside the region.
    for (size_t i = 0; i < count; ++i) {
      // Fast certain-prune: one semester reduces `left` by at most |W|.
      if (left_parent - batch.selection_size(i) > child_bound ||
          (needs_exact && batch_bounds_[i] > child_bound)) {
        (*verdicts)[i] = Verdict::kPrunedTime;
        metrics_->pruned_time += 1;
      }
    }
    // coursenav:hot-end
  }

  if (config_.enable_availability_pruning) {
    obs::StageSample sample(&availability_stage_);
    const DynamicBitset& available = engine_.AvailableFrom(child_term);
    if (config_.cache_availability_checks && goal_is_monotone_) {
      // The cache dance must mirror ClassifyChild row for row (same final
      // L1/L2 contents), but probes reuse two scratch sets so cache hits
      // and misses alike allocate only on insert.
      if (batch_reachable_scratch_.universe_size() !=
          available.universe_size()) {
        batch_reachable_scratch_ = DynamicBitset(available.universe_size());
        batch_completed_scratch_ = DynamicBitset(available.universe_size());
      }
      auto& per_term = availability_cache_[child_term.index()];
      for (size_t i = 0; i < count; ++i) {
        if ((*verdicts)[i] != Verdict::kKeep) continue;
        batch_reachable_scratch_.AssignWords(batch.completed_row(i));
        batch_reachable_scratch_ |= available;
        bool achievable;
        auto it = per_term.find(batch_reachable_scratch_);
        if (it != per_term.end()) {
          achievable = it->second;
        } else if (shared_cache_ != nullptr &&
                   shared_cache_->Lookup(child_term.index(),
                                         batch_reachable_scratch_,
                                         &achievable)) {
          per_term.emplace(batch_reachable_scratch_, achievable);
        } else {
          batch_completed_scratch_.AssignWords(batch.completed_row(i));
          achievable =
              goal_.AchievableWith(batch_completed_scratch_, available);
          if (shared_cache_ != nullptr) {
            shared_cache_->Insert(child_term.index(),
                                  batch_reachable_scratch_, achievable);
          }
          per_term.emplace(batch_reachable_scratch_, achievable);
        }
        if (!achievable) {
          (*verdicts)[i] = Verdict::kPrunedAvailability;
          metrics_->pruned_availability += 1;
        }
      }
    } else {
      // Uncached (or non-monotone) goals: one batched achievability pass.
      // Time-pruned rows are evaluated too and ignored (pure function).
      if (batch_achievable_capacity_ < count) {
        batch_achievable_ = std::make_unique<bool[]>(count);
        batch_achievable_capacity_ = count;
      }
      goal_.AchievableWithBatch(batch.completed_view(), available,
                                batch_achievable_.get());
      for (size_t i = 0; i < count; ++i) {
        if ((*verdicts)[i] != Verdict::kKeep) continue;
        if (!batch_achievable_[i]) {
          (*verdicts)[i] = Verdict::kPrunedAvailability;
          metrics_->pruned_availability += 1;
        }
      }
    }
  }
}

}  // namespace coursenav::internal

#ifndef COURSENAV_CORE_RANKED_GENERATOR_H_
#define COURSENAV_CORE_RANKED_GENERATOR_H_

#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "core/pruning.h"
#include "core/ranking.h"
#include "core/stats.h"
#include "graph/path.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// Output of the ranked generator: up to k goal-reaching paths in
/// non-decreasing cost order.
struct RankedResult {
  std::vector<LearningPath> paths;
  ExplorationStats stats;
  /// OK when the search ran to completion (k paths found or the whole goal
  /// space exhausted); a budget status when it stopped early.
  Status termination;
};

/// Section 4.3: ranked (top-k) goal-driven learning paths.
///
/// Best-first search over the learning graph: the frontier is ordered by
/// accumulated path cost under `ranking`, and each time a goal-satisfying
/// status is popped its root path is emitted. With non-negative edge costs
/// this is uniform-cost search, so the k emitted paths are exactly the k
/// cheapest goal paths (Lemma 2). The same pruning strategies as the
/// goal-driven generator apply.
///
/// Ties are broken deterministically by insertion order. `goal` and
/// `ranking` must outlive the call. Fewer than `k` paths may be returned
/// when the goal space is smaller than k (termination stays OK) or when a
/// budget is hit (termination carries the budget status).
///
/// Always serial: best-first top-k is order-dependent, so
/// `options.num_threads` is not honored here — the planner records an
/// explicit "ranked runs serial" note instead of ignoring it silently.
///
/// Implemented by the plan layer (src/plan/facades.cc) as a thin facade
/// over the planner/executor pipeline; output is byte-identical to running
/// the request through `plan::Execute` directly.
Result<RankedResult> GenerateRankedPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const RankingFunction& ranking, int k, const ExplorationOptions& options,
    const GoalDrivenConfig& config = {});

}  // namespace coursenav

#endif  // COURSENAV_CORE_RANKED_GENERATOR_H_

#include "core/combinations.h"

#include <limits>

namespace coursenav {

namespace {
constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
}  // namespace

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a > kMax - b ? kMax : a + b;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kMax / b) return kMax;
  return a * b;
}

uint64_t CountSelections(int n, int min_size, int max_size) {
  if (min_size < 1) min_size = 1;
  if (max_size > n) max_size = n;
  uint64_t total = 0;
  // Running binomial C(n, k), built multiplicatively with saturation.
  uint64_t binom = 1;  // C(n, 0)
  for (int k = 1; k <= max_size; ++k) {
    // C(n, k) = C(n, k-1) * (n - k + 1) / k; the intermediate product always
    // divides evenly.
    binom = SaturatingMul(binom, static_cast<uint64_t>(n - k + 1));
    if (binom != kMax) binom /= static_cast<uint64_t>(k);
    if (k >= min_size) total = SaturatingAdd(total, binom);
  }
  return total;
}

}  // namespace coursenav

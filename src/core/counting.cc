#include "core/counting.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/combinations.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"

namespace coursenav {

namespace {

/// Leaf counts below one status.
struct Counts {
  uint64_t total = 0;
  uint64_t goal = 0;
};

/// Memoized recursive counter shared by the deadline and goal modes.
class CountingRun {
 public:
  CountingRun(const Catalog& catalog, const OfferingSchedule& schedule,
              const ExplorationOptions& options, Term start_term,
              Term end_term, const Goal* goal,
              const GoalDrivenConfig* config)
      : catalog_(catalog),
        schedule_(schedule),
        options_(options),
        end_term_(end_term),
        goal_(goal),
        engine_(catalog, schedule, options, start_term, end_term),
        budget_(options.limits.max_seconds, options.cancel),
        oracle_(goal == nullptr
                    ? nullptr
                    : std::make_unique<internal::PruningOracle>(
                          *goal, engine_, options, *config)) {}

  CountingRun(const CountingRun&) = delete;
  CountingRun& operator=(const CountingRun&) = delete;

  Result<CountingResult> Run(const EnrollmentStatus& start) {
    obs::ScopedSpan run_span(obs::kSpanCountPaths);
    Result<Counts> counts = CountFrom(start.term, start.completed);
    // Distinct statuses stand in for nodes in the counting rung's metrics
    // (the memo is what bounds counting memory, as max_nodes does graphs).
    engine_.metrics().nodes_created += static_cast<int64_t>(memo_.size());
    if (oracle_ != nullptr) oracle_->EmitStageSpans();
    run_span.AddInt("distinct_statuses", static_cast<int64_t>(memo_.size()));
    if (!counts.ok()) return counts.status();
    CountingResult result;
    result.total_paths = counts->total;
    result.goal_paths = counts->goal;
    result.saturated = saturated_;
    result.distinct_statuses = static_cast<int64_t>(memo_.size());
    result.runtime_seconds = budget_.ElapsedSeconds();
    run_span.AddInt("total_paths_low64",
                    static_cast<int64_t>(result.total_paths));
    return result;
  }

 private:
  using MemoKey = std::pair<int, DynamicBitset>;

  struct MemoKeyHash {
    size_t operator()(const MemoKey& key) const {
      return static_cast<size_t>(key.second.Hash() ^
                                 (static_cast<uint64_t>(key.first) *
                                  0x9e3779b97f4a7c15ULL));
    }
  };

  Result<Counts> CountFrom(Term term, const DynamicBitset& completed) {
    MemoKey key{term.index(), completed};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    COURSENAV_RETURN_IF_ERROR(CheckBudget());

    Counts counts;
    if (goal_ != nullptr && goal_->IsSatisfied(completed)) {
      counts = {1, 1};
    } else if (term == end_term_) {
      counts = goal_ == nullptr ? Counts{1, 1} : Counts{1, 0};
    } else {
      DynamicBitset node_options =
          ComputeOptions(catalog_, schedule_, completed, term, options_);
      const Term child_term = term.Next();
      const int left_parent =
          oracle_ != nullptr ? oracle_->LeftAt(completed) : -1;

      bool expanded = false;
      Status child_error = Status::OK();
      auto accumulate_child = [&](const DynamicBitset& selection) {
        DynamicBitset next_completed = completed;
        next_completed |= selection;
        if (oracle_ != nullptr &&
            oracle_->ClassifyChild(next_completed, selection.count(),
                                   child_term, left_parent) !=
                internal::PruningOracle::Verdict::kKeep) {
          return true;
        }
        Result<Counts> child = CountFrom(child_term, next_completed);
        if (!child.ok()) {
          child_error = child.status();
          return false;
        }
        counts.total = SaturatingAdd(counts.total, child->total);
        counts.goal = SaturatingAdd(counts.goal, child->goal);
        if (counts.total == UINT64_MAX || counts.goal == UINT64_MAX) {
          saturated_ = true;
        }
        expanded = true;
        return true;
      };

      int min_selection =
          oracle_ != nullptr ? oracle_->MinSelectionSize(left_parent, term)
                             : 1;
      if (!node_options.empty() && min_selection <= node_options.count()) {
        ForEachSelection(node_options, min_selection,
                         options_.max_courses_per_term, accumulate_child);
      }
      if (child_error.ok()) {
        bool skip_edge = options_.allow_voluntary_skip ||
                         (node_options.empty() &&
                          engine_.FutureCourseExists(completed, term));
        if (skip_edge) {
          accumulate_child(DynamicBitset(catalog_.size()));
        }
      }
      if (!child_error.ok()) return child_error;
      if (!expanded) counts = {1, 0};  // dead-end leaf
    }

    memo_.emplace(std::move(key), counts);
    return counts;
  }

  Status CheckBudget() {
    engine_.metrics().budget_checks += 1;
    const ExplorationLimits& limits = options_.limits;
    if (limits.max_nodes > 0 &&
        static_cast<int64_t>(memo_.size()) >= limits.max_nodes) {
      return Status::ResourceExhausted("status budget reached while counting");
    }
    if (FaultInjector* injector = ActiveFaultInjector();
        injector != nullptr && injector->ShouldInject(kFaultSiteCountAlloc)) {
      return Status::ResourceExhausted(
          "simulated allocation failure (fault injection)");
    }
    return budget_.Check();
  }

  const Catalog& catalog_;
  const OfferingSchedule& schedule_;
  const ExplorationOptions& options_;
  Term end_term_;
  const Goal* goal_;
  internal::ExplorationEngine engine_;
  DeadlineBudget budget_;
  std::unique_ptr<internal::PruningOracle> oracle_;
  std::unordered_map<MemoKey, Counts, MemoKeyHash> memo_;
  bool saturated_ = false;
};

}  // namespace

Result<CountingResult> CountDeadlineDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }
  CountingRun run(catalog, schedule, options, start.term, end_term,
                  /*goal=*/nullptr, /*config=*/nullptr);
  return run.Run(start);
}

Result<CountingResult> CountGoalDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }
  CountingRun run(catalog, schedule, options, start.term, end_term, &goal,
                  &config);
  return run.Run(start);
}

}  // namespace coursenav

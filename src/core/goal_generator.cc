// coursenav:deterministic — path output order is part of the contract.
#include "core/goal_generator.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/combinations.h"
#include "core/engine.h"
#include "core/parallel_bridge.h"
#include "obs/trace.h"
#include "util/check.h"

namespace coursenav {

Result<GenerationResult> GenerateGoalDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }

  obs::ScopedSpan run_span(obs::kSpanGenerateGoal);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options, start.term,
                                     end_term);
  obs::ExplorationMetrics& metrics = engine.metrics();

  GenerationResult result;
  LearningGraph& graph = result.graph;

  const bool parallel = options.num_threads != 0;
  if (parallel) {
    graph.ConfigureShards(internal::EffectiveWorkers(options.num_threads));
  }

  DynamicBitset root_options =
      ComputeOptions(catalog, schedule, start.completed, start.term, options);
  NodeId root = graph.AddRoot(start.term, start.completed, root_options);
  metrics.nodes_created += 1;
  construct_span->AddInt("catalog_courses", catalog.size());
  construct_span.reset();  // engine + root built; close the span

  if (parallel) {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);
    internal::ParallelExpandSpec spec;
    spec.catalog = &catalog;
    spec.schedule = &schedule;
    spec.options = &options;
    spec.end_term = end_term;
    spec.goal = &goal;
    spec.config = &config;
    result.termination = internal::ExpandFrontierParallel(
        engine, spec, options.num_threads, &graph);
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
    expand_span.AddInt("threads",
                       internal::EffectiveWorkers(options.num_threads));

    result.stats = engine.StatsView();
    run_span.AddInt("nodes_created", result.stats.nodes_created);
    run_span.AddInt("goal_paths", result.stats.goal_paths);
    return result;
  }

  internal::PruningOracle oracle(goal, engine, options, config);
  using Verdict = internal::PruningOracle::Verdict;
  {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    std::vector<NodeId> worklist{root};
    // Reused X_i ∪ W scratch: pruned candidates cost no heap traffic.
    DynamicBitset next_completed;

    while (!worklist.empty()) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      NodeId current = worklist.back();
      worklist.pop_back();
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes; references stay valid across
      // AddChild (no per-expansion snapshot copies).
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Stop at goal nodes: the requirement already holds here (§4.2.3).
      if (goal.IsSatisfied(completed)) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        continue;
      }
      // Stop at the end semester; this leaf misses the goal.
      if (term == end_term) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
        continue;
      }

      const Term child_term = term.Next();
      const int left_parent = oracle.LeftAt(completed);

      bool expanded = false;
      auto consider_child = [&](const DynamicBitset& selection) {
        next_completed = completed;
        next_completed |= selection;
        if (oracle.ClassifyChild(next_completed, selection.count(), child_term,
                                 left_parent) != Verdict::kKeep) {
          return;
        }
        DynamicBitset next_options = ComputeOptions(
            catalog, schedule, next_completed, child_term, options);
        NodeId child =
            graph.AddChild(current, selection, DynamicBitset(next_completed),
                           std::move(next_options));
        metrics.nodes_created += 1;
        metrics.edges_created += 1;
        worklist.push_back(child);
        expanded = true;
      };

      // Selections below Equation 1's minimum size provably miss the
      // deadline; skip enumerating them but account them as time-pruned.
      int min_selection = oracle.MinSelectionSize(left_parent, term);
      if (min_selection > 1) {
        // Only sizes up to m were ever candidates.
        int skipped_max =
            std::min(min_selection - 1, options.max_courses_per_term);
        oracle.AccountSkippedTimePruned(static_cast<int64_t>(
            CountSelections(node_options.count(), 1, skipped_max)));
      }

      if (!node_options.empty() && min_selection <= node_options.count()) {
        bool completed_enumeration = ForEachSelection(
            node_options, min_selection, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              if (!engine.CheckBudget(graph).ok()) return false;
              consider_child(selection);
              return true;
            });
        if (!completed_enumeration) {
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      // Skip edge (empty selection), under the same pruning regime.
      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        consider_child(DynamicBitset(catalog.size()));
      }

      if (!expanded) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  oracle.EmitStageSpans();
  // Structural self-checks (dcheck builds): the run's graph and the
  // oracle's availability cache must both be consistent before results
  // surface.
  if (CN_DCHECK_IS_ON()) {
    graph.CheckInvariants();
    oracle.CheckInvariants();
  }
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  run_span.AddInt("goal_paths", result.stats.goal_paths);
  return result;
}

}  // namespace coursenav

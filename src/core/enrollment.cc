#include "core/enrollment.h"

namespace coursenav {

DynamicBitset ComputeOptions(const Catalog& catalog,
                             const OfferingSchedule& schedule,
                             const DynamicBitset& completed, Term term,
                             const ExplorationOptions& options) {
  // Candidates: offered this term, not yet completed, not avoided.
  DynamicBitset candidates = schedule.OfferedIn(term);
  candidates.Subtract(completed);
  if (options.avoid_courses.has_value()) {
    candidates.Subtract(*options.avoid_courses);
  }
  // Keep only candidates whose prerequisite holds for `completed`.
  DynamicBitset eligible(catalog.size());
  candidates.ForEach([&](int id) {
    CourseId course = static_cast<CourseId>(id);
    const expr::CompiledExpr& prereq = catalog.compiled_prereq(course);
    if (prereq.IsAlwaysTrue() || prereq.Eval(completed)) {
      eligible.set(id);
    }
  });
  return eligible;
}

Status ValidateExplorationInputs(const Catalog& catalog,
                                 const OfferingSchedule& schedule,
                                 const EnrollmentStatus& start,
                                 const ExplorationOptions& options) {
  if (!catalog.finalized()) {
    return Status::FailedPrecondition("catalog must be finalized");
  }
  if (schedule.num_courses() != catalog.size()) {
    return Status::InvalidArgument(
        "schedule was built for a different catalog size");
  }
  if (start.completed.universe_size() != catalog.size()) {
    return Status::InvalidArgument(
        "completed-course set was built for a different catalog size");
  }
  if (options.max_courses_per_term < 1) {
    return Status::InvalidArgument("max_courses_per_term must be >= 1");
  }
  if (options.avoid_courses.has_value() &&
      options.avoid_courses->universe_size() != catalog.size()) {
    return Status::InvalidArgument(
        "avoid-course set was built for a different catalog size");
  }
  return Status::OK();
}

}  // namespace coursenav

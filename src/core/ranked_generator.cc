// coursenav:deterministic — ranking ties break by id, never by hash order.
#include "core/ranked_generator.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <vector>

#include "core/combinations.h"
#include "core/engine.h"
#include "graph/learning_graph.h"
#include "obs/trace.h"
#include "util/check.h"

namespace coursenav {

namespace {

/// Frontier entry ordered by f = g + h (accumulated cost plus the
/// ranking's admissible cost-to-go bound), with insertion order as the
/// deterministic tie-break. With a consistent heuristic, goal statuses
/// still pop in non-decreasing true cost (f == g at goals), preserving
/// Lemma 2's exact top-k.
struct FrontierEntry {
  double cost;  // f-value
  int64_t sequence;
  NodeId node;
};

struct FrontierCompare {
  /// std::priority_queue is a max-heap; invert for a min-heap.
  bool operator()(const FrontierEntry& a, const FrontierEntry& b) const {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.sequence > b.sequence;
  }
};

}  // namespace

Result<RankedResult> GenerateRankedPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const RankingFunction& ranking, int k, const ExplorationOptions& options,
    const GoalDrivenConfig& config) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }

  obs::ScopedSpan run_span(obs::kSpanGenerateRanked);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options, start.term,
                                     end_term);
  internal::PruningOracle oracle(goal, engine, options, config);
  using Verdict = internal::PruningOracle::Verdict;
  obs::ExplorationMetrics& metrics = engine.metrics();
  /// Aggregate wall time spent inside the ranking function (EdgeCost +
  /// admissible bound), emitted as one "rank/evaluate" span per run.
  obs::StageAccumulator rank_stage;

  RankedResult result;
  LearningGraph graph;

  DynamicBitset root_options =
      ComputeOptions(catalog, schedule, start.completed, start.term, options);
  NodeId root = graph.AddRoot(start.term, start.completed, root_options);
  metrics.nodes_created += 1;
  construct_span.reset();

  {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    std::priority_queue<FrontierEntry, std::vector<FrontierEntry>,
                        FrontierCompare>
        frontier;
    // Reused X_i ∪ W scratch: pruned candidates cost no heap traffic.
    DynamicBitset next_completed;
    int64_t sequence = 0;
    const int m = options.max_courses_per_term;
    {
      obs::StageSample sample(&rank_stage);
      frontier.push(
          {ranking.RemainingCostLowerBound(start.completed, goal, m),
           sequence++, root});
    }

    while (!frontier.empty() && static_cast<int>(result.paths.size()) < k) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      FrontierEntry entry = frontier.top();
      frontier.pop();
      NodeId current = entry.node;
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes; references stay valid across
      // AddChildWithPathCost (no per-expansion snapshot copies). The
      // best-first frontier revisits arbitrary nodes, which arena stability
      // also makes safe.
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Popping in cost order makes each goal hit the next-cheapest path.
      if (goal.IsSatisfied(completed)) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        LearningPath path = LearningPath::FromGraph(graph, current);
        result.paths.push_back(std::move(path));
        continue;
      }
      if (term == end_term) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
        continue;
      }

      const Term child_term = term.Next();
      const int left_parent = oracle.LeftAt(completed);

      bool expanded = false;
      auto consider_child = [&](const DynamicBitset& selection) {
        next_completed = completed;
        next_completed |= selection;
        if (oracle.ClassifyChild(next_completed, selection.count(),
                                 child_term, left_parent) != Verdict::kKeep) {
          return;
        }
        double edge_cost;
        double child_cost;
        double cost_to_go;
        {
          obs::StageSample sample(&rank_stage);
          edge_cost = ranking.EdgeCost(selection, term);
          child_cost = ranking.Combine(node.path_cost, edge_cost);
          cost_to_go = ranking.RemainingCostLowerBound(next_completed, goal, m);
        }
        DynamicBitset next_options = ComputeOptions(
            catalog, schedule, next_completed, child_term, options);
        NodeId child = graph.AddChildWithPathCost(
            current, selection, DynamicBitset(next_completed),
            std::move(next_options), edge_cost, child_cost);
        metrics.nodes_created += 1;
        metrics.edges_created += 1;
        frontier.push({child_cost + cost_to_go, sequence++, child});
        expanded = true;
      };

      int min_selection = oracle.MinSelectionSize(left_parent, term);
      if (min_selection > 1) {
        int skipped_max =
            std::min(min_selection - 1, options.max_courses_per_term);
        oracle.AccountSkippedTimePruned(static_cast<int64_t>(
            CountSelections(node_options.count(), 1, skipped_max)));
      }

      if (!node_options.empty() && min_selection <= node_options.count()) {
        bool completed_enumeration = ForEachSelection(
            node_options, min_selection, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              if (!engine.CheckBudget(graph).ok()) return false;
              consider_child(selection);
              return true;
            });
        if (!completed_enumeration) {
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        consider_child(DynamicBitset(catalog.size()));
      }

      if (!expanded) {
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  rank_stage.Emit(obs::kSpanRankEvaluate);
  oracle.EmitStageSpans();
  if (CN_DCHECK_IS_ON()) {
    graph.CheckInvariants();
    oracle.CheckInvariants();
  }
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  run_span.AddInt("paths_returned",
                  static_cast<int64_t>(result.paths.size()));
  return result;
}

}  // namespace coursenav

#ifndef COURSENAV_CORE_COUNTING_H_
#define COURSENAV_CORE_COUNTING_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "core/pruning.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// Output of a DAG-memoized path count.
struct CountingResult {
  /// Total learning paths (graph leaves), saturating at UINT64_MAX.
  uint64_t total_paths = 0;
  /// Paths ending in a goal-satisfying status (for deadline-driven counts,
  /// statuses at the end semester).
  uint64_t goal_paths = 0;
  /// True if either count overflowed uint64 and saturated.
  bool saturated = false;
  /// Distinct (semester, completed-set) statuses visited — the size of the
  /// memo, i.e. of the collapsed status DAG.
  int64_t distinct_statuses = 0;
  double runtime_seconds = 0.0;
};

/// Counts deadline-driven learning paths without materializing the graph.
///
/// The expansion tree of Algorithm 1 revisits identical enrollment statuses
/// exponentially often: two different selection orders reaching the same
/// `(s_i, X_i)` root identical subtrees. Memoizing the per-status leaf
/// count collapses the tree into a status DAG, which counts the paper's
/// "41 million paths" configurations in seconds and bounded memory — this
/// is how the benches report the Table 2 cells whose graphs the paper
/// (and we, deliberately, under a memory budget) could not materialize.
///
/// The counted set is exactly the leaf set `GenerateDeadlineDrivenPaths`
/// would materialize with the same inputs (the property tests assert
/// equality).
///
/// `options.limits.max_nodes` bounds the number of distinct statuses;
/// `max_seconds` bounds wall-clock. Exceeding either fails with the budget
/// status (counts are not meaningful when partial).
Result<CountingResult> CountDeadlineDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options);

/// Counts goal-driven learning paths under the same pruning configuration
/// as `GenerateGoalDrivenPaths`; the counted set matches its leaf set.
Result<CountingResult> CountGoalDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config = {});

}  // namespace coursenav

#endif  // COURSENAV_CORE_COUNTING_H_

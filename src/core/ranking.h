#ifndef COURSENAV_CORE_RANKING_H_
#define COURSENAV_CORE_RANKING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule_history.h"
#include "catalog/term.h"
#include "requirements/goal.h"
#include "util/bitset.h"

namespace coursenav {

/// A customizable path-ranking function (Section 4.3.1).
///
/// A ranking assigns a cost to each edge — electing `selection` in `term` —
/// and the cost of a path is the sum of its edge costs; lower is better.
/// Costs must be non-negative: the ranked generator's best-first search
/// (Lemma 2) relies on subpaths never costing more than their extensions.
class RankingFunction {
 public:
  virtual ~RankingFunction() = default;

  /// Cost of electing `selection` during semester `term`. Must be >= 0.
  virtual double EdgeCost(const DynamicBitset& selection, Term term) const = 0;

  /// Folds one edge into an accumulated path cost. The default is addition
  /// (the paper's three rankings are all additive); overrides must keep
  /// the fold *monotone* — `Combine(c, e) >= c` for every `e >= 0` — which
  /// is the property Lemma 2's best-first argument needs. Bottleneck-style
  /// rankings override this with `max`.
  virtual double Combine(double path_cost, double edge_cost) const {
    return path_cost + edge_cost;
  }

  /// An admissible lower bound on the remaining cost from a status with
  /// completed set `completed` to any goal-satisfying status, taking at
  /// most `max_courses_per_term` courses per semester. The ranked
  /// generator runs A* with this as the heuristic; returning 0 (the
  /// default) degrades gracefully to uniform-cost search. To keep Lemma 2
  /// (exact top-k), implementations must be *consistent*: the bound may
  /// drop by at most `EdgeCost(W, ·)` per transition.
  virtual double RemainingCostLowerBound(const DynamicBitset& completed,
                                         const Goal& goal,
                                         int max_courses_per_term) const {
    (void)completed;
    (void)goal;
    (void)max_courses_per_term;
    return 0.0;
  }

  /// Identifier used in logs and bench output, e.g. "time".
  virtual std::string name() const = 0;
};

/// Time-based ranking: every edge costs 1, so a path's cost is its length
/// in semesters — top-k are the k shortest-in-time paths.
class TimeRanking final : public RankingFunction {
 public:
  double EdgeCost(const DynamicBitset& selection, Term term) const override;
  /// At least ceil(left / m) more semesters are needed when `left` courses
  /// are still missing; consistent because one semester completes at most
  /// m courses.
  double RemainingCostLowerBound(const DynamicBitset& completed,
                                 const Goal& goal,
                                 int max_courses_per_term) const override;
  std::string name() const override { return "time"; }
};

/// Workload-based ranking: an edge costs the sum of `w(c_i)` (weekly study
/// hours) of its elected courses — top-k are the "easiest" paths.
class WorkloadRanking final : public RankingFunction {
 public:
  /// `catalog` must outlive the ranking.
  explicit WorkloadRanking(const Catalog* catalog) : catalog_(catalog) {}

  double EdgeCost(const DynamicBitset& selection, Term term) const override;
  std::string name() const override { return "workload"; }

 private:
  const Catalog* catalog_;
  /// Dense per-course workload table, built on first EdgeCost call so the
  /// fold gathers from one contiguous array instead of chasing Course
  /// structs. The accumulation order (ascending course id) is unchanged,
  /// so costs stay bit-identical to the direct catalog walk. Rankings are
  /// used by the (serial) ranked generator only, so lazy mutation is safe.
  mutable std::vector<double> workload_;
};

/// Bottleneck-workload ranking (extension beyond the paper's three): ranks
/// by the *heaviest single semester* on the path, for students who care
/// about their worst term rather than total effort. The fold is `max`
/// instead of `+`; monotone, so top-k optimality is preserved.
class BottleneckWorkloadRanking final : public RankingFunction {
 public:
  /// `catalog` must outlive the ranking.
  explicit BottleneckWorkloadRanking(const Catalog* catalog)
      : inner_(catalog) {}

  double EdgeCost(const DynamicBitset& selection, Term term) const override;
  double Combine(double path_cost, double edge_cost) const override;
  std::string name() const override { return "bottleneck-workload"; }

 private:
  /// Delegate that owns the lazy workload table; held as a member (rather
  /// than constructed per call) so the table is built once per ranking.
  WorkloadRanking inner_;
};

/// Reliability-based ranking: the paper defines a path's reliability as the
/// product over its courses of `prob(c_i, s)` — the probability the course
/// is actually offered. Maximizing a product of probabilities is minimizing
/// the sum of `-log prob`, which is this ranking's (non-negative) edge
/// cost. A zero-probability offering yields +infinity: the path can never
/// materialize.
class ReliabilityRanking final : public RankingFunction {
 public:
  /// `model` must outlive the ranking.
  explicit ReliabilityRanking(const OfferingProbabilityModel* model)
      : model_(model) {}

  double EdgeCost(const DynamicBitset& selection, Term term) const override;
  std::string name() const override { return "reliability"; }

  /// Converts an accumulated path cost back into the path's reliability
  /// probability (`exp(-cost)`).
  static double CostToReliability(double cost);

 private:
  const OfferingProbabilityModel* model_;
  /// Per-term dense `-log prob(c, s)` tables (`+inf` for p <= 0), built
  /// lazily the first time a term is ranked. The per-course fold then reads
  /// one contiguous array in ascending course id — the same order and the
  /// same saturation rule as the direct model walk, so accumulated costs
  /// are bit-identical. Serial-generator use only, hence mutable laziness.
  mutable std::unordered_map<int, std::vector<double>> neg_log_by_term_;
};

}  // namespace coursenav

#endif  // COURSENAV_CORE_RANKING_H_

#ifndef COURSENAV_CORE_FILTERS_H_
#define COURSENAV_CORE_FILTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/term.h"
#include "graph/path.h"
#include "util/bitset.h"

namespace coursenav {

/// A predicate over complete learning paths — the paper's future-work
/// "customizable filters of the final learning paths" (Section 6), used to
/// cut an overwhelming result set down to the paths a student would
/// actually consider.
///
/// Filters are applied *after* generation: unlike the pruning strategies
/// they need no soundness argument and may be arbitrary (non-monotone)
/// conditions on the whole path.
class PathFilter {
 public:
  virtual ~PathFilter() = default;

  /// True if `path` should be kept.
  virtual bool Keep(const LearningPath& path) const = 0;

  /// Human-readable description for logs.
  virtual std::string Describe() const = 0;
};

/// Keeps paths whose every semester's workload (sum of `w(c_i)` over the
/// selection) stays at or below a ceiling.
class MaxTermWorkloadFilter final : public PathFilter {
 public:
  /// `catalog` must outlive the filter.
  MaxTermWorkloadFilter(const Catalog* catalog, double max_hours)
      : catalog_(catalog), max_hours_(max_hours) {}

  bool Keep(const LearningPath& path) const override;
  std::string Describe() const override;

 private:
  const Catalog* catalog_;
  double max_hours_;
};

/// Keeps paths that elect `course` no later than `deadline` — "I want the
/// internship-relevant databases course before my junior Fall".
class CourseByTermFilter final : public PathFilter {
 public:
  CourseByTermFilter(CourseId course, Term deadline)
      : course_(course), deadline_(deadline) {}

  bool Keep(const LearningPath& path) const override;
  std::string Describe() const override;

 private:
  CourseId course_;
  Term deadline_;
};

/// Keeps paths with at most `max_skips` empty semesters.
class MaxSkipsFilter final : public PathFilter {
 public:
  explicit MaxSkipsFilter(int max_skips) : max_skips_(max_skips) {}

  bool Keep(const LearningPath& path) const override;
  std::string Describe() const override;

 private:
  int max_skips_;
};

/// Keeps paths whose per-semester load never varies by more than
/// `max_spread` courses between the lightest and heaviest (non-skip)
/// semester — students who prefer an even pace.
class BalancedLoadFilter final : public PathFilter {
 public:
  explicit BalancedLoadFilter(int max_spread) : max_spread_(max_spread) {}

  bool Keep(const LearningPath& path) const override;
  std::string Describe() const override;

 private:
  int max_spread_;
};

/// Conjunction of filters: keeps a path only if every part keeps it.
class AllOfFilter final : public PathFilter {
 public:
  explicit AllOfFilter(std::vector<std::shared_ptr<const PathFilter>> parts)
      : parts_(std::move(parts)) {}

  bool Keep(const LearningPath& path) const override;
  std::string Describe() const override;

 private:
  std::vector<std::shared_ptr<const PathFilter>> parts_;
};

/// Returns the subset of `paths` kept by `filter`, preserving order.
std::vector<LearningPath> FilterPaths(std::vector<LearningPath> paths,
                                      const PathFilter& filter);

}  // namespace coursenav

#endif  // COURSENAV_CORE_FILTERS_H_

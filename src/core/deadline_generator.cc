// coursenav:deterministic — path output order is part of the contract.
#include "core/deadline_generator.h"

#include <optional>
#include <utility>
#include <vector>

#include "core/combinations.h"
#include "core/engine.h"
#include "core/parallel_bridge.h"
#include "obs/trace.h"
#include "util/check.h"

namespace coursenav {

Result<GenerationResult> GenerateDeadlineDrivenPaths(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }

  obs::ScopedSpan run_span(obs::kSpanGenerateDeadline);
  std::optional<obs::ScopedSpan> construct_span;
  construct_span.emplace(obs::kSpanGraphConstruct);
  internal::ExplorationEngine engine(catalog, schedule, options, start.term,
                                     end_term);
  obs::ExplorationMetrics& metrics = engine.metrics();
  GenerationResult result;
  LearningGraph& graph = result.graph;

  const bool parallel = options.num_threads != 0;
  if (parallel) {
    graph.ConfigureShards(internal::EffectiveWorkers(options.num_threads));
  }

  // Line 1-3 of Algorithm 1: the start node n1 with X1 = X and its options.
  DynamicBitset root_options =
      ComputeOptions(catalog, schedule, start.completed, start.term, options);
  NodeId root = graph.AddRoot(start.term, start.completed, root_options);
  metrics.nodes_created += 1;
  construct_span->AddInt("catalog_courses", catalog.size());
  construct_span.reset();

  if (parallel) {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);
    internal::ParallelExpandSpec spec;
    spec.catalog = &catalog;
    spec.schedule = &schedule;
    spec.options = &options;
    spec.end_term = end_term;
    result.termination = internal::ExpandFrontierParallel(
        engine, spec, options.num_threads, &graph);
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
    expand_span.AddInt("threads",
                       internal::EffectiveWorkers(options.num_threads));
  } else {
    obs::ScopedSpan expand_span(obs::kSpanExpandLoop);

    // Worklist of nodes with out-degree 0 (line 4). LIFO keeps the frontier
    // small and cache-warm; expansion order does not affect the output set.
    std::vector<NodeId> worklist{root};
    // Reused X_i ∪ W scratch; assignment reuses its capacity per candidate.
    DynamicBitset next_completed;

    while (!worklist.empty()) {
      Status budget = engine.CheckBudget(graph);
      if (!budget.ok()) {
        result.termination = budget;
        break;
      }
      NodeId current = worklist.back();
      worklist.pop_back();
      metrics.nodes_expanded += 1;

      // Arena storage never relocates nodes, so references stay valid
      // across AddChild; no per-expansion snapshot copies.
      const LearningNode& node = graph.node(current);
      const Term term = node.term;
      const DynamicBitset& completed = node.completed;
      const DynamicBitset& node_options = node.options;

      // Line 5: nodes in the end semester are goal vertices; stop there.
      if (term == end_term) {
        graph.MarkGoal(current);
        metrics.terminal_paths += 1;
        metrics.goal_paths += 1;
        continue;
      }

      bool expanded = false;
      auto add_child = [&](const DynamicBitset& selection) {
        next_completed = completed;
        next_completed |= selection;  // line 11: X_{i+1} = X_i ∪ W
        DynamicBitset next_options = ComputeOptions(
            catalog, schedule, next_completed, term.Next(), options);  // l.13
        NodeId child =
            graph.AddChild(current, selection, DynamicBitset(next_completed),
                           std::move(next_options));
        metrics.nodes_created += 1;
        metrics.edges_created += 1;
        worklist.push_back(child);
        expanded = true;
      };

      // Lines 7-14: one child per course combination W ⊆ Y_i, |W| <= m.
      if (!node_options.empty()) {
        bool completed_enumeration = ForEachSelection(
            node_options, 1, options.max_courses_per_term,
            [&](const DynamicBitset& selection) {
              if (!engine.CheckBudget(graph).ok()) return false;
              add_child(selection);
              return true;
            });
        if (!completed_enumeration) {
          result.termination = engine.CheckBudget(graph);
          break;
        }
      }

      // Skip edge: advance a semester with an empty selection when nothing
      // is electable now but courses remain later (Figure 3's n4 → n7).
      // With allow_voluntary_skip the student may idle unconditionally.
      bool skip_edge =
          options.allow_voluntary_skip ||
          (node_options.empty() && engine.FutureCourseExists(completed, term));
      if (skip_edge) {
        add_child(DynamicBitset(catalog.size()));
      }

      if (!expanded) {
        // Dead end: no options now and none later. The path ends here.
        metrics.terminal_paths += 1;
        metrics.dead_end_paths += 1;
      }
    }
    expand_span.AddInt("nodes_expanded", metrics.nodes_expanded);
  }

  if (CN_DCHECK_IS_ON()) result.graph.CheckInvariants();
  result.stats = engine.StatsView();
  run_span.AddInt("nodes_created", result.stats.nodes_created);
  if (!result.termination.ok()) return result;

  result.termination = Status::OK();
  return result;
}

}  // namespace coursenav

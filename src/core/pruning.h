#ifndef COURSENAV_CORE_PRUNING_H_
#define COURSENAV_CORE_PRUNING_H_

#include <unordered_map>

#include "catalog/term.h"
#include "core/engine.h"
#include "core/options.h"
#include "core/stats.h"
#include "obs/trace.h"
#include "requirements/goal.h"
#include "util/bitset.h"

namespace coursenav {

/// Tuning knobs of the goal-driven (and ranked) generators. The defaults
/// are the paper's configuration; the all-off configuration is Table 1's
/// "No Pruning" baseline.
struct GoalDrivenConfig {
  /// Equation 1 / Lemma 1: cut a candidate child when even taking the
  /// maximum course load in every remaining semester cannot close the gap
  /// to the goal.
  bool enable_time_pruning = true;

  /// Section 4.2.2: cut a candidate child when the goal is unsatisfiable
  /// even after taking *every* course offered in the remaining semesters.
  bool enable_availability_pruning = true;

  /// "The student has to take at least min_i courses in semester s_i":
  /// skip enumerating selections below the Equation 1 lower bound outright
  /// instead of generating and pruning them one by one. Equivalent output,
  /// faster; only active while time pruning is on.
  bool enforce_min_selection = true;

  /// Memoize availability-pruning verdicts per (semester, reachable-set)
  /// key (effective for monotone goals only). Pure optimization; disable
  /// for the ablation bench.
  bool cache_availability_checks = true;
};

namespace internal {

/// Implements the paper's two pruning strategies for one generation run,
/// with instrumentation. Internal — used by the goal-driven and ranked
/// generators.
class PruningOracle {
 public:
  enum class Verdict { kKeep, kPrunedTime, kPrunedAvailability };

  /// All references must outlive the oracle.
  PruningOracle(const Goal& goal, const ExplorationEngine& engine,
                const ExplorationOptions& options,
                const GoalDrivenConfig& config);

  /// `left_i` at a node about to be expanded, or -1 when time pruning is
  /// disabled (the value is then never used).
  int LeftAt(const DynamicBitset& completed) const;

  /// Equation 1's per-semester minimum selection size at a node in
  /// `parent_term` with remaining-course count `left_parent`; 1 when the
  /// bound does not bind or min-selection enforcement is off. Selections
  /// smaller than the returned size are provably time-pruned — callers may
  /// skip enumerating them after accounting via `CountSelections`.
  int MinSelectionSize(int left_parent, Term parent_term) const;

  /// Applies time-based then course-availability pruning to a candidate
  /// child (`child_completed` at `child_term`, reached by electing
  /// `selection_size` courses). `left_parent` is `LeftAt` of the parent.
  /// Increments the matching pruning counter in the engine's metric
  /// registry when pruning, and (when a tracer is installed) accumulates
  /// per-strategy wall time for `EmitStageSpans`.
  Verdict ClassifyChild(const DynamicBitset& child_completed,
                        int selection_size, Term child_term, int left_parent);

  /// Records `count` candidates as time-pruned without classifying them
  /// individually (the Equation 1 min-selection shortcut).
  void AccountSkippedTimePruned(int64_t count);

  /// Emits one aggregate span per pruning strategy ("prune/time",
  /// "prune/availability") carrying call counts, pruned counts, and the
  /// accumulated strategy time. No-op without an installed tracer.
  void EmitStageSpans() const;

 private:
  const Goal& goal_;
  const ExplorationEngine& engine_;
  const ExplorationOptions& options_;
  const GoalDrivenConfig& config_;
  bool goal_is_monotone_;
  obs::StageAccumulator time_stage_;
  obs::StageAccumulator availability_stage_;

  /// term index -> reachable-set -> achievability verdict.
  std::unordered_map<
      int, std::unordered_map<DynamicBitset, bool, DynamicBitsetHash>>
      availability_cache_;
};

}  // namespace internal
}  // namespace coursenav

#endif  // COURSENAV_CORE_PRUNING_H_

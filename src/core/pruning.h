#ifndef COURSENAV_CORE_PRUNING_H_
#define COURSENAV_CORE_PRUNING_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/term.h"
#include "core/engine.h"
#include "core/options.h"
#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "requirements/goal.h"
#include "util/bitset.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav {

/// Tuning knobs of the goal-driven (and ranked) generators. The defaults
/// are the paper's configuration; the all-off configuration is Table 1's
/// "No Pruning" baseline.
struct GoalDrivenConfig {
  /// Equation 1 / Lemma 1: cut a candidate child when even taking the
  /// maximum course load in every remaining semester cannot close the gap
  /// to the goal.
  bool enable_time_pruning = true;

  /// Section 4.2.2: cut a candidate child when the goal is unsatisfiable
  /// even after taking *every* course offered in the remaining semesters.
  bool enable_availability_pruning = true;

  /// "The student has to take at least min_i courses in semester s_i":
  /// skip enumerating selections below the Equation 1 lower bound outright
  /// instead of generating and pruning them one by one. Equivalent output,
  /// faster; only active while time pruning is on.
  bool enforce_min_selection = true;

  /// Memoize availability-pruning verdicts per (semester, reachable-set)
  /// key (effective for monotone goals only). Pure optimization; disable
  /// for the ablation bench.
  bool cache_availability_checks = true;
};

namespace internal {

/// A structure-of-arrays staging buffer for one parent expansion's
/// candidate children. Instead of classifying each `X_i ∪ W` the moment a
/// selection is enumerated, generators stage the candidate rows here —
/// completed-set words, selection words, and selection popcounts each in
/// one contiguous matrix — and classify a whole batch with clause-major
/// kernels (`PruningOracle::ClassifyBatch`). Candidates keep enumeration
/// order, so materializing the kept rows in index order reproduces the
/// node-at-a-time output exactly.
class CandidateBatch {
 public:
  /// Default batch capacity: bounded so staged rows stay L1/L2-resident
  /// (64 rows × 160 words = 80 KiB at the 10k-course scale).
  static constexpr size_t kDefaultCapacity = 64;

  /// (Re)shapes the buffer for a universe and clears it. Allocates once;
  /// repeated calls with the same universe reuse the matrices.
  void Configure(int universe_size, size_t capacity = kDefaultCapacity) {
    universe_size_ = universe_size;
    stride_ = (static_cast<size_t>(universe_size) + 63) / 64;
    capacity_ = capacity;
    completed_words_.resize(capacity_ * stride_);
    selection_words_.resize(capacity_ * stride_);
    selection_sizes_.resize(capacity_);
    count_ = 0;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }
  void Clear() { count_ = 0; }

  int universe_size() const { return universe_size_; }
  size_t word_stride() const { return stride_; }

  /// Stages the candidate `parent_completed ∪ selection` (the union is
  /// fused straight into the staging row — no bitset temporary).
  void Push(const DynamicBitset& parent_completed,
            const DynamicBitset& selection) {
    uint64_t* completed_row = completed_words_.data() + count_ * stride_;
    uint64_t* selection_row = selection_words_.data() + count_ * stride_;
    simd::UnionInto(completed_row, parent_completed.word_data(),
                    selection.word_data(), stride_);
    std::memcpy(selection_row, selection.word_data(),
                stride_ * sizeof(uint64_t));
    selection_sizes_[count_] = simd::Popcount(selection_row, stride_);
    ++count_;
  }

  int selection_size(size_t i) const { return selection_sizes_[i]; }
  const uint64_t* completed_row(size_t i) const {
    return completed_words_.data() + i * stride_;
  }

  /// The staged completed sets as a Goal batch view.
  CompletedBatchView completed_view() const {
    return {completed_words_.data(), stride_, count_, universe_size_};
  }

  /// Reconstructs staged rows into caller-owned scratch bitsets (which must
  /// already span this universe).
  void CopyCompletedTo(size_t i, DynamicBitset* out) const {
    out->AssignWords(completed_words_.data() + i * stride_);
  }
  void CopySelectionTo(size_t i, DynamicBitset* out) const {
    out->AssignWords(selection_words_.data() + i * stride_);
  }

 private:
  int universe_size_ = 0;
  size_t stride_ = 0;
  size_t capacity_ = 0;
  size_t count_ = 0;
  std::vector<uint64_t> completed_words_;
  std::vector<uint64_t> selection_words_;
  std::vector<int> selection_sizes_;
};

/// Read-mostly second-level availability-pruning cache shared by the
/// per-worker oracles of one parallel run. Keys are (term index,
/// reachable-set) pairs — the same key space as the oracle's private L1
/// map — behind a small array of striped mutexes so concurrent lookups of
/// unrelated keys rarely contend. Verdicts are immutable once computed, so
/// a racing double-insert of the same key stores the same value and the
/// first entry simply wins.
class SharedAvailabilityCache {
 public:
  /// Returns true and sets `*achievable` on a hit.
  bool Lookup(int term_index, const DynamicBitset& reachable,
              bool* achievable) const {
    const Stripe& stripe = StripeFor(term_index, reachable);
    MutexLock lock(stripe.mu);
    auto it = stripe.verdicts.find(Key{term_index, &reachable});
    if (it == stripe.verdicts.end()) return false;
    *achievable = it->second;
    return true;
  }

  void Insert(int term_index, DynamicBitset reachable, bool achievable) {
    Stripe& stripe = StripeFor(term_index, reachable);
    MutexLock lock(stripe.mu);
    auto it = stripe.verdicts.find(Key{term_index, &reachable});
    if (it != stripe.verdicts.end()) return;
    stripe.owned.push_back(
        std::make_unique<DynamicBitset>(std::move(reachable)));
    stripe.verdicts.emplace(Key{term_index, stripe.owned.back().get()},
                            achievable);
  }

 private:
  /// The map never owns the bitset it keys on directly (lookups would then
  /// copy the probe); it keys on a pointer plus deep-compare semantics,
  /// with inserted keys kept alive in `owned`.
  struct Key {
    int term_index;
    const DynamicBitset* reachable;
    bool operator==(const Key& other) const {
      return term_index == other.term_index &&
             *reachable == *other.reachable;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return DynamicBitsetHash{}(*key.reachable) * 1000003u +
             static_cast<size_t>(key.term_index);
    }
  };
  struct Stripe {
    mutable Mutex mu;
    std::unordered_map<Key, bool, KeyHash> verdicts CN_GUARDED_BY(mu);
    std::vector<std::unique_ptr<DynamicBitset>> owned CN_GUARDED_BY(mu);
  };

  static constexpr size_t kNumStripes = 8;

  const Stripe& StripeFor(int term_index,
                          const DynamicBitset& reachable) const {
    return stripes_[KeyHash{}(Key{term_index, &reachable}) % kNumStripes];
  }
  Stripe& StripeFor(int term_index, const DynamicBitset& reachable) {
    return stripes_[KeyHash{}(Key{term_index, &reachable}) % kNumStripes];
  }

  std::array<Stripe, kNumStripes> stripes_;
};

/// Implements the paper's two pruning strategies for one generation run,
/// with instrumentation. Internal — used by the goal-driven and ranked
/// generators (one oracle per run), and by the parallel expander (one
/// oracle per worker, each with a detached metrics bundle and all sharing
/// one `SharedAvailabilityCache` L2).
class PruningOracle {
 public:
  enum class Verdict { kKeep, kPrunedTime, kPrunedAvailability };

  /// All references must outlive the oracle. `metrics` is where pruning
  /// tallies land; null means the engine's own bundle (the serial path).
  /// `shared_cache` adds a cross-worker L2 behind the private L1 map; null
  /// (the serial path) keeps the oracle lock-free.
  PruningOracle(const Goal& goal, const ExplorationEngine& engine,
                const ExplorationOptions& options,
                const GoalDrivenConfig& config,
                obs::ExplorationMetrics* metrics = nullptr,
                SharedAvailabilityCache* shared_cache = nullptr);

  /// `left_i` at a node about to be expanded, or -1 when time pruning is
  /// disabled (the value is then never used).
  int LeftAt(const DynamicBitset& completed) const;

  /// Equation 1's per-semester minimum selection size at a node in
  /// `parent_term` with remaining-course count `left_parent`; 1 when the
  /// bound does not bind or min-selection enforcement is off. Selections
  /// smaller than the returned size are provably time-pruned — callers may
  /// skip enumerating them after accounting via `CountSelections`.
  int MinSelectionSize(int left_parent, Term parent_term) const;

  /// Applies time-based then course-availability pruning to a candidate
  /// child (`child_completed` at `child_term`, reached by electing
  /// `selection_size` courses). `left_parent` is `LeftAt` of the parent.
  /// Increments the matching pruning counter in the engine's metric
  /// registry when pruning, and (when a tracer is installed) accumulates
  /// per-strategy wall time for `EmitStageSpans`.
  Verdict ClassifyChild(const DynamicBitset& child_completed,
                        int selection_size, Term child_term, int left_parent);

  /// Batched `ClassifyChild` over one staged frontier batch (all candidates
  /// share `child_term` and the parent's `left_parent`). Writes one verdict
  /// per staged candidate to `verdicts` (resized to `batch.size()`).
  ///
  /// Equivalence contract (pinned by tests/pruning_batch_test.cc): for
  /// every candidate the verdict — and the resulting pruning-counter
  /// deltas — are exactly what a `ClassifyChild` loop over the batch in
  /// index order would produce. The only differences are performance-
  /// shaped: exact time bounds are computed clause-major for the whole
  /// batch, the availability phase reuses one scratch reachable set, and
  /// each phase records one aggregate stage sample instead of one per
  /// candidate.
  void ClassifyBatch(const CandidateBatch& batch, Term child_term,
                     int left_parent, std::vector<Verdict>* verdicts);

  /// Records `count` candidates as time-pruned without classifying them
  /// individually (the Equation 1 min-selection shortcut).
  void AccountSkippedTimePruned(int64_t count);

  /// Emits one aggregate span per pruning strategy ("prune/time",
  /// "prune/availability") carrying call counts, pruned counts, and the
  /// accumulated strategy time. No-op without an installed tracer.
  void EmitStageSpans() const;

  /// Structural validator (debug builds): aborts via CN_CHECK when an L1
  /// availability-cache entry is inconsistent with the run's catalog —
  /// a term index outside the exploration window, a reachable set whose
  /// universe differs from the catalog's, or a reachable set missing
  /// courses that are certainly available from its term. Call sites gate
  /// on CN_DCHECK_IS_ON(); always compiled so tests can invoke it.
  void CheckInvariants() const;

 private:
  const Goal& goal_;
  const ExplorationEngine& engine_;
  const ExplorationOptions& options_;
  const GoalDrivenConfig& config_;
  obs::ExplorationMetrics* metrics_;
  SharedAvailabilityCache* shared_cache_;
  bool goal_is_monotone_;
  obs::StageAccumulator time_stage_;
  obs::StageAccumulator availability_stage_;

  /// L1: term index -> reachable-set -> achievability verdict. Private to
  /// this oracle (one worker), so lookups take no lock.
  std::unordered_map<
      int, std::unordered_map<DynamicBitset, bool, DynamicBitsetHash>>
      availability_cache_;

  /// ClassifyBatch scratch (reused across batches; sized on first use).
  std::vector<int> batch_bounds_;
  std::unique_ptr<bool[]> batch_achievable_;
  size_t batch_achievable_capacity_ = 0;
  DynamicBitset batch_completed_scratch_;
  DynamicBitset batch_reachable_scratch_;
};

}  // namespace internal
}  // namespace coursenav

#endif  // COURSENAV_CORE_PRUNING_H_

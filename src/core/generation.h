#ifndef COURSENAV_CORE_GENERATION_H_
#define COURSENAV_CORE_GENERATION_H_

#include "core/stats.h"
#include "graph/learning_graph.h"
#include "util/status.h"

namespace coursenav {

/// Output of a graph-materializing generator.
///
/// `termination` is OK when the exploration ran to completion. A
/// ResourceExhausted or DeadlineExceeded termination means a budget in
/// `ExplorationLimits` was hit: `graph` and `stats` then describe the
/// partial exploration (nodes still on the worklist were never expanded).
struct GenerationResult {
  LearningGraph graph;
  ExplorationStats stats;
  Status termination;
};

}  // namespace coursenav

#endif  // COURSENAV_CORE_GENERATION_H_

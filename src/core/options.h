#ifndef COURSENAV_CORE_OPTIONS_H_
#define COURSENAV_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bitset.h"
#include "util/cancellation.h"

namespace coursenav {

/// Resource budgets for a generation run. Exceeding a budget stops the run
/// with ResourceExhausted/DeadlineExceeded termination and a partial graph —
/// the controlled version of the paper's Table 2 "could not store the graph
/// in memory" cells.
struct ExplorationLimits {
  /// Maximum nodes materialized (0 = unlimited).
  int64_t max_nodes = 0;
  /// Maximum approximate graph heap bytes (0 = unlimited).
  size_t max_memory_bytes = 0;
  /// Wall-clock budget in seconds (0 = unlimited).
  double max_seconds = 0.0;
};

/// Student constraints shared by all three generators (Section 3's
/// front-end parameters).
struct ExplorationOptions {
  /// `m`: maximum courses per semester. The paper's evaluation uses 3.
  int max_courses_per_term = 3;

  /// Courses the student refuses to take; never elected and never counted
  /// as options. Empty optional = no exclusions.
  std::optional<DynamicBitset> avoid_courses;

  /// When true, an empty selection ("skip this semester") is offered even
  /// when options exist. The paper's Figure 3 semantics — an empty edge
  /// only when `Y_i` is empty but future courses remain — is the default.
  bool allow_voluntary_skip = false;

  ExplorationLimits limits;

  /// Worker threads for frontier expansion. 0 (the default) runs the
  /// classic serial loop; N >= 1 runs the work-stealing parallel expander
  /// with N workers (clamped to LearningGraph::kMaxShards). Output is
  /// byte-identical across all values after canonicalization — see
  /// docs/parallelism.md. The ranked (best-first, top-k) generator is
  /// inherently order-dependent and always runs serially.
  int num_threads = 0;

  /// Cooperative cancellation: generators poll this token at every budget
  /// check and stop with a Cancelled termination within one node expansion
  /// of RequestCancel(). The default token is inert (never cancelled).
  CancellationToken cancel;
};

}  // namespace coursenav

#endif  // COURSENAV_CORE_OPTIONS_H_

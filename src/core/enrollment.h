#ifndef COURSENAV_CORE_ENROLLMENT_H_
#define COURSENAV_CORE_ENROLLMENT_H_

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/options.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav {

/// A student's enrollment status at a point in time (Section 2): the
/// current semester `s` and the set of completed courses `X`. The option
/// set `Y` is derived (ComputeOptions below) rather than stored.
struct EnrollmentStatus {
  Term term;
  DynamicBitset completed;
};

/// Computes the option set
/// `Y = {c_j ∈ C − X | Q_j(X) == true, s ∈ S_j}` minus any avoided
/// courses: the courses the student may elect in `term` given completed set
/// `completed`.
DynamicBitset ComputeOptions(const Catalog& catalog,
                             const OfferingSchedule& schedule,
                             const DynamicBitset& completed, Term term,
                             const ExplorationOptions& options);

/// Validates a (catalog, schedule, start, options) tuple shared by all
/// generators: the catalog must be finalized, the completed set sized to
/// it, `m >= 1`, and the avoid set (if any) sized to the catalog.
Status ValidateExplorationInputs(const Catalog& catalog,
                                 const OfferingSchedule& schedule,
                                 const EnrollmentStatus& start,
                                 const ExplorationOptions& options);

}  // namespace coursenav

#endif  // COURSENAV_CORE_ENROLLMENT_H_

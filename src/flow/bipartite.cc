#include "flow/bipartite.h"

#include <cassert>
#include <cstddef>
#include <deque>
#include <limits>

namespace coursenav::flow {

namespace {
constexpr int kUnmatched = -1;
constexpr int kInf = std::numeric_limits<int>::max();
}  // namespace

BipartiteMatcher::BipartiteMatcher(int num_left, int num_right)
    : num_left_(num_left),
      num_right_(num_right),
      adjacency_(static_cast<size_t>(num_left)),
      match_left_(static_cast<size_t>(num_left), kUnmatched),
      match_right_(static_cast<size_t>(num_right), kUnmatched),
      distance_(static_cast<size_t>(num_left)) {
  assert(num_left >= 0 && num_right >= 0);
}

void BipartiteMatcher::AddEdge(int left, int right) {
  assert(left >= 0 && left < num_left_);
  assert(right >= 0 && right < num_right_);
  adjacency_[static_cast<size_t>(left)].push_back(right);
  solved_ = false;
}

bool BipartiteMatcher::Bfs() {
  std::deque<int> queue;
  for (int l = 0; l < num_left_; ++l) {
    if (match_left_[static_cast<size_t>(l)] == kUnmatched) {
      distance_[static_cast<size_t>(l)] = 0;
      queue.push_back(l);
    } else {
      distance_[static_cast<size_t>(l)] = kInf;
    }
  }
  bool found_augmenting = false;
  while (!queue.empty()) {
    int l = queue.front();
    queue.pop_front();
    for (int r : adjacency_[static_cast<size_t>(l)]) {
      int next = match_right_[static_cast<size_t>(r)];
      if (next == kUnmatched) {
        found_augmenting = true;
      } else if (distance_[static_cast<size_t>(next)] == kInf) {
        distance_[static_cast<size_t>(next)] =
            distance_[static_cast<size_t>(l)] + 1;
        queue.push_back(next);
      }
    }
  }
  return found_augmenting;
}

bool BipartiteMatcher::Dfs(int left) {
  for (int r : adjacency_[static_cast<size_t>(left)]) {
    int next = match_right_[static_cast<size_t>(r)];
    if (next == kUnmatched ||
        (distance_[static_cast<size_t>(next)] ==
             distance_[static_cast<size_t>(left)] + 1 &&
         Dfs(next))) {
      match_left_[static_cast<size_t>(left)] = r;
      match_right_[static_cast<size_t>(r)] = left;
      return true;
    }
  }
  distance_[static_cast<size_t>(left)] = kInf;
  return false;
}

int BipartiteMatcher::MaxMatching() {
  if (solved_) return matching_size_;
  std::fill(match_left_.begin(), match_left_.end(), kUnmatched);
  std::fill(match_right_.begin(), match_right_.end(), kUnmatched);
  matching_size_ = 0;
  while (Bfs()) {
    for (int l = 0; l < num_left_; ++l) {
      if (match_left_[static_cast<size_t>(l)] == kUnmatched && Dfs(l)) {
        ++matching_size_;
      }
    }
  }
  solved_ = true;
  return matching_size_;
}

int BipartiteMatcher::MatchOfLeft(int left) const {
  assert(solved_);
  return match_left_[static_cast<size_t>(left)];
}

int BipartiteMatcher::MatchOfRight(int right) const {
  assert(solved_);
  return match_right_[static_cast<size_t>(right)];
}

}  // namespace coursenav::flow

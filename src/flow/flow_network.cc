#include "flow/flow_network.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace coursenav::flow {

FlowNetwork::FlowNetwork(int num_nodes)
    : adjacency_(static_cast<size_t>(num_nodes)) {
  assert(num_nodes >= 0);
}

int FlowNetwork::AddEdge(int from, int to, int64_t capacity) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  assert(capacity >= 0);
  int id = static_cast<int>(edges_.size());
  edges_.push_back({to, capacity});
  edges_.push_back({from, 0});
  original_capacity_.push_back(capacity);
  original_capacity_.push_back(0);
  adjacency_[static_cast<size_t>(from)].push_back(id);
  adjacency_[static_cast<size_t>(to)].push_back(id + 1);
  return id;
}

int64_t FlowNetwork::FlowOn(int edge_id) const {
  assert(edge_id >= 0 && edge_id % 2 == 0 &&
         static_cast<size_t>(edge_id) < edges_.size());
  // Flow pushed on a forward edge equals the residual capacity accumulated
  // on its reverse.
  return edges_[static_cast<size_t>(edge_id) + 1].capacity;
}

void FlowNetwork::ResetFlow() {
  for (size_t i = 0; i < edges_.size(); ++i) {
    edges_[i].capacity = original_capacity_[i];
  }
}

namespace {
constexpr int64_t kFlowInfinity = std::numeric_limits<int64_t>::max();
}  // namespace

/// Edmonds–Karp: BFS shortest augmenting paths. Friend of FlowNetwork.
class EdmondsKarpSolver {
 public:
  EdmondsKarpSolver(FlowNetwork* network, int source, int sink)
      : edges_(network->edges_),
        adjacency_(network->adjacency_),
        source_(source),
        sink_(sink) {}

  int64_t Run() {
    int64_t total = 0;
    std::vector<int> parent_edge(adjacency_.size());
    while (true) {
      std::fill(parent_edge.begin(), parent_edge.end(), -1);
      std::deque<int> queue{source_};
      parent_edge[static_cast<size_t>(source_)] = -2;  // visited marker
      while (!queue.empty() && parent_edge[static_cast<size_t>(sink_)] == -1) {
        int node = queue.front();
        queue.pop_front();
        for (int edge_id : adjacency_[static_cast<size_t>(node)]) {
          const auto& edge = edges_[static_cast<size_t>(edge_id)];
          if (edge.capacity > 0 &&
              parent_edge[static_cast<size_t>(edge.to)] == -1) {
            parent_edge[static_cast<size_t>(edge.to)] = edge_id;
            queue.push_back(edge.to);
          }
        }
      }
      if (parent_edge[static_cast<size_t>(sink_)] == -1) break;

      int64_t bottleneck = kFlowInfinity;
      for (int node = sink_; node != source_;) {
        int edge_id = parent_edge[static_cast<size_t>(node)];
        bottleneck = std::min(bottleneck,
                              edges_[static_cast<size_t>(edge_id)].capacity);
        node = edges_[static_cast<size_t>(edge_id ^ 1)].to;
      }
      for (int node = sink_; node != source_;) {
        int edge_id = parent_edge[static_cast<size_t>(node)];
        edges_[static_cast<size_t>(edge_id)].capacity -= bottleneck;
        edges_[static_cast<size_t>(edge_id ^ 1)].capacity += bottleneck;
        node = edges_[static_cast<size_t>(edge_id ^ 1)].to;
      }
      total += bottleneck;
    }
    return total;
  }

 private:
  std::vector<FlowNetwork::Edge>& edges_;
  const std::vector<std::vector<int>>& adjacency_;
  int source_;
  int sink_;
};

/// Dinic: level graph + blocking flows. Friend of FlowNetwork.
class DinicSolver {
 public:
  DinicSolver(FlowNetwork* network, int source, int sink)
      : edges_(network->edges_),
        adjacency_(network->adjacency_),
        source_(source),
        sink_(sink),
        level_(adjacency_.size()),
        next_edge_(adjacency_.size()) {}

  int64_t Run() {
    int64_t total = 0;
    while (BuildLevels()) {
      std::fill(next_edge_.begin(), next_edge_.end(), 0);
      while (int64_t pushed = Push(source_, kFlowInfinity)) total += pushed;
    }
    return total;
  }

 private:
  bool BuildLevels() {
    std::fill(level_.begin(), level_.end(), -1);
    level_[static_cast<size_t>(source_)] = 0;
    std::deque<int> queue{source_};
    while (!queue.empty()) {
      int node = queue.front();
      queue.pop_front();
      for (int edge_id : adjacency_[static_cast<size_t>(node)]) {
        const auto& edge = edges_[static_cast<size_t>(edge_id)];
        if (edge.capacity > 0 && level_[static_cast<size_t>(edge.to)] < 0) {
          level_[static_cast<size_t>(edge.to)] =
              level_[static_cast<size_t>(node)] + 1;
          queue.push_back(edge.to);
        }
      }
    }
    return level_[static_cast<size_t>(sink_)] >= 0;
  }

  int64_t Push(int node, int64_t limit) {
    if (node == sink_ || limit == 0) return limit;
    auto& cursor = next_edge_[static_cast<size_t>(node)];
    const auto& out = adjacency_[static_cast<size_t>(node)];
    for (; cursor < out.size(); ++cursor) {
      int edge_id = out[cursor];
      auto& edge = edges_[static_cast<size_t>(edge_id)];
      if (edge.capacity <= 0 ||
          level_[static_cast<size_t>(edge.to)] !=
              level_[static_cast<size_t>(node)] + 1) {
        continue;
      }
      int64_t pushed = Push(edge.to, std::min(limit, edge.capacity));
      if (pushed > 0) {
        edge.capacity -= pushed;
        edges_[static_cast<size_t>(edge_id ^ 1)].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<FlowNetwork::Edge>& edges_;
  const std::vector<std::vector<int>>& adjacency_;
  int source_;
  int sink_;
  std::vector<int> level_;
  std::vector<size_t> next_edge_;
};

int64_t EdmondsKarpMaxFlow(FlowNetwork* network, int source, int sink) {
  assert(source != sink);
  return EdmondsKarpSolver(network, source, sink).Run();
}

int64_t DinicMaxFlow(FlowNetwork* network, int source, int sink) {
  assert(source != sink);
  return DinicSolver(network, source, sink).Run();
}

}  // namespace coursenav::flow

#ifndef COURSENAV_FLOW_BIPARTITE_H_
#define COURSENAV_FLOW_BIPARTITE_H_

#include <vector>

namespace coursenav::flow {

/// Maximum bipartite matching via Hopcroft–Karp.
///
/// Used by the requirement engine's course→requirement-slot allocation when
/// every slot has unit capacity; it is equivalent to (and faster than) the
/// general max-flow formulation, and serves as its cross-check in the
/// property tests.
class BipartiteMatcher {
 public:
  /// A bipartite graph with `num_left` left and `num_right` right vertices.
  BipartiteMatcher(int num_left, int num_right);

  /// Adds an edge between left vertex `left` and right vertex `right`.
  void AddEdge(int left, int right);

  /// Computes and returns the maximum matching size. Idempotent.
  int MaxMatching();

  /// After MaxMatching(): the right vertex matched to `left`, or -1.
  int MatchOfLeft(int left) const;
  /// After MaxMatching(): the left vertex matched to `right`, or -1.
  int MatchOfRight(int right) const;

 private:
  bool Bfs();
  bool Dfs(int left);

  int num_left_;
  int num_right_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> match_left_;
  std::vector<int> match_right_;
  std::vector<int> distance_;
  bool solved_ = false;
  int matching_size_ = 0;
};

}  // namespace coursenav::flow

#endif  // COURSENAV_FLOW_BIPARTITE_H_

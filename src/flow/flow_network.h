#ifndef COURSENAV_FLOW_FLOW_NETWORK_H_
#define COURSENAV_FLOW_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

namespace coursenav::flow {

/// A capacitated directed graph in residual-edge representation.
///
/// Edges are stored in pairs: edge `2k` is the forward edge, `2k+1` its
/// residual reverse. This is the substrate for the max-flow solvers used to
/// compute `left_i` — the minimum number of courses still needed to satisfy
/// a degree requirement (Equation 1 cites Ford–Fulkerson per Parameswaran
/// et al., TOIS 2011).
class FlowNetwork {
 public:
  /// A network with `num_nodes` nodes and no edges.
  explicit FlowNetwork(int num_nodes);

  /// Adds a directed edge with `capacity >= 0`; returns its edge id. The
  /// paired residual edge has capacity 0.
  int AddEdge(int from, int to, int64_t capacity);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()) / 2; }

  /// Flow currently assigned to forward edge `edge_id` (as returned by
  /// AddEdge).
  int64_t FlowOn(int edge_id) const;

  /// Resets all flow to zero, keeping the topology.
  void ResetFlow();

 private:
  friend class EdmondsKarpSolver;
  friend class DinicSolver;

  struct Edge {
    int to;
    int64_t capacity;  // residual capacity
  };

  std::vector<Edge> edges_;
  std::vector<int64_t> original_capacity_;
  std::vector<std::vector<int>> adjacency_;  // node -> edge ids
};

/// Computes max flow from `source` to `sink` using BFS augmenting paths
/// (Edmonds–Karp, the classic Ford–Fulkerson instantiation). Mutates the
/// network's flow assignment.
int64_t EdmondsKarpMaxFlow(FlowNetwork* network, int source, int sink);

/// Computes max flow with Dinic's algorithm (level graph + blocking flows).
/// Same contract as EdmondsKarpMaxFlow; asymptotically faster on the dense
/// requirement networks (ablation bench `ablation_flow`).
int64_t DinicMaxFlow(FlowNetwork* network, int source, int sink);

}  // namespace coursenav::flow

#endif  // COURSENAV_FLOW_FLOW_NETWORK_H_

#ifndef COURSENAV_EXEC_WORKER_POOL_H_
#define COURSENAV_EXEC_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coursenav::exec {

/// A fixed set of persistent worker threads executing fork-join rounds.
///
/// `Run(body)` invokes `body(worker_index)` once on every worker and blocks
/// until all of them return — one parallel *round*. Threads persist across
/// rounds (parked on a condition variable between them), so repeated runs
/// pay no thread spawn/join cost.
///
/// The pool itself has no notion of cancellation or deadlines: shutdown is
/// cooperative at the body level. Bodies are expected to poll the run's
/// `CancellationToken` / `DeadlineBudget` (the ParallelExpander does so at
/// every budget check) and return promptly; `Run` then unblocks. The
/// destructor wakes and joins all threads.
///
/// Bodies must not throw — the library reports failures through `Status`.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs `body(worker_index)` on every worker, blocking until all return.
  /// One round at a time: `Run` is not reentrant and must be called from a
  /// single orchestrating thread.
  void Run(const std::function<void(int)>& body);

 private:
  void WorkerMain(int index);

  std::mutex mu_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  const std::function<void(int)>* body_ = nullptr;  // valid during a round
  uint64_t round_ = 0;   // bumped by Run to release the workers
  int remaining_ = 0;    // workers still inside the current round
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace coursenav::exec

#endif  // COURSENAV_EXEC_WORKER_POOL_H_

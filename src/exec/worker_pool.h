#ifndef COURSENAV_EXEC_WORKER_POOL_H_
#define COURSENAV_EXEC_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav::exec {

/// A fixed set of persistent worker threads executing fork-join rounds.
///
/// `Run(body)` invokes `body(worker_index)` once on every worker and blocks
/// until all of them return — one parallel *round*. Threads persist across
/// rounds (parked on a condition variable between them), so repeated runs
/// pay no thread spawn/join cost.
///
/// The pool itself has no notion of cancellation or deadlines: shutdown is
/// cooperative at the body level. Bodies are expected to poll the run's
/// `CancellationToken` / `DeadlineBudget` (the ParallelExpander does so at
/// every budget check) and return promptly; `Run` then unblocks. The
/// destructor wakes and joins all threads.
///
/// Bodies must not throw — the library reports failures through `Status`.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs `body(worker_index)` on every worker, blocking until all return.
  /// One round at a time: `Run` is not reentrant and must be called from a
  /// single orchestrating thread.
  void Run(const std::function<void(int)>& body);

 private:
  void WorkerMain(int index);

  Mutex mu_;
  CondVar round_start_;
  CondVar round_done_;
  /// Valid during a round.
  const std::function<void(int)>* body_ CN_GUARDED_BY(mu_) = nullptr;
  /// Bumped by Run to release the workers.
  uint64_t round_ CN_GUARDED_BY(mu_) = 0;
  /// Workers still inside the current round.
  int remaining_ CN_GUARDED_BY(mu_) = 0;
  bool shutdown_ CN_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written in ctor/dtor only
};

}  // namespace coursenav::exec

#endif  // COURSENAV_EXEC_WORKER_POOL_H_

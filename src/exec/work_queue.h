#ifndef COURSENAV_EXEC_WORK_QUEUE_H_
#define COURSENAV_EXEC_WORK_QUEUE_H_

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace coursenav::exec {

/// Per-worker work-stealing deques.
///
/// Each worker owns one deque: it pushes and pops at the back (LIFO, which
/// keeps the frontier depth-first — small and cache-warm, like the serial
/// generators' worklist), while thieves take from the front, where the
/// oldest items sit. For tree expansion the oldest items are the shallowest
/// nodes, i.e. the largest stealable subtrees, so one steal buys a thief a
/// long stretch of local work.
///
/// Thieves steal *half* the victim's queue (ceil(n/2)) in one locked visit
/// rather than one item at a time: under frontier explosion this halves the
/// number of steal operations per unit of work and spreads load in O(log n)
/// steals. Stealing is two-phase — collect under the victim's lock, release
/// it, then refill the thief's own deque — so no call path ever holds two
/// deque locks at once (no lock-order cycles between mutual thieves).
///
/// Each deque is guarded by its own mutex. A lock per push/pop is deliberate:
/// expansion tasks are whole-node expansions (microseconds each, dozens of
/// bitset operations), so a contended-uncontended mutex pair per task is
/// noise, and the mutex gives the ownership-transfer happens-before edge the
/// graph's thread-safety contract relies on — a popped item's node contents
/// are fully visible to the popping worker without any per-field atomics.
template <typename T>
class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(int num_workers) {
    deques_.reserve(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) {
      deques_.push_back(std::make_unique<Deque>());
    }
  }

  int num_workers() const { return static_cast<int>(deques_.size()); }

  /// Enqueues `item` at the back of `worker`'s deque.
  void Push(int worker, T item) {
    Deque& deque = *deques_[static_cast<size_t>(worker)];
    MutexLock lock(deque.mu);
    deque.items.push_back(std::move(item));
  }

  /// Pops the most recently pushed item of `worker`'s own deque (LIFO).
  bool TryPopLocal(int worker, T* out) {
    Deque& deque = *deques_[static_cast<size_t>(worker)];
    MutexLock lock(deque.mu);
    if (deque.items.empty()) return false;
    *out = std::move(deque.items.back());
    deque.items.pop_back();
    return true;
  }

  /// Attempts to steal work for `thief` from the other workers' deques,
  /// visiting victims round-robin starting after the thief. On success the
  /// first stolen item lands in `*out` and the remainder of the stolen
  /// half refills the thief's own deque.
  bool TrySteal(int thief, T* out) {
    const int n = num_workers();
    for (int offset = 1; offset < n; ++offset) {
      const int victim = (thief + offset) % n;
      std::vector<T> loot;
      {
        Deque& deque = *deques_[static_cast<size_t>(victim)];
        MutexLock lock(deque.mu);
        const size_t available = deque.items.size();
        if (available == 0) continue;
        const size_t take = (available + 1) / 2;  // steal-half, from the front
        loot.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          loot.push_back(std::move(deque.items.front()));
          deque.items.pop_front();
        }
      }
      // Victim lock released; now refill our own deque, preserving the
      // shallowest-at-front order so later thieves still grab the largest
      // subtrees. The first stolen item (the shallowest) is returned for
      // immediate expansion.
      *out = std::move(loot.front());
      if (loot.size() > 1) {
        Deque& own = *deques_[static_cast<size_t>(thief)];
        MutexLock lock(own.mu);
        for (size_t i = 1; i < loot.size(); ++i) {
          own.items.push_back(std::move(loot[i]));
        }
      }
      return true;
    }
    return false;
  }

 private:
  struct Deque {
    Mutex mu;
    std::deque<T> items CN_GUARDED_BY(mu);
  };

  /// unique_ptr: deques hold a mutex (immovable) and need stable addresses.
  std::vector<std::unique_ptr<Deque>> deques_;
};

}  // namespace coursenav::exec

#endif  // COURSENAV_EXEC_WORK_QUEUE_H_

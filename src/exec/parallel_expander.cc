// coursenav:deterministic — parallel expansion must match serial output.
#include "core/parallel_bridge.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/combinations.h"
#include "core/enrollment.h"
#include "exec/work_queue.h"
#include "exec/worker_pool.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"

namespace coursenav::internal {

int EffectiveWorkers(int num_threads) {
  if (num_threads < 1) return 1;
  return std::min(num_threads, LearningGraph::kMaxShards);
}

namespace {

/// One frontier entry: a node awaiting expansion. The stable pointer is the
/// cross-thread access path — `graph.node(id)` may race with the owning
/// shard's chunk-table growth, the pointed-at node never moves.
struct FrontierItem {
  NodeId id = kInvalidNodeId;
  LearningNode* node = nullptr;
};

/// Global budget state shared by all workers: relaxed-atomic node/byte
/// tallies (exactness is not needed — the serial path's own checks are
/// already >= comparisons against a running total) plus a sticky stop
/// verdict. The first worker to observe any non-OK condition trips the
/// sentinel; everyone else observes `stopped()` at the next check and
/// unwinds, leaving a well-formed partial graph.
class BudgetSentinel {
 public:
  BudgetSentinel(const ExplorationLimits& limits, int64_t initial_nodes,
                 size_t initial_memory)
      : limits_(limits),
        nodes_(initial_nodes),
        memory_(static_cast<int64_t>(initial_memory)) {}

  void AddNodes(int64_t n) { nodes_.fetch_add(n, std::memory_order_relaxed); }
  void AddMemory(int64_t bytes) {
    memory_.fetch_add(bytes, std::memory_order_relaxed);
  }

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Records the first non-OK verdict; later trips are ignored.
  void Trip(Status status) {
    MutexLock lock(mu_);
    if (!status_.ok()) return;
    status_ = std::move(status);
    stopped_.store(true, std::memory_order_release);
  }

  /// The tripping verdict (OK while running).
  Status status() const {
    MutexLock lock(mu_);
    return status_;
  }

  /// Conservative pre-check for batched expansion: true when materializing
  /// up to `staged` more nodes could reach the node budget. Workers flush
  /// their staged batch when this fires so the exact `CheckLimits` below
  /// sees the same node count the unbatched loop would have.
  bool MightExceedNodeBudget(size_t staged) const {
    return limits_.max_nodes > 0 &&
           nodes_.load(std::memory_order_relaxed) +
                   static_cast<int64_t>(staged) >=
               limits_.max_nodes;
  }

  /// The global node/byte limits, mirroring ExplorationEngine::CheckBudget's
  /// wording and order.
  Status CheckLimits() const {
    if (limits_.max_nodes > 0 &&
        nodes_.load(std::memory_order_relaxed) >= limits_.max_nodes) {
      return Status::ResourceExhausted(
          StrFormat("node budget of %lld reached",
                    static_cast<long long>(limits_.max_nodes)));
    }
    if (limits_.max_memory_bytes > 0 &&
        memory_.load(std::memory_order_relaxed) >=
            static_cast<int64_t>(limits_.max_memory_bytes)) {
      return Status::ResourceExhausted(StrFormat(
          "memory budget of %zu bytes reached", limits_.max_memory_bytes));
    }
    return Status::OK();
  }

 private:
  const ExplorationLimits& limits_;
  std::atomic<int64_t> nodes_;
  std::atomic<int64_t> memory_;
  std::atomic<bool> stopped_{false};
  mutable Mutex mu_;
  /// Written once (first trip), read at unwind.
  Status status_ CN_GUARDED_BY(mu_);
};

/// Per-worker state. Everything here is touched by exactly one worker
/// during the run; the main thread constructs it (binding the thread-local
/// tracer into the oracle's stage accumulators) and folds it at join.
struct WorkerCtx {
  WorkerCtx(int worker_index, const ParallelExpandSpec& spec,
            ExplorationEngine& engine, double remaining_seconds,
            SharedAvailabilityCache* shared_cache)
      : shard(worker_index),
        metrics(nullptr),  // detached tally sheet, folded at join
        deadline(remaining_seconds, spec.options->cancel),
        scratch(spec.catalog->size()),
        selection_scratch(spec.catalog->size()) {
    if (spec.goal != nullptr) {
      oracle.emplace(*spec.goal, engine, *spec.options, *spec.config,
                     &metrics, shared_cache);
    }
    batch.Configure(spec.catalog->size());
  }

  int shard;
  obs::ExplorationMetrics metrics;
  DeadlineBudget deadline;
  std::optional<PruningOracle> oracle;
  /// Reused scratch bitsets: staged batch rows are copied back into these
  /// (assigned, not reallocated) when a kept candidate is materialized.
  DynamicBitset scratch;
  DynamicBitset selection_scratch;
  /// SoA staging buffer for the worker's current parent expansion, and the
  /// verdict vector ClassifyBatch fills for it.
  CandidateBatch batch;
  std::vector<PruningOracle::Verdict> verdicts;
  size_t last_memory = 0;
};

/// Everything the workers share, read-only or internally synchronized.
struct ExpandEnv {
  const ParallelExpandSpec* spec;
  ExplorationEngine* engine;
  LearningGraph* graph;
  BudgetSentinel* sentinel;
  exec::WorkStealingQueues<FrontierItem>* queues;
  /// Queued + in-flight frontier items; 0 <=> the expansion is complete.
  std::atomic<int64_t>* pending;
  /// The shared empty selection for skip edges (read-only).
  const DynamicBitset* empty_selection;
};

/// Mirror of ExplorationEngine::CheckBudget for one worker: same tally
/// (one `budget_checks` bump per call), same verdict order — allocation
/// failure, node budget, memory budget, then deadline/cancellation.
Status WorkerBudgetCheck(WorkerCtx& ctx, const ExpandEnv& env) {
  ++ctx.metrics.budget_checks;
  if (env.sentinel->stopped()) return env.sentinel->status();
  if (env.graph->ShardAllocationFailed(ctx.shard)) {
    return Status::ResourceExhausted(
        "simulated allocation failure (fault injection)");
  }
  Status limits = env.sentinel->CheckLimits();
  if (!limits.ok()) return limits;
  return ctx.deadline.Check();
}

/// Expands one frontier node, replicating the serial generators' loop body
/// candidate-for-candidate (deadline-driven when spec.goal is null, the
/// goal-driven variant otherwise).
void ExpandNode(WorkerCtx& ctx, int worker_index, const FrontierItem& item,
                const ExpandEnv& env) {
  Status budget = WorkerBudgetCheck(ctx, env);
  if (!budget.ok()) {
    env.sentinel->Trip(std::move(budget));
    return;
  }
  ctx.metrics.nodes_expanded += 1;

  LearningNode* node = item.node;
  const Term term = node->term;
  // Stable references: the arena never relocates the node, and this worker
  // owns it exclusively, so no snapshot copies (the serial loops' old
  // reallocation workaround) are needed.
  const DynamicBitset& completed = node->completed;
  const DynamicBitset& node_options = node->options;

  const ParallelExpandSpec& spec = *env.spec;
  if (spec.goal != nullptr) {
    if (spec.goal->IsSatisfied(completed)) {
      node->is_goal = true;
      ctx.metrics.terminal_paths += 1;
      ctx.metrics.goal_paths += 1;
      return;
    }
    if (term == spec.end_term) {
      ctx.metrics.terminal_paths += 1;
      ctx.metrics.dead_end_paths += 1;
      return;
    }
  } else if (term == spec.end_term) {
    node->is_goal = true;
    ctx.metrics.terminal_paths += 1;
    ctx.metrics.goal_paths += 1;
    return;
  }

  const Term child_term = term.Next();
  const int left_parent =
      spec.goal != nullptr ? ctx.oracle->LeftAt(completed) : 0;

  bool expanded = false;
  // Candidates are staged into the worker's SoA batch (fusing X_i ∪ W into
  // a contiguous row) and classified batch-at-a-time; kept rows are then
  // materialized in staging order, which is exactly enumeration order, so
  // the shard-local node sequence matches the unbatched loop.
  auto flush_batch = [&]() {
    if (ctx.batch.empty()) return;
    if (spec.goal != nullptr) {
      ctx.oracle->ClassifyBatch(ctx.batch, child_term, left_parent,
                                &ctx.verdicts);
    } else {
      ctx.verdicts.assign(ctx.batch.size(), PruningOracle::Verdict::kKeep);
    }
    for (size_t i = 0; i < ctx.batch.size(); ++i) {
      if (ctx.verdicts[i] != PruningOracle::Verdict::kKeep) continue;
      ctx.batch.CopyCompletedTo(i, &ctx.scratch);
      ctx.batch.CopySelectionTo(i, &ctx.selection_scratch);
      DynamicBitset next_options =
          ComputeOptions(*spec.catalog, *spec.schedule, ctx.scratch,
                         child_term, *spec.options);
      LearningGraph::CreatedChild child = env.graph->AddChildTo(
          ctx.shard, item.id, node, ctx.selection_scratch,
          DynamicBitset(ctx.scratch), std::move(next_options),
          /*edge_cost=*/0.0, /*path_cost=*/node->path_cost);
      ctx.metrics.nodes_created += 1;
      ctx.metrics.edges_created += 1;
      env.sentinel->AddNodes(1);
      size_t shard_memory = env.graph->ShardMemoryUsage(ctx.shard);
      env.sentinel->AddMemory(
          static_cast<int64_t>(shard_memory - ctx.last_memory));
      ctx.last_memory = shard_memory;
      env.pending->fetch_add(1, std::memory_order_relaxed);
      env.queues->Push(worker_index, FrontierItem{child.id, child.node});
      expanded = true;
    }
    ctx.batch.Clear();
  };

  // The goal-driven Equation 1 shortcut: selections below the minimum size
  // provably miss the deadline; account them without enumerating.
  int min_selection = 1;
  if (spec.goal != nullptr) {
    min_selection = ctx.oracle->MinSelectionSize(left_parent, term);
    if (min_selection > 1) {
      int skipped_max =
          std::min(min_selection - 1, spec.options->max_courses_per_term);
      ctx.oracle->AccountSkippedTimePruned(static_cast<int64_t>(
          CountSelections(node_options.count(), 1, skipped_max)));
    }
  }

  bool enumerate = !node_options.empty();
  if (spec.goal != nullptr) {
    enumerate = enumerate && min_selection <= node_options.count();
  }
  if (enumerate) {
    bool completed_enumeration = ForEachSelection(
        node_options, min_selection, spec.options->max_courses_per_term,
        [&](const DynamicBitset& selection) {
          // Flush before the exact budget check whenever the staged rows
          // could cross the node budget, so `CheckLimits` sees the same
          // node tally the unbatched loop would have at this selection.
          if (!ctx.batch.empty() &&
              env.sentinel->MightExceedNodeBudget(ctx.batch.size())) {
            flush_batch();
          }
          Status per_selection = WorkerBudgetCheck(ctx, env);
          if (!per_selection.ok()) {
            // Candidates staged before the trip already passed their budget
            // checks; materialize them (matching the unbatched loop) before
            // propagating the verdict.
            flush_batch();
            env.sentinel->Trip(std::move(per_selection));
            return false;
          }
          ctx.batch.Push(completed, selection);
          if (ctx.batch.full()) flush_batch();
          return true;
        });
    // Mirrors the serial `break`: a truncated node is left partially
    // expanded and never accounted as terminal.
    if (!completed_enumeration) return;
  }

  bool skip_edge = spec.options->allow_voluntary_skip ||
                   (node_options.empty() &&
                    env.engine->FutureCourseExists(completed, term));
  if (skip_edge) ctx.batch.Push(completed, *env.empty_selection);
  flush_batch();

  if (!expanded) {
    ctx.metrics.terminal_paths += 1;
    ctx.metrics.dead_end_paths += 1;
  }
}

void WorkerBody(int worker_index, WorkerCtx& ctx, const ExpandEnv& env) {
  for (;;) {
    if (env.sentinel->stopped()) return;
    FrontierItem item;
    if (env.queues->TryPopLocal(worker_index, &item) ||
        env.queues->TrySteal(worker_index, &item)) {
      ExpandNode(ctx, worker_index, item, env);
      env.pending->fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (env.pending->load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
}

}  // namespace

Status ExpandFrontierParallel(ExplorationEngine& engine,
                              const ParallelExpandSpec& spec, int num_workers,
                              LearningGraph* graph) {
  num_workers = EffectiveWorkers(num_workers);

  BudgetSentinel sentinel(spec.options->limits, graph->num_nodes(),
                          graph->MemoryUsage());
  exec::WorkStealingQueues<FrontierItem> queues(num_workers);
  std::atomic<int64_t> pending{1};  // the root
  const DynamicBitset empty_selection(spec.catalog->size());

  ExpandEnv env;
  env.spec = &spec;
  env.engine = &engine;
  env.graph = graph;
  env.sentinel = &sentinel;
  env.queues = &queues;
  env.pending = &pending;
  env.empty_selection = &empty_selection;

  // Per-worker deadlines inherit whatever wall-clock budget the engine has
  // left (the engine's own DeadlineBudget keeps ticking for stats); +inf
  // means no deadline, an already-expired budget trips on the first check.
  double remaining = engine.budget().RemainingSeconds();
  double per_worker_deadline;
  if (std::isinf(remaining)) {
    per_worker_deadline = 0.0;  // no deadline
  } else {
    per_worker_deadline = remaining > 0 ? remaining : 1e-9;
  }

  // The workers' L2: the caller's epoch-scoped process tier when one is
  // provided (src/cache/ promotes the verdicts across runs), a run-local
  // cache otherwise.
  SharedAvailabilityCache local_shared_cache;
  SharedAvailabilityCache* shared_cache = spec.shared_availability != nullptr
                                              ? spec.shared_availability
                                              : &local_shared_cache;
  std::vector<std::unique_ptr<WorkerCtx>> ctxs;
  ctxs.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    // Constructed on this thread so the oracle's stage accumulators bind
    // the run's tracer (sampling from workers is safe: each accumulator is
    // single-worker, and clock reads are const).
    ctxs.push_back(std::make_unique<WorkerCtx>(
        w, spec, engine, per_worker_deadline, shared_cache));
    ctxs[static_cast<size_t>(w)]->last_memory = graph->ShardMemoryUsage(w);
  }

  queues.Push(0, FrontierItem{graph->root(), graph->stable_node_ptr(0)});

  {
    exec::WorkerPool pool(num_workers);
    pool.Run([&](int w) { WorkerBody(w, *ctxs[static_cast<size_t>(w)], env); });
  }

  // Join: fold the detached per-worker tallies into the engine's bundle
  // (published once, by the engine, at destruction) and emit each worker's
  // pruning stage spans.
  for (const std::unique_ptr<WorkerCtx>& ctx : ctxs) {
    engine.metrics().MergeFrom(ctx->metrics);
    if (ctx->oracle.has_value()) ctx->oracle->EmitStageSpans();
  }

  Status termination = sentinel.status();
  graph->Canonicalize();
  return termination;
}

}  // namespace coursenav::internal

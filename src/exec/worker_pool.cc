#include "exec/worker_pool.h"

#include "util/check.h"

namespace coursenav::exec {

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  round_start_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::Run(const std::function<void(int)>& body) {
  MutexLock lock(mu_);
  // Not reentrant: a second Run while a round is live (from a worker body
  // or another orchestrator thread) would corrupt the round accounting.
  // The serving layer's dispatcher depends on this being loud, not racy.
  CN_CHECK(body_ == nullptr && remaining_ == 0)
      << "WorkerPool::Run is not reentrant (a round is already running)";
  body_ = &body;
  remaining_ = size();
  ++round_;
  round_start_.NotifyAll();
  while (remaining_ != 0) round_done_.Wait(mu_);
  body_ = nullptr;
}

void WorkerPool::WorkerMain(int index) {
  uint64_t seen_round = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && round_ == seen_round) round_start_.Wait(mu_);
      if (shutdown_) return;
      seen_round = round_;
      body = body_;
    }
    (*body)(index);
    {
      MutexLock lock(mu_);
      if (--remaining_ == 0) round_done_.NotifyAll();
    }
  }
}

}  // namespace coursenav::exec

#ifndef COURSENAV_SERVE_ADMIN_H_
#define COURSENAV_SERVE_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "serve/server.h"
#include "util/result.h"

namespace coursenav::serve {

/// Transport tuning for the admin introspection plane.
struct AdminConfig {
  /// Loopback by default: the admin plane exposes operational internals and
  /// must never face the internet.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
  int backlog = 8;
  /// A scraper must deliver its request (and take the response) within
  /// these budgets or the connection is dropped.
  double recv_timeout_seconds = 2.0;
  double send_timeout_seconds = 2.0;
  /// Request line + headers larger than this are answered 400 and dropped.
  size_t max_request_bytes = 8192;
};

/// The live introspection plane over an ExplorationServer: a second,
/// loopback-only listener speaking just enough HTTP/1.0 for Prometheus
/// scrapers, load-balancer health checks, and humans with a CLI.
///
/// Endpoints:
///   /metrics             Prometheus text exposition of the global registry
///                        (per-tenant latency series included).
///   /healthz             200 "ok serving" while admitting; 503 with the
///                        lifecycle state otherwise (idle/draining/stopped).
///   /statusz             One JSON object: uptime, outcome counters, queue
///                        depth, per-tenant quotas/inflight and SLO
///                        attainment, trace-sink and recorder health.
///   /statusz?recorder=1  /statusz plus the flight recorder's records.
///
/// Connections are served serially on the accept thread: the admin plane is
/// a low-traffic diagnostics port, and serial service keeps it bounded — a
/// stuck scraper delays the next scrape, never the serving path. GET only;
/// anything else is answered 405. `HandleGet` is the transport-free core,
/// so tests and the CLI can hit endpoints without a socket.
///
/// The core server is borrowed and must outlive the admin plane.
class AdminServer {
 public:
  /// One admin-plane response, transport-free.
  struct HttpResponse {
    int status_code = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;

    bool ok() const { return status_code == 200; }
  };

  AdminServer(const ExplorationServer* core, AdminConfig config = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and spawns the accept/serve thread.
  Status Start();

  /// Closes the listener (and any in-progress connection), then joins.
  /// Idempotent.
  void Stop();

  /// The bound port (the ephemeral pick when config.port was 0).
  int port() const { return port_; }

  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Serves one GET target ("/metrics", "/healthz", "/statusz",
  /// "/statusz?recorder=1"); unknown targets get 404. This is the whole
  /// admin plane minus the socket — tests call it directly.
  HttpResponse HandleGet(std::string_view target) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  HttpResponse Metrics() const;
  HttpResponse Healthz() const;
  HttpResponse Statusz(bool include_recorder) const;

  const ExplorationServer* core_;
  const AdminConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::atomic<int64_t> requests_served_{0};
};

/// Minimal HTTP/1.0 GET client for the admin plane: connects, requests
/// `target`, and parses the status line + body. Shared by the CLI `admin`
/// subcommand and the CI smoke test so neither needs curl. Unavailable
/// (connect/timeout) and malformed responses come back as error Status.
Result<AdminServer::HttpResponse> AdminHttpGet(const std::string& host,
                                               int port,
                                               std::string_view target,
                                               double timeout_seconds = 5.0);

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_ADMIN_H_

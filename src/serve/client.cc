#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/random.h"
#include "util/string_util.h"

namespace coursenav::serve {

namespace {

bool ReadFully(int fd, unsigned char* buffer, size_t length) {
  size_t read_so_far = 0;
  while (read_so_far < length) {
    ssize_t n = recv(fd, buffer + read_so_far, length - read_so_far, 0);
    if (n > 0) {
      read_so_far += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool WriteFully(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = send(fd, data.data() + written, data.size() - written,
                     MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void DefaultSleep(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1e3)));
}

}  // namespace

Result<RetryResult> CallWithRetry(const TransportFn& transport,
                                  std::string_view payload,
                                  const RetryPolicy& policy,
                                  const SleepFn& sleep) {
  const SleepFn& do_sleep = sleep ? sleep : SleepFn(DefaultSleep);
  Random jitter(policy.jitter_seed);
  RetryResult result;
  double backoff_ms = policy.initial_backoff_ms;
  Status last_transport_error;
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Result<ResponseEnvelope> response = transport(payload);
    ++result.attempts;
    if (response.ok()) {
      result.response = std::move(*response);
      if (result.response.outcome != ResponseOutcome::kOverloaded) {
        return result;
      }
      last_transport_error = Status::OK();
    } else {
      // A malformed conversation (InvalidArgument) can never heal; other
      // transport failures (reset, timeout) are worth retrying.
      if (response.status().IsInvalidArgument()) return response.status();
      last_transport_error = response.status();
    }
    if (attempt + 1 == attempts) break;

    // Equal jitter over the exponential step, floored by the server's own
    // retry_after_ms hint when one arrived.
    double step = backoff_ms;
    if (response.ok() && result.response.retry_after_ms > step) {
      step = result.response.retry_after_ms;
    }
    double sleep_ms = step / 2 + jitter.UniformDouble() * (step / 2);
    obs::GlobalMetrics().GetCounter(obs::kMetricServeClientRetries)
        ->Increment();
    do_sleep(sleep_ms);
    result.backoff_ms_total += sleep_ms;
    backoff_ms = std::min(backoff_ms * policy.multiplier,
                          policy.max_backoff_ms);
  }
  if (!last_transport_error.ok()) return last_transport_error;
  return result;  // attempts exhausted; the final kOverloaded answer
}

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ServeClient> ServeClient::Connect(std::string_view host, int port,
                                         double timeout_seconds) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  if (timeout_seconds > 0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
    (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, std::string(host).c_str(), &address.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host '" + std::string(host) + "'");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    Status status = Status::FailedPrecondition(
        StrFormat("connect(%s:%d): %s", std::string(host).c_str(), port,
                  std::strerror(errno)));
    close(fd);
    return status;
  }
  return ServeClient(fd);
}

Result<std::string> ServeClient::Call(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!WriteFully(fd_, EncodeFrame(payload))) {
    Close();
    return Status::DeadlineExceeded("send failed or timed out");
  }
  unsigned char header[kFrameHeaderBytes];
  if (!ReadFully(fd_, header, kFrameHeaderBytes)) {
    Close();
    return Status::DeadlineExceeded("no response (timeout or peer closed)");
  }
  Result<size_t> length = DecodeFrameHeader(header, max_frame_bytes_);
  if (!length.ok()) {
    Close();
    return length.status();
  }
  std::string body(*length, '\0');
  if (*length > 0 &&
      !ReadFully(fd_, reinterpret_cast<unsigned char*>(body.data()),
                 *length)) {
    Close();
    return Status::DeadlineExceeded("truncated response");
  }
  return body;
}

Result<ResponseEnvelope> ServeClient::CallEnvelope(std::string_view payload) {
  COURSENAV_ASSIGN_OR_RETURN(std::string body, Call(payload));
  COURSENAV_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(body));
  return ResponseEnvelope::FromJson(json);
}

TransportFn ServeClient::Transport() {
  return [this](std::string_view payload) { return CallEnvelope(payload); };
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace coursenav::serve

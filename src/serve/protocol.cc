#include "serve/protocol.h"

#include <initializer_list>
#include <utility>

#include "util/string_util.h"

namespace coursenav::serve {

namespace {

/// Tenant names become metric labels and log fields, and trace ids become
/// correlation keys, so the charset is deliberately tight for both.
bool IsValidIdentifier(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status CheckKnownKeys(const JsonValue& object,
                      std::initializer_list<std::string_view> known,
                      std::string_view what) {
  for (const auto& [key, value] : object.object()) {
    bool found = false;
    for (std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(StrFormat(
          "unknown %s field '%s'", std::string(what).c_str(), key.c_str()));
    }
  }
  return Status::OK();
}

JsonValue StatusToJson(const Status& status) {
  JsonValue::Object object;
  object["code"] = JsonValue(std::string(StatusCodeToString(status.code())));
  object["message"] = JsonValue(status.message());
  return JsonValue(std::move(object));
}

Status StatusFromJson(const JsonValue& json, Status* out) {
  COURSENAV_ASSIGN_OR_RETURN(JsonValue code_value, json.Get("code"));
  COURSENAV_ASSIGN_OR_RETURN(std::string code_name, code_value.GetString());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue message_value, json.Get("message"));
  COURSENAV_ASSIGN_OR_RETURN(std::string message, message_value.GetString());
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (StatusCodeToString(code) == code_name) {
      *out = Status(code, std::move(message));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown status code '" + code_name + "'");
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  uint32_t length = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

Result<size_t> DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                                 size_t max_frame_bytes) {
  uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                    (static_cast<uint32_t>(header[1]) << 16) |
                    (static_cast<uint32_t>(header[2]) << 8) |
                    static_cast<uint32_t>(header[3]);
  if (static_cast<size_t>(length) > max_frame_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds the %zu-byte limit", length,
                  max_frame_bytes));
  }
  return static_cast<size_t>(length);
}

std::string_view ResponseOutcomeName(ResponseOutcome outcome) {
  switch (outcome) {
    case ResponseOutcome::kOk:
      return "ok";
    case ResponseOutcome::kDegraded:
      return "degraded";
    case ResponseOutcome::kTimeout:
      return "timeout";
    case ResponseOutcome::kOverloaded:
      return "overloaded";
    case ResponseOutcome::kRejected:
      return "rejected";
    case ResponseOutcome::kCancelled:
      return "cancelled";
    case ResponseOutcome::kSlowClient:
      return "slow-client";
    case ResponseOutcome::kFailed:
      return "failed";
  }
  return "failed";
}

Result<ResponseOutcome> ParseResponseOutcome(std::string_view name) {
  for (ResponseOutcome outcome :
       {ResponseOutcome::kOk, ResponseOutcome::kDegraded,
        ResponseOutcome::kTimeout, ResponseOutcome::kOverloaded,
        ResponseOutcome::kRejected, ResponseOutcome::kCancelled,
        ResponseOutcome::kSlowClient, ResponseOutcome::kFailed}) {
    if (ResponseOutcomeName(outcome) == name) return outcome;
  }
  return Status::InvalidArgument("unknown response outcome '" +
                                 std::string(name) + "'");
}

Result<RequestEnvelope> ParseRequestEnvelope(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request envelope must be a JSON object");
  }
  COURSENAV_RETURN_IF_ERROR(
      CheckKnownKeys(json,
                     {"tenant", "request_id", "deadline_ms", "degrade",
                      "payload", "trace", "trace_id", "request"},
                     "envelope"));
  RequestEnvelope envelope;
  if (json.Has("tenant")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue tenant, json.Get("tenant"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.tenant, tenant.GetString());
  }
  if (!IsValidIdentifier(envelope.tenant)) {
    return Status::InvalidArgument(
        "tenant must be 1-64 characters from [A-Za-z0-9_.-]");
  }
  if (json.Has("request_id")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue id, json.Get("request_id"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.request_id, id.GetString());
    if (envelope.request_id.size() > 128) {
      return Status::InvalidArgument("request_id longer than 128 characters");
    }
  }
  if (json.Has("deadline_ms")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue deadline, json.Get("deadline_ms"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.deadline_ms, deadline.GetNumber());
    if (envelope.deadline_ms < 0) {
      return Status::InvalidArgument("deadline_ms must be >= 0");
    }
  }
  if (json.Has("degrade")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue degrade, json.Get("degrade"));
    COURSENAV_ASSIGN_OR_RETURN(bool value, degrade.GetBool());
    envelope.degrade = value;
  }
  if (json.Has("payload")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue payload, json.Get("payload"));
    COURSENAV_ASSIGN_OR_RETURN(std::string mode, payload.GetString());
    if (mode == "full") {
      envelope.full_payload = true;
    } else if (mode != "summary") {
      return Status::InvalidArgument("payload must be 'summary' or 'full'");
    }
  }
  if (json.Has("trace")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue trace, json.Get("trace"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.want_trace, trace.GetBool());
  }
  if (json.Has("trace_id")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue trace_id, json.Get("trace_id"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.trace_id, trace_id.GetString());
    if (!IsValidIdentifier(envelope.trace_id)) {
      return Status::InvalidArgument(
          "trace_id must be 1-64 characters from [A-Za-z0-9_.-]");
    }
  }
  COURSENAV_ASSIGN_OR_RETURN(envelope.request, json.Get("request"));
  if (!envelope.request.is_object()) {
    return Status::InvalidArgument("'request' must be a JSON object");
  }
  return envelope;
}

JsonValue MakeRequestEnvelope(std::string_view tenant,
                              std::string_view request_id, double deadline_ms,
                              JsonValue request, std::optional<bool> degrade,
                              bool full_payload, bool want_trace,
                              std::string_view trace_id) {
  JsonValue::Object object;
  object["tenant"] = JsonValue(std::string(tenant));
  object["request_id"] = JsonValue(std::string(request_id));
  if (deadline_ms > 0) object["deadline_ms"] = JsonValue(deadline_ms);
  if (degrade.has_value()) object["degrade"] = JsonValue(*degrade);
  if (full_payload) object["payload"] = JsonValue("full");
  if (want_trace) object["trace"] = JsonValue(true);
  if (!trace_id.empty()) object["trace_id"] = JsonValue(std::string(trace_id));
  object["request"] = std::move(request);
  return JsonValue(std::move(object));
}

JsonValue ResponseEnvelope::ToJson() const {
  JsonValue::Object object;
  object["tenant"] = JsonValue(tenant);
  object["request_id"] = JsonValue(request_id);
  object["outcome"] = JsonValue(std::string(ResponseOutcomeName(outcome)));
  object["status"] = StatusToJson(status);
  if (retry_after_ms > 0) object["retry_after_ms"] = JsonValue(retry_after_ms);
  object["queue_wait_ms"] = JsonValue(queue_wait_ms);
  object["service_ms"] = JsonValue(service_ms);
  object["served_seq"] = JsonValue(served_seq);
  if (!trace_id.empty()) object["trace_id"] = JsonValue(trace_id);
  if (!trace.is_null()) object["trace"] = trace;
  if (!cache.empty()) object["cache"] = JsonValue(cache);
  if (degradation.has_value()) {
    object["degradation"] = degradation->ToJson();
  }
  if (!result.is_null()) object["result"] = result;
  return JsonValue(std::move(object));
}

Result<ResponseEnvelope> ResponseEnvelope::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("response envelope must be a JSON object");
  }
  ResponseEnvelope envelope;
  COURSENAV_ASSIGN_OR_RETURN(JsonValue tenant, json.Get("tenant"));
  COURSENAV_ASSIGN_OR_RETURN(envelope.tenant, tenant.GetString());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue id, json.Get("request_id"));
  COURSENAV_ASSIGN_OR_RETURN(envelope.request_id, id.GetString());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue outcome_value, json.Get("outcome"));
  COURSENAV_ASSIGN_OR_RETURN(std::string outcome_name,
                             outcome_value.GetString());
  COURSENAV_ASSIGN_OR_RETURN(envelope.outcome,
                             ParseResponseOutcome(outcome_name));
  COURSENAV_ASSIGN_OR_RETURN(JsonValue status_value, json.Get("status"));
  COURSENAV_RETURN_IF_ERROR(StatusFromJson(status_value, &envelope.status));
  if (json.Has("retry_after_ms")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue retry, json.Get("retry_after_ms"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.retry_after_ms, retry.GetNumber());
  }
  if (json.Has("queue_wait_ms")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue wait, json.Get("queue_wait_ms"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.queue_wait_ms, wait.GetNumber());
  }
  if (json.Has("service_ms")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue service, json.Get("service_ms"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.service_ms, service.GetNumber());
  }
  if (json.Has("served_seq")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue seq, json.Get("served_seq"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.served_seq, seq.GetInt());
  }
  if (json.Has("trace_id")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue trace_id, json.Get("trace_id"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.trace_id, trace_id.GetString());
  }
  if (json.Has("trace")) {
    COURSENAV_ASSIGN_OR_RETURN(envelope.trace, json.Get("trace"));
  }
  if (json.Has("cache")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue cache_value, json.Get("cache"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.cache, cache_value.GetString());
  }
  if (json.Has("degradation")) {
    COURSENAV_ASSIGN_OR_RETURN(JsonValue report, json.Get("degradation"));
    COURSENAV_ASSIGN_OR_RETURN(envelope.degradation,
                               DegradationReport::FromJson(report));
  }
  if (json.Has("result")) {
    COURSENAV_ASSIGN_OR_RETURN(envelope.result, json.Get("result"));
  }
  return envelope;
}

}  // namespace coursenav::serve

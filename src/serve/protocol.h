#ifndef COURSENAV_SERVE_PROTOCOL_H_
#define COURSENAV_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/degradation.h"
#include "util/json.h"
#include "util/result.h"

namespace coursenav::serve {

/// Wire framing: every message is a 4-byte big-endian payload length
/// followed by that many bytes of UTF-8 JSON. Length-prefixed framing keeps
/// the parser trivial and makes oversized-request rejection a header-only
/// decision — the server never buffers a frame it has already refused.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Default ceiling on one frame's payload. Catalog-scale exploration
/// requests are a few KiB; anything near this limit is hostile or corrupt.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Prepends the length header to `payload`.
std::string EncodeFrame(std::string_view payload);

/// Decodes a frame header into the payload length. InvalidArgument when the
/// announced length exceeds `max_frame_bytes` — the caller must drop the
/// connection rather than read on.
Result<size_t> DecodeFrameHeader(const unsigned char header[kFrameHeaderBytes],
                                 size_t max_frame_bytes);

/// How one served request ended. Every request gets exactly one outcome;
/// overload and rejection are answers, not crashes.
enum class ResponseOutcome {
  /// The full answer, inside budget.
  kOk,
  /// A degraded answer (see service/degradation.h); the response carries
  /// the DegradationReport explaining which rung served.
  kDegraded,
  /// The request's deadline or node budget expired and no degradation was
  /// requested; the response summarizes the partial result.
  kTimeout,
  /// Shed at admission (queue full, tenant quota, server draining). The
  /// client should back off `retry_after_ms` and retry.
  kOverloaded,
  /// The request itself is unacceptable (malformed JSON, unknown fields,
  /// oversized, bad tenant). Retrying the same bytes will never succeed.
  kRejected,
  /// Cancelled by server shutdown/drain before or during execution.
  kCancelled,
  /// The client could not take delivery in time; the result was dropped.
  kSlowClient,
  /// An internal execution failure — always a server bug.
  kFailed,
};

std::string_view ResponseOutcomeName(ResponseOutcome outcome);
Result<ResponseOutcome> ParseResponseOutcome(std::string_view name);

/// The parsed request envelope: multi-tenant metadata wrapped around a
/// declarative ExplorationRequest document. The inner `request` is kept as
/// raw JSON here; the server resolves it against its catalog after
/// admission-independent validation.
struct RequestEnvelope {
  /// Quota/accounting identity. Defaults to "default"; must be 1-64 chars
  /// drawn from [A-Za-z0-9_.-].
  std::string tenant = "default";
  /// Echoed verbatim in the response so clients can multiplex.
  std::string request_id;
  /// Total budget for queue wait + execution, in milliseconds. 0 = the
  /// server's default deadline. Clamped to the server's maximum.
  double deadline_ms = 0.0;
  /// Overrides the server's degrade-by-default policy when set.
  std::optional<bool> degrade;
  /// "summary" (default) returns counts only; "full" additionally returns
  /// the materialized paths/graph JSON.
  bool full_payload = false;
  /// Client-supplied trace correlation id (1-64 chars from [A-Za-z0-9_.-]);
  /// empty = the server generates one. Echoed in the response either way.
  std::string trace_id;
  /// When true the client wants the request's span tree returned in the
  /// response ("trace": true on the wire). Span data requires the server
  /// to be built with COURSENAV_TRACING; the id echo always works.
  bool want_trace = false;
  /// The declarative ExplorationRequest document (plan/request.h schema).
  JsonValue request;
};

/// Parses and validates an envelope. InvalidArgument on unknown envelope
/// fields, bad tenant names, or missing `request`.
Result<RequestEnvelope> ParseRequestEnvelope(const JsonValue& json);

/// Builds an envelope document (the client-side constructor).
JsonValue MakeRequestEnvelope(std::string_view tenant,
                              std::string_view request_id, double deadline_ms,
                              JsonValue request,
                              std::optional<bool> degrade = std::nullopt,
                              bool full_payload = false,
                              bool want_trace = false,
                              std::string_view trace_id = "");

/// One response envelope. `result` holds the payload summary (and the full
/// paths/graph JSON when requested); `degradation` is attached whenever the
/// degradation ladder ran.
struct ResponseEnvelope {
  std::string tenant;
  std::string request_id;
  ResponseOutcome outcome = ResponseOutcome::kFailed;
  Status status;
  /// Overload hint: suggested client back-off before retrying. 0 when the
  /// outcome is not kOverloaded.
  double retry_after_ms = 0.0;
  /// Milliseconds spent queued before a worker picked the request up.
  double queue_wait_ms = 0.0;
  /// Milliseconds of execution (admission to completion, excluding queue).
  double service_ms = 0.0;
  /// Server-wide execution sequence number (-1 when never executed); lets
  /// tests and clients observe deadline-aware admission ordering.
  int64_t served_seq = -1;
  /// The request's trace correlation id (client-supplied or
  /// server-generated); empty only for requests rejected before parsing.
  std::string trace_id;
  /// The request's span tree (a JSON array of span objects), present only
  /// when the client opted in with "trace": true and the server was built
  /// with tracing compiled in.
  JsonValue trace;
  /// How the process-wide request cache participated in serving this
  /// request: "hit", "miss", "bypass", or "off" (cache disabled). Empty
  /// for requests that never reached execution (shed, rejected,
  /// cancelled-in-queue); omitted from the wire form then.
  std::string cache;
  std::optional<DegradationReport> degradation;
  JsonValue result;

  JsonValue ToJson() const;
  static Result<ResponseEnvelope> FromJson(const JsonValue& json);
};

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_PROTOCOL_H_

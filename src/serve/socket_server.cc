#include "serve/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace coursenav::serve {

namespace {

void SetSocketTimeout(int fd, int option, double seconds) {
  if (seconds <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  (void)setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Reads exactly `length` bytes; false on EOF, timeout, or error.
bool ReadFully(int fd, unsigned char* buffer, size_t length) {
  size_t read_so_far = 0;
  while (read_so_far < length) {
    ssize_t n = recv(fd, buffer + read_so_far, length - read_so_far, 0);
    if (n > 0) {
      read_so_far += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF (0), timeout (EAGAIN), or hard error
  }
  return true;
}

/// Writes all of `data`; false on timeout or error.
bool WriteFully(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = send(fd, data.data() + written, data.size() - written,
                     MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(ExplorationServer* core, SocketConfig config)
    : core_(core), config_(std::move(config)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("socket server already started");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int reuse = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) !=
      1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&address),
           sizeof(address)) != 0) {
    Status status = Status::FailedPrecondition(
        StrFormat("bind(%s:%d): %s", config_.bind_address.c_str(),
                  config_.port, std::strerror(errno)));
    close(fd);
    return status;
  }
  if (listen(fd, config_.backlog) != 0) {
    Status status =
        Status::Internal(StrFormat("listen(): %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status =
        Status::Internal(StrFormat("getsockname(): %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(fd);
      break;
    }
    ReapFinished();
    if (active_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Connection-level shed: refuse service rather than queue unbounded
      // transport state.
      close(fd);
      continue;
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, config_.recv_timeout_seconds);
    SetSocketTimeout(fd, SO_SNDTIMEO, config_.send_timeout_seconds);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      MutexLock lock(mu_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void SocketServer::ServeConnection(Connection* connection) {
  const int fd = connection->fd;
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    unsigned char header[kFrameHeaderBytes];
    if (!ReadFully(fd, header, kFrameHeaderBytes)) break;
    Result<size_t> length = DecodeFrameHeader(header, config_.max_frame_bytes);
    if (!length.ok()) {
      // Oversized announcement: answer with a structured rejection, then
      // drop the connection — the stream offset is unrecoverable.
      ResponseEnvelope reject;
      reject.outcome = ResponseOutcome::kRejected;
      reject.status = length.status();
      (void)WriteFully(fd, EncodeFrame(reject.ToJson().Dump()));
      break;
    }
    payload.resize(*length);
    if (*length > 0 &&
        !ReadFully(fd, reinterpret_cast<unsigned char*>(payload.data()),
                   *length)) {
      break;
    }
    std::string response = core_->Handle(payload);
    if (!WriteFully(fd, EncodeFrame(response))) {
      obs::GlobalMetrics().GetCounter(obs::kMetricServeSlowClient)
          ->Increment();
      break;
    }
  }
  // The fd is closed by ReapFinished()/Stop() after this thread is joined,
  // so Stop() can never shutdown() a recycled descriptor.
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  connection->done.store(true, std::memory_order_release);
}

void SocketServer::ReapFinished() {
  MutexLock lock(mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
  }
  {
    // Threads never close their own fd, so shutdown() here always hits the
    // descriptor we opened, forcing any blocked recv()/send() to return.
    MutexLock lock(mu_);
    for (const auto& connection : connections_) {
      shutdown(connection->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  MutexLock lock(mu_);
  for (const auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
    close(connection->fd);
  }
  connections_.clear();
  listen_fd_ = -1;
}

}  // namespace coursenav::serve

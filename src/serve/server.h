#ifndef COURSENAV_SERVE_SERVER_H_
#define COURSENAV_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "exec/worker_pool.h"
#include "obs/recorder.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "service/navigator.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace coursenav::serve {

/// Tuning for one ExplorationServer instance. Per-request resource clamps
/// are the tenant-isolation mechanism: whatever a request asks for, its
/// node / memory / time budgets are capped here, so one tenant's
/// pathological request degrades into a bounded partial answer instead of
/// exhausting the process.
struct ServerConfig {
  /// Worker threads executing admitted requests (clamped to at least 1).
  int num_workers = 4;
  AdmissionConfig admission;
  /// Hard cap on graph nodes materialized per request (0 = unlimited —
  /// never use 0 in production).
  int64_t max_nodes_per_request = 500'000;
  /// Hard cap on approximate graph heap bytes per request (0 = unlimited).
  size_t max_memory_bytes_per_request = size_t{256} << 20;
  /// Hard cap on per-request execution seconds, independent of deadline.
  double max_seconds_per_request = 5.0;
  /// Requests larger than this many payload bytes are rejected unread.
  size_t max_request_bytes = kDefaultMaxFrameBytes;
  /// When a request does not say, run it through the degradation ladder
  /// (true) or return a plain timeout on budget exhaustion (false).
  bool degrade_by_default = true;
  /// Intra-request parallelism (ExplorationOptions::num_threads clamp).
  /// 0 = serial per request: server throughput comes from concurrent
  /// workers, not from one request monopolizing the machine.
  int threads_per_request = 0;
  /// Server-side trace sampling: every Nth submission keeps its span tree
  /// in the flight recorder even without a client opt-in (0 = only client
  /// opt-ins and non-ok outcomes are kept). Non-ok outcomes always keep
  /// theirs.
  int trace_sample_every = 16;
  /// Span-buffer bound of each request-scoped tracer; overflow increments
  /// the tracer's dropped() count, surfaced as the trace_dropped_spans
  /// gauge.
  size_t max_spans_per_request = 512;
  /// Flight-recorder ring capacity and auto-dump quiet window.
  obs::FlightRecorderConfig recorder;
  /// Per-tenant deadline-attainment target: the fraction of non-rejected
  /// requests that should finish (ok or degraded) inside their deadline.
  /// /statusz flags tenants below it.
  double slo_deadline_target = 0.99;
  /// Routes execution through the process-wide epoch-keyed request cache
  /// (cache::RequestCache::Global()): plans and complete canonical results
  /// are shared across workers, tenants, and any co-resident sessions of
  /// the same catalog epoch. Warm answers are byte-identical to cold ones
  /// (docs/caching.md), so this is purely an operational switch
  /// (`--cache=off` on the CLI).
  bool enable_cache = true;
};

/// A point-in-time snapshot of the server's counters. Every submitted
/// request ends in exactly one terminal bucket, wherever that was decided:
/// once the server is quiescent, submitted == shed + rejected + ok +
/// degraded + timeout + cancelled + slow_client + failed. `admitted` and
/// `completed` are progress counters (admitted requests that have received
/// their final envelope), not extra buckets.
/// Per-tenant deadline-attainment tallies. A request is `met` when it
/// finished ok or degraded within its effective deadline; everything else
/// non-rejected (timeout, shed, cancelled, slow-client, failed, or a late
/// success) is `missed`. Rejected requests are the client's fault and count
/// toward neither.
struct SloCounters {
  int64_t deadline_met = 0;
  int64_t deadline_missed = 0;

  double attainment() const {
    const int64_t total = deadline_met + deadline_missed;
    return total > 0 ? static_cast<double>(deadline_met) /
                           static_cast<double>(total)
                     : 1.0;
  }
};

struct ServerStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t completed = 0;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t timeout = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
  int64_t cancelled = 0;
  int64_t slow_client = 0;
  int64_t failed = 0;
  int64_t faults_injected = 0;
  int queue_depth = 0;
  int inflight = 0;
  /// Seconds since Start() (0 before the server started).
  double uptime_seconds = 0.0;
  /// Spans discarded by request-scoped tracers, total across requests.
  int64_t trace_dropped_spans = 0;
  /// How executed requests met the process-wide request cache: served from
  /// a cached canonical result (`cache_hits`), executed and (when
  /// complete) inserted (`cache_misses`), or unable to participate —
  /// non-canonicalizable request or count-only degradation
  /// (`cache_bypass`). All three stay 0 when the cache is disabled.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_bypass = 0;
  std::map<std::string, TenantCounters> tenants;
  std::map<std::string, SloCounters> slo;
};

/// The multi-tenant exploration server core: admission control in front of
/// a worker pool running the CourseNavigator service.
///
/// Transport-agnostic: `Handle()` takes one request payload (the JSON text
/// of a RequestEnvelope) and blocks until its structured response is ready
/// — the socket front end (serve/socket_server.h), the CLI replay mode,
/// and in-process tests all call the same entry point.
///
/// Lifecycle: Start() → Handle()* → Drain() or Shutdown(). Drain stops
/// admission and waits for queued + in-flight work (escalating to
/// cancellation at its timeout); Shutdown cancels everything immediately.
/// Both end in kStopped; all three transitions are idempotent and safe to
/// race with concurrent Handle() calls, which shed with kOverloaded once
/// admission closes.
///
/// The catalog and schedule are borrowed and must outlive the server.
class ExplorationServer {
 public:
  enum class State { kIdle, kServing, kDraining, kStopped };

  ExplorationServer(const Catalog* catalog, const OfferingSchedule* schedule,
                    ServerConfig config = {});
  ~ExplorationServer();

  ExplorationServer(const ExplorationServer&) = delete;
  ExplorationServer& operator=(const ExplorationServer&) = delete;

  /// Spawns the worker pool and begins admitting. Must be called exactly
  /// once, before any Handle().
  void Start();

  /// Serves one request payload end to end: parse → validate → clamp →
  /// admit → execute, blocking the calling (transport) thread until the
  /// response envelope is complete. Never fails: every malformed, shed, or
  /// cancelled request still yields a structured envelope.
  ResponseEnvelope HandleRequest(std::string_view payload);

  /// HandleRequest, serialized to the compact JSON wire form.
  std::string Handle(std::string_view payload);

  /// Stops admission and waits up to `timeout_seconds` for queued and
  /// in-flight work to finish. On timeout the stragglers are cancelled
  /// (cooperatively, via their CancellationTokens) and the call keeps
  /// waiting for them to acknowledge. Returns OK on a clean drain,
  /// DeadlineExceeded when cancellation was needed.
  Status Drain(double timeout_seconds = 5.0);

  /// Immediate stop: sheds the queue (those waiters get kCancelled),
  /// cancels in-flight requests, and joins the workers.
  void Shutdown();

  State state() const { return state_.load(std::memory_order_acquire); }

  ServerStats Stats() const;

  const ServerConfig& config() const { return config_; }

  /// The server's black box: every finished request's summary, plus the
  /// sampled span trees (1-in-N and all non-ok outcomes). The admin plane
  /// and the CLI dump it; tests assert completeness against it.
  const obs::FlightRecorder& recorder() const { return recorder_; }
  obs::FlightRecorder& recorder() { return recorder_; }

 private:
  /// One worker's life: pop admitted tickets until the queue closes.
  void WorkerLoop();

  /// Executes one admitted ticket and completes it.
  void Execute(const std::shared_ptr<Ticket>& ticket);

  /// Builds the shed response for a not-admitted request and counts it.
  ResponseEnvelope ShedResponse(const RequestEnvelope& envelope,
                                AdmitVerdict verdict, double retry_after_ms);

  /// Builds the rejection response for an unacceptable request.
  ResponseEnvelope RejectResponse(std::string_view tenant,
                                  std::string_view request_id,
                                  std::string_view trace_id, Status status);

  /// Mirrors one finished outcome into the global metric registry and the
  /// per-tenant series (`executed` requests additionally feed the latency
  /// histograms).
  void PublishMetrics(const ResponseEnvelope& response, bool executed);

  /// Terminal-outcome bookkeeping shared by every exit path: feeds the
  /// flight recorder (attaching the span tree when this request's trace is
  /// kept), the per-tenant SLO tallies, and the dropped-span total.
  /// `ticket` is null for requests that never reached admission.
  void RecordOutcome(const ResponseEnvelope& response, double deadline_ms,
                     const Ticket* ticket);

  /// Completes a never-executed ticket with kCancelled (shutdown/drain
  /// eviction path).
  void CancelTicket(const std::shared_ptr<Ticket>& ticket);

  const ServerConfig config_;
  CourseNavigator navigator_;

  std::atomic<State> state_{State::kIdle};
  /// Serializes Start/Drain/Shutdown; guards the dispatcher thread handle
  /// (spawned by Start, joined by Drain/Shutdown).
  Mutex lifecycle_mu_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<exec::WorkerPool> pool_;
  /// Runs the pool's single long fork-join round so Start() can return.
  std::thread dispatcher_ CN_GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> dispatcher_done_{false};

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> ok_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> timeout_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> slow_client_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> faults_injected_{0};
  std::atomic<int64_t> next_seq_{0};
  std::atomic<int64_t> trace_dropped_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_bypass_{0};

  obs::FlightRecorder recorder_;
  Stopwatch started_;

  /// Per-tenant deadline-attainment tallies (bounded by the admission
  /// queue's tenant-table cap, since only named tenants reach here).
  mutable Mutex slo_mu_;
  std::map<std::string, SloCounters, std::less<>> slo_ CN_GUARDED_BY(slo_mu_);
};

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_SERVER_H_

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "graph/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/degradation.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace coursenav::serve {

namespace {

/// Tenant names on the wire allow [.-]; metric names do not. Anything
/// outside the metric-safe charset becomes '_'.
std::string SanitizeTenantMetricName(std::string_view tenant) {
  std::string out;
  out.reserve(tenant.size());
  for (char c : tenant) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Maps an execution error to the response taxonomy: request errors are the
/// client's fault (kRejected), budget errors are a timeout answer, and only
/// Internal is a server failure.
ResponseOutcome OutcomeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return ResponseOutcome::kCancelled;
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return ResponseOutcome::kTimeout;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kParseError:
    case StatusCode::kFailedPrecondition:
      return ResponseOutcome::kRejected;
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return ResponseOutcome::kFailed;
  }
  return ResponseOutcome::kFailed;
}

/// The summary (and, when asked, full) payload for a materialized answer.
JsonValue BuildResultPayload(const ExplorationResponse& response,
                             bool full_payload, const Catalog& catalog) {
  JsonValue::Object object;
  if (response.generation.has_value()) {
    const GenerationResult& generation = *response.generation;
    object["nodes"] = JsonValue(generation.stats.nodes_created);
    object["edges"] = JsonValue(generation.stats.edges_created);
    object["terminal_paths"] = JsonValue(generation.stats.terminal_paths);
    object["goal_paths"] = JsonValue(generation.stats.goal_paths);
    if (full_payload) {
      object["graph"] = LearningGraphToJson(generation.graph, catalog);
    }
  }
  if (response.ranked.has_value()) {
    const RankedResult& ranked = *response.ranked;
    object["paths_returned"] =
        JsonValue(static_cast<int64_t>(ranked.paths.size()));
    if (response.paths_before_filters >= 0) {
      object["paths_before_filters"] = JsonValue(response.paths_before_filters);
      object["filter"] = JsonValue(response.filter_description);
    }
    if (full_payload) {
      object["paths"] = LearningPathsToJson(ranked.paths, catalog);
    }
  }
  return JsonValue(std::move(object));
}

/// The payload for a count-only (fully degraded) answer.
JsonValue BuildCountPayload(const CountingResult& count) {
  JsonValue::Object object;
  object["total_paths"] = JsonValue(static_cast<int64_t>(count.total_paths));
  object["goal_paths"] = JsonValue(static_cast<int64_t>(count.goal_paths));
  object["distinct_statuses"] = JsonValue(count.distinct_statuses);
  object["saturated"] = JsonValue(count.saturated);
  return JsonValue(std::move(object));
}

}  // namespace

ExplorationServer::ExplorationServer(const Catalog* catalog,
                                     const OfferingSchedule* schedule,
                                     ServerConfig config)
    : config_(std::move(config)), navigator_(catalog, schedule) {}

ExplorationServer::~ExplorationServer() {
  if (state() != State::kStopped) Shutdown();
}

void ExplorationServer::Start() {
  CN_CHECK(state() == State::kIdle) << "Start() called twice";
  queue_ = std::make_unique<AdmissionQueue>(config_.admission);
  pool_ = std::make_unique<exec::WorkerPool>(std::max(1, config_.num_workers));
  dispatcher_ = std::thread([this] {
    pool_->Run([this](int) { WorkerLoop(); });
    dispatcher_done_.store(true, std::memory_order_release);
  });
  state_.store(State::kServing, std::memory_order_release);
}

void ExplorationServer::WorkerLoop() {
  while (std::shared_ptr<Ticket> ticket = queue_->Pop()) {
    Execute(ticket);
  }
}

ResponseEnvelope ExplorationServer::HandleRequest(std::string_view payload) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeSubmitted)->Increment();

  if (payload.size() > config_.max_request_bytes) {
    return RejectResponse(
        "default", "",
        Status::InvalidArgument(StrFormat(
            "request of %zu bytes exceeds the %zu-byte limit", payload.size(),
            config_.max_request_bytes)));
  }
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return RejectResponse("default", "", parsed.status());
  Result<RequestEnvelope> envelope_result = ParseRequestEnvelope(*parsed);
  if (!envelope_result.ok()) {
    return RejectResponse("default", "", envelope_result.status());
  }
  RequestEnvelope envelope = std::move(*envelope_result);

  // The serve/overload chaos seam: when it fires, force one of the three
  // overload paths so every shed route is reachable from a seed alone.
  bool forced_queue_full = false;
  bool forced_deadline_exceeded = false;
  bool forced_slow_client = false;
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr && injector->ShouldInject(kFaultSiteServeOverload)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    obs::GlobalMetrics()
        .GetCounter(obs::kMetricServeFaultsInjected)
        ->Increment();
    switch (injector->Draw(kFaultSiteServeOverload) % 3) {
      case 0:
        forced_queue_full = true;
        break;
      case 1:
        forced_deadline_exceeded = true;
        break;
      default:
        forced_slow_client = true;
        break;
    }
  }
  if (forced_queue_full) {
    return ShedResponse(
        envelope, AdmitVerdict::kQueueFull,
        queue_ != nullptr ? queue_->RetryAfterMsHint() : 50.0);
  }

  Status schema = ValidateRequestJsonSchema(envelope.request);
  if (!schema.ok()) {
    return RejectResponse(envelope.tenant, envelope.request_id, schema);
  }
  Result<ExplorationRequest> request_result =
      ExplorationRequestFromJson(envelope.request, navigator_.catalog());
  if (!request_result.ok()) {
    return RejectResponse(envelope.tenant, envelope.request_id,
                          request_result.status());
  }

  if (state() != State::kServing || queue_ == nullptr) {
    return ShedResponse(
        envelope, AdmitVerdict::kNotServing,
        queue_ != nullptr ? queue_->RetryAfterMsHint() : 100.0);
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->tenant = envelope.tenant;
  ticket->request_id = envelope.request_id;
  ticket->request = std::move(*request_result);
  ticket->degrade = envelope.degrade.value_or(config_.degrade_by_default);
  ticket->full_payload = envelope.full_payload;
  ticket->forced_deadline_exceeded = forced_deadline_exceeded;
  ticket->forced_slow_client = forced_slow_client;
  double deadline_seconds =
      envelope.deadline_ms > 0
          ? envelope.deadline_ms / 1e3
          : config_.admission.default_deadline_seconds;
  ticket->deadline_seconds =
      std::min(deadline_seconds, config_.admission.max_deadline_seconds);

  // Tenant isolation: clamp the request's arena to the per-request caps,
  // whatever it asked for. The graph's soft-capacity limits then turn a
  // hostile request into a bounded partial answer.
  ExplorationLimits& limits = ticket->request.options.limits;
  if (config_.max_nodes_per_request > 0 &&
      (limits.max_nodes <= 0 ||
       limits.max_nodes > config_.max_nodes_per_request)) {
    limits.max_nodes = config_.max_nodes_per_request;
  }
  if (config_.max_memory_bytes_per_request > 0 &&
      (limits.max_memory_bytes == 0 ||
       limits.max_memory_bytes > config_.max_memory_bytes_per_request)) {
    limits.max_memory_bytes = config_.max_memory_bytes_per_request;
  }
  if (config_.max_seconds_per_request > 0 &&
      (limits.max_seconds <= 0 ||
       limits.max_seconds > config_.max_seconds_per_request)) {
    limits.max_seconds = config_.max_seconds_per_request;
  }
  ticket->request.options.num_threads = std::min(
      ticket->request.options.num_threads, config_.threads_per_request);

  AdmissionQueue::AdmitResult admit = queue_->Admit(ticket);
  if (admit.verdict != AdmitVerdict::kAdmitted) {
    return ShedResponse(envelope, admit.verdict, admit.retry_after_ms);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeAdmitted)->Increment();

  std::unique_lock<std::mutex> lock(ticket->mu);
  ticket->cv.wait(lock, [&ticket] { return ticket->done; });
  return ticket->response;
}

std::string ExplorationServer::Handle(std::string_view payload) {
  return HandleRequest(payload).ToJson().Dump();
}

void ExplorationServer::Execute(const std::shared_ptr<Ticket>& ticket) {
  obs::ScopedSpan span(obs::kSpanServeRequest);
  span.AddString("tenant", ticket->tenant);
  const double queue_wait_seconds = ticket->queued_at.ElapsedSeconds();
  Stopwatch service_timer;

  ResponseEnvelope out;
  out.tenant = ticket->tenant;
  out.request_id = ticket->request_id;
  out.queue_wait_ms = queue_wait_seconds * 1e3;
  out.served_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

  const double remaining_seconds =
      ticket->deadline_seconds - queue_wait_seconds;
  if (ticket->cancel.IsCancelled()) {
    out.outcome = ResponseOutcome::kCancelled;
    out.status = Status::Cancelled("cancelled before execution");
  } else if (ticket->forced_deadline_exceeded || remaining_seconds <= 0) {
    out.outcome = ResponseOutcome::kTimeout;
    out.status = Status::DeadlineExceeded(
        ticket->forced_deadline_exceeded
            ? "deadline exceeded (fault injection)"
            : "deadline expired while queued");
  } else {
    // The execution budget is whatever deadline survives the queue wait,
    // never more than the per-request cap already clamped at admission.
    ExplorationLimits& limits = ticket->request.options.limits;
    if (limits.max_seconds <= 0 || limits.max_seconds > remaining_seconds) {
      limits.max_seconds = remaining_seconds;
    }
    ticket->request.options.cancel = ticket->cancel;

    if (ticket->degrade) {
      Result<DegradedResponse> degraded =
          ExploreWithDegradation(navigator_, ticket->request);
      if (degraded.ok()) {
        const DegradedResponse& answer = *degraded;
        out.outcome = (answer.report.degraded || answer.report.exhausted)
                          ? ResponseOutcome::kDegraded
                          : ResponseOutcome::kOk;
        out.degradation = answer.report;
        out.result = answer.count.has_value()
                         ? BuildCountPayload(*answer.count)
                         : BuildResultPayload(answer.response,
                                              ticket->full_payload,
                                              navigator_.catalog());
      } else {
        out.outcome = OutcomeForStatus(degraded.status());
        out.status = degraded.status();
      }
    } else {
      Result<ExplorationResponse> response =
          navigator_.Explore(ticket->request);
      if (response.ok()) {
        const Status& termination =
            response->generation.has_value()
                ? response->generation->termination
                : (response->ranked.has_value() ? response->ranked->termination
                                                : Status::OK());
        if (termination.ok()) {
          out.outcome = ResponseOutcome::kOk;
        } else {
          out.outcome = OutcomeForStatus(termination);
          out.status = termination;
        }
        out.result = BuildResultPayload(*response, ticket->full_payload,
                                        navigator_.catalog());
      } else {
        out.outcome = OutcomeForStatus(response.status());
        out.status = response.status();
      }
    }
  }

  const double service_seconds = service_timer.ElapsedSeconds();
  out.service_ms = service_seconds * 1e3;

  // The slow-client fault fires after execution: the work was done but the
  // client cannot take delivery, so the payload is dropped.
  if (ticket->forced_slow_client) {
    out.outcome = ResponseOutcome::kSlowClient;
    out.status = Status::DeadlineExceeded(
        "client could not take delivery; result dropped (fault injection)");
    out.result = JsonValue();
    out.degradation.reset();
  }
  span.AddString("outcome", ResponseOutcomeName(out.outcome));

  switch (out.outcome) {
    case ResponseOutcome::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kTimeout:
      timeout_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kSlowClient:
      slow_client_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kOverloaded:
    case ResponseOutcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);

  queue_->Complete(ticket, service_seconds);
  PublishMetrics(out);
  CompleteTicket(ticket, std::move(out));
}

ResponseEnvelope ExplorationServer::ShedResponse(
    const RequestEnvelope& envelope, AdmitVerdict verdict,
    double retry_after_ms) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeShed)->Increment();
  ResponseEnvelope out;
  out.tenant = envelope.tenant;
  out.request_id = envelope.request_id;
  out.outcome = ResponseOutcome::kOverloaded;
  out.status = Status::ResourceExhausted(
      StrFormat("shed: %s", std::string(AdmitVerdictName(verdict)).c_str()));
  out.retry_after_ms = retry_after_ms;
  return out;
}

ResponseEnvelope ExplorationServer::RejectResponse(std::string_view tenant,
                                                   std::string_view request_id,
                                                   Status status) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeRejected)->Increment();
  ResponseEnvelope out;
  out.tenant = std::string(tenant);
  out.request_id = std::string(request_id);
  out.outcome = ResponseOutcome::kRejected;
  out.status = std::move(status);
  return out;
}

void ExplorationServer::PublishMetrics(const ResponseEnvelope& response) {
  obs::MetricRegistry& metrics = obs::GlobalMetrics();
  metrics.GetCounter(obs::kMetricServeCompleted)->Increment();
  switch (response.outcome) {
    case ResponseOutcome::kDegraded:
      metrics.GetCounter(obs::kMetricServeDegraded)->Increment();
      break;
    case ResponseOutcome::kTimeout:
      metrics.GetCounter(obs::kMetricServeTimeout)->Increment();
      break;
    case ResponseOutcome::kCancelled:
      metrics.GetCounter(obs::kMetricServeCancelled)->Increment();
      break;
    case ResponseOutcome::kSlowClient:
      metrics.GetCounter(obs::kMetricServeSlowClient)->Increment();
      break;
    default:
      break;
  }
  metrics.GetHistogram(obs::kMetricServeQueueWaitMicros)
      ->Observe(static_cast<int64_t>(response.queue_wait_ms * 1e3));
  metrics.GetHistogram(obs::kMetricServeServiceMicros)
      ->Observe(static_cast<int64_t>(response.service_ms * 1e3));
  metrics.GetGauge(obs::kMetricServeQueueDepth)->Set(queue_->depth());
  metrics.GetGauge(obs::kMetricServeInflight)->Set(queue_->inflight());

  const std::string tenant = SanitizeTenantMetricName(response.tenant);
  metrics
      .GetCounter(std::string(obs::kMetricServeTenantRequestsPrefix) + tenant)
      ->Increment();
  std::map<std::string, TenantCounters> tenants = queue_->TenantSnapshot();
  if (auto it = tenants.find(response.tenant); it != tenants.end()) {
    metrics
        .GetGauge(std::string(obs::kMetricServeTenantInflightPrefix) + tenant)
        ->Set(it->second.inflight);
  }
}

Status ExplorationServer::Drain(double timeout_seconds) {
  std::lock_guard<std::mutex> lifecycle_lock(lifecycle_mu_);
  State current = state();
  if (current == State::kIdle) {
    state_.store(State::kStopped, std::memory_order_release);
    return Status::OK();
  }
  if (current == State::kStopped) return Status::OK();
  state_.store(State::kDraining, std::memory_order_release);
  queue_->CloseForAdmission();

  Stopwatch timer;
  bool escalated = false;
  while (!dispatcher_done_.load(std::memory_order_acquire)) {
    if (!escalated && timer.ElapsedSeconds() > timeout_seconds) {
      escalated = true;
      // Past the drain budget: shed everything still queued and cancel the
      // in-flight work; the workers acknowledge within one budget check.
      for (const std::shared_ptr<Ticket>& ticket : queue_->Evict()) {
        CancelTicket(ticket);
      }
      for (const std::shared_ptr<Ticket>& ticket :
           queue_->InflightSnapshot()) {
        ticket->cancel.RequestCancel();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  state_.store(State::kStopped, std::memory_order_release);
  return escalated ? Status::DeadlineExceeded(
                         "drain timed out; remaining work was cancelled")
                   : Status::OK();
}

void ExplorationServer::Shutdown() {
  std::lock_guard<std::mutex> lifecycle_lock(lifecycle_mu_);
  State current = state();
  if (current == State::kIdle || current == State::kStopped) {
    state_.store(State::kStopped, std::memory_order_release);
    return;
  }
  state_.store(State::kDraining, std::memory_order_release);
  queue_->CloseForAdmission();
  for (const std::shared_ptr<Ticket>& ticket : queue_->Evict()) {
    CancelTicket(ticket);
  }
  for (const std::shared_ptr<Ticket>& ticket : queue_->InflightSnapshot()) {
    ticket->cancel.RequestCancel();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  state_.store(State::kStopped, std::memory_order_release);
}

void ExplorationServer::CancelTicket(const std::shared_ptr<Ticket>& ticket) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeCancelled)->Increment();
  obs::GlobalMetrics().GetCounter(obs::kMetricServeCompleted)->Increment();
  ResponseEnvelope out;
  out.tenant = ticket->tenant;
  out.request_id = ticket->request_id;
  out.outcome = ResponseOutcome::kCancelled;
  out.status = Status::Cancelled("server shutting down");
  out.queue_wait_ms = ticket->queued_at.ElapsedSeconds() * 1e3;
  ticket->cancel.RequestCancel();
  CompleteTicket(ticket, std::move(out));
}

ServerStats ExplorationServer::Stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.timeout = timeout_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.slow_client = slow_client_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  if (queue_ != nullptr) {
    stats.queue_depth = queue_->depth();
    stats.inflight = queue_->inflight();
    stats.tenants = queue_->TenantSnapshot();
  }
  return stats;
}

}  // namespace coursenav::serve

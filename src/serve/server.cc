#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "cache/request_cache.h"
#include "graph/export.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/degradation.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace coursenav::serve {

namespace {

/// The deadline a request is actually held to: its own when it named one,
/// else the server default, never past the hard ceiling.
double EffectiveDeadlineMs(const RequestEnvelope& envelope,
                           const AdmissionConfig& admission) {
  double deadline_ms = envelope.deadline_ms > 0
                           ? envelope.deadline_ms
                           : admission.default_deadline_seconds * 1e3;
  return std::min(deadline_ms, admission.max_deadline_seconds * 1e3);
}

/// Maps an execution error to the response taxonomy: request errors are the
/// client's fault (kRejected), budget errors are a timeout answer, and only
/// Internal is a server failure.
ResponseOutcome OutcomeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return ResponseOutcome::kCancelled;
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return ResponseOutcome::kTimeout;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kParseError:
    case StatusCode::kFailedPrecondition:
      return ResponseOutcome::kRejected;
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return ResponseOutcome::kFailed;
  }
  return ResponseOutcome::kFailed;
}

/// The summary (and, when asked, full) payload for a materialized answer.
JsonValue BuildResultPayload(const ExplorationResponse& response,
                             bool full_payload, const Catalog& catalog) {
  JsonValue::Object object;
  if (response.generation.has_value()) {
    const GenerationResult& generation = *response.generation;
    object["nodes"] = JsonValue(generation.stats.nodes_created);
    object["edges"] = JsonValue(generation.stats.edges_created);
    object["terminal_paths"] = JsonValue(generation.stats.terminal_paths);
    object["goal_paths"] = JsonValue(generation.stats.goal_paths);
    if (full_payload) {
      object["graph"] = LearningGraphToJson(generation.graph, catalog);
    }
  }
  if (response.ranked.has_value()) {
    const RankedResult& ranked = *response.ranked;
    object["paths_returned"] =
        JsonValue(static_cast<int64_t>(ranked.paths.size()));
    if (response.paths_before_filters >= 0) {
      object["paths_before_filters"] = JsonValue(response.paths_before_filters);
      object["filter"] = JsonValue(response.filter_description);
    }
    if (full_payload) {
      object["paths"] = LearningPathsToJson(ranked.paths, catalog);
    }
  }
  return JsonValue(std::move(object));
}

/// The payload for a count-only (fully degraded) answer.
JsonValue BuildCountPayload(const CountingResult& count) {
  JsonValue::Object object;
  object["total_paths"] = JsonValue(static_cast<int64_t>(count.total_paths));
  object["goal_paths"] = JsonValue(static_cast<int64_t>(count.goal_paths));
  object["distinct_statuses"] = JsonValue(count.distinct_statuses);
  object["saturated"] = JsonValue(count.saturated);
  return JsonValue(std::move(object));
}

}  // namespace

ExplorationServer::ExplorationServer(const Catalog* catalog,
                                     const OfferingSchedule* schedule,
                                     ServerConfig config)
    : config_(std::move(config)),
      navigator_(catalog, schedule),
      recorder_(config_.recorder) {
  if (config_.enable_cache) {
    navigator_.EnableCache(&cache::RequestCache::Global());
  }
}

ExplorationServer::~ExplorationServer() {
  if (state() != State::kStopped) Shutdown();
}

void ExplorationServer::Start() {
  MutexLock lifecycle_lock(lifecycle_mu_);
  CN_CHECK(state() == State::kIdle) << "Start() called twice";
  queue_ = std::make_unique<AdmissionQueue>(config_.admission);
  pool_ = std::make_unique<exec::WorkerPool>(std::max(1, config_.num_workers));
  dispatcher_ = std::thread([this] {
    pool_->Run([this](int) { WorkerLoop(); });
    dispatcher_done_.store(true, std::memory_order_release);
  });
  state_.store(State::kServing, std::memory_order_release);
}

void ExplorationServer::WorkerLoop() {
  while (std::shared_ptr<Ticket> ticket = queue_->Pop()) {
    Execute(ticket);
  }
}

ResponseEnvelope ExplorationServer::HandleRequest(std::string_view payload) {
  const int64_t submission = submitted_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeSubmitted)->Increment();

  if (payload.size() > config_.max_request_bytes) {
    return RejectResponse(
        "default", "", "",
        Status::InvalidArgument(StrFormat(
            "request of %zu bytes exceeds the %zu-byte limit", payload.size(),
            config_.max_request_bytes)));
  }
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return RejectResponse("default", "", "", parsed.status());
  Result<RequestEnvelope> envelope_result = ParseRequestEnvelope(*parsed);
  if (!envelope_result.ok()) {
    return RejectResponse("default", "", "", envelope_result.status());
  }
  RequestEnvelope envelope = std::move(*envelope_result);
  if (envelope.trace_id.empty()) {
    // Server-generated correlation id: unique within this process run.
    envelope.trace_id =
        StrFormat("srv-%lld", static_cast<long long>(submission));
  }

  // The serve/overload chaos seam: when it fires, force one of the three
  // overload paths so every shed route is reachable from a seed alone.
  bool forced_queue_full = false;
  bool forced_deadline_exceeded = false;
  bool forced_slow_client = false;
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr && injector->ShouldInject(kFaultSiteServeOverload)) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    obs::GlobalMetrics()
        .GetCounter(obs::kMetricServeFaultsInjected)
        ->Increment();
    switch (injector->Draw(kFaultSiteServeOverload) % 3) {
      case 0:
        forced_queue_full = true;
        break;
      case 1:
        forced_deadline_exceeded = true;
        break;
      default:
        forced_slow_client = true;
        break;
    }
  }
  if (forced_queue_full) {
    return ShedResponse(
        envelope, AdmitVerdict::kQueueFull,
        queue_ != nullptr ? queue_->RetryAfterMsHint() : 50.0);
  }

  Status schema = ValidateRequestJsonSchema(envelope.request);
  if (!schema.ok()) {
    return RejectResponse(envelope.tenant, envelope.request_id,
                          envelope.trace_id, schema);
  }
  Result<ExplorationRequest> request_result =
      ExplorationRequestFromJson(envelope.request, navigator_.catalog());
  if (!request_result.ok()) {
    return RejectResponse(envelope.tenant, envelope.request_id,
                          envelope.trace_id, request_result.status());
  }

  if (state() != State::kServing || queue_ == nullptr) {
    return ShedResponse(
        envelope, AdmitVerdict::kNotServing,
        queue_ != nullptr ? queue_->RetryAfterMsHint() : 100.0);
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->tenant = envelope.tenant;
  ticket->request_id = envelope.request_id;
  ticket->request = std::move(*request_result);
  ticket->degrade = envelope.degrade.value_or(config_.degrade_by_default);
  ticket->full_payload = envelope.full_payload;
  ticket->forced_deadline_exceeded = forced_deadline_exceeded;
  ticket->forced_slow_client = forced_slow_client;
  ticket->trace_id = envelope.trace_id;
  ticket->want_trace = envelope.want_trace;
  ticket->sampled = config_.trace_sample_every > 0 &&
                    submission % config_.trace_sample_every == 0;
#if COURSENAV_TRACING
  // The request-scoped tracer starts its timeline here, on the transport
  // thread: clamping and admission wait happen on it, and the worker
  // installs it before the execution stages.
  ticket->tracer =
      std::make_unique<obs::Tracer>(config_.max_spans_per_request);
#endif
  ticket->deadline_seconds =
      EffectiveDeadlineMs(envelope, config_.admission) / 1e3;

  // Tenant isolation: clamp the request's arena to the per-request caps,
  // whatever it asked for. The graph's soft-capacity limits then turn a
  // hostile request into a bounded partial answer.
  Stopwatch clamp_timer;
  ExplorationLimits& limits = ticket->request.options.limits;
  if (config_.max_nodes_per_request > 0 &&
      (limits.max_nodes <= 0 ||
       limits.max_nodes > config_.max_nodes_per_request)) {
    limits.max_nodes = config_.max_nodes_per_request;
  }
  if (config_.max_memory_bytes_per_request > 0 &&
      (limits.max_memory_bytes == 0 ||
       limits.max_memory_bytes > config_.max_memory_bytes_per_request)) {
    limits.max_memory_bytes = config_.max_memory_bytes_per_request;
  }
  if (config_.max_seconds_per_request > 0 &&
      (limits.max_seconds <= 0 ||
       limits.max_seconds > config_.max_seconds_per_request)) {
    limits.max_seconds = config_.max_seconds_per_request;
  }
  ticket->request.options.num_threads = std::min(
      ticket->request.options.num_threads, config_.threads_per_request);
  ticket->clamp_us = clamp_timer.ElapsedMicros();

  AdmissionQueue::AdmitResult admit = queue_->Admit(ticket);
  if (admit.verdict != AdmitVerdict::kAdmitted) {
    return ShedResponse(envelope, admit.verdict, admit.retry_after_ms);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeAdmitted)->Increment();

  MutexLock lock(ticket->mu);
  while (!ticket->done) ticket->cv.Wait(ticket->mu);
  return ticket->response;
}

std::string ExplorationServer::Handle(std::string_view payload) {
  return HandleRequest(payload).ToJson().Dump();
}

void ExplorationServer::Execute(const std::shared_ptr<Ticket>& ticket) {
  const double queue_wait_seconds = ticket->queued_at.ElapsedSeconds();
  Stopwatch service_timer;
  double service_seconds = 0.0;

  ResponseEnvelope out;
  out.tenant = ticket->tenant;
  out.request_id = ticket->request_id;
  out.trace_id = ticket->trace_id;
  out.queue_wait_ms = queue_wait_seconds * 1e3;
  out.served_seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

  {
    // Install the request-scoped tracer on this worker thread: the root
    // serve/request span opens here, and every stage span the planner,
    // executor, and degradation ladder emit nests under it via the
    // thread-local tracer.
    std::optional<obs::ScopedTracer> install;
    if (ticket->tracer != nullptr) install.emplace(ticket->tracer.get());
    obs::ScopedSpan span(obs::kSpanServeRequest);
    span.AddString("tenant", ticket->tenant);
    if (ticket->tracer != nullptr) {
      // Replay the pre-worker intervals onto the request timeline as
      // children of the root: the transport-thread clamp (at the timeline
      // origin), then the admission wait that ended just now.
      const int64_t now_us = ticket->tracer->NowMicros();
      const int64_t wait_us = static_cast<int64_t>(queue_wait_seconds * 1e6);
      ticket->tracer->EmitSpan(obs::kSpanServeClamp, 0, ticket->clamp_us);
      ticket->tracer->EmitSpan(obs::kSpanServeAdmissionWait,
                               std::max<int64_t>(now_us - wait_us, 0),
                               wait_us);
    }

  const double remaining_seconds =
      ticket->deadline_seconds - queue_wait_seconds;
  if (ticket->cancel.IsCancelled()) {
    out.outcome = ResponseOutcome::kCancelled;
    out.status = Status::Cancelled("cancelled before execution");
  } else if (ticket->forced_deadline_exceeded || remaining_seconds <= 0) {
    out.outcome = ResponseOutcome::kTimeout;
    out.status = Status::DeadlineExceeded(
        ticket->forced_deadline_exceeded
            ? "deadline exceeded (fault injection)"
            : "deadline expired while queued");
  } else {
    // The execution budget is whatever deadline survives the queue wait,
    // never more than the per-request cap already clamped at admission.
    ExplorationLimits& limits = ticket->request.options.limits;
    if (limits.max_seconds <= 0 || limits.max_seconds > remaining_seconds) {
      limits.max_seconds = remaining_seconds;
    }
    ticket->request.options.cancel = ticket->cancel;

    cache::CacheOutcome cache_outcome = cache::CacheOutcome::kDisabled;
    if (ticket->degrade) {
      Result<DegradedResponse> degraded =
          ExploreWithDegradation(navigator_, ticket->request, &cache_outcome);
      if (degraded.ok()) {
        const DegradedResponse& answer = *degraded;
        out.outcome = (answer.report.degraded || answer.report.exhausted)
                          ? ResponseOutcome::kDegraded
                          : ResponseOutcome::kOk;
        out.degradation = answer.report;
        out.result = answer.count.has_value()
                         ? BuildCountPayload(*answer.count)
                         : BuildResultPayload(answer.response,
                                              ticket->full_payload,
                                              navigator_.catalog());
      } else {
        out.outcome = OutcomeForStatus(degraded.status());
        out.status = degraded.status();
      }
    } else {
      Result<ExplorationResponse> response =
          navigator_.Explore(ticket->request, &cache_outcome);
      if (response.ok()) {
        const Status& termination =
            response->generation.has_value()
                ? response->generation->termination
                : (response->ranked.has_value() ? response->ranked->termination
                                                : Status::OK());
        if (termination.ok()) {
          out.outcome = ResponseOutcome::kOk;
        } else {
          out.outcome = OutcomeForStatus(termination);
          out.status = termination;
        }
        out.result = BuildResultPayload(*response, ticket->full_payload,
                                        navigator_.catalog());
      } else {
        out.outcome = OutcomeForStatus(response.status());
        out.status = response.status();
      }
    }
    out.cache = std::string(cache::CacheOutcomeName(cache_outcome));
    switch (cache_outcome) {
      case cache::CacheOutcome::kHit:
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        break;
      case cache::CacheOutcome::kMiss:
        cache_misses_.fetch_add(1, std::memory_order_relaxed);
        break;
      case cache::CacheOutcome::kBypass:
        cache_bypass_.fetch_add(1, std::memory_order_relaxed);
        break;
      case cache::CacheOutcome::kDisabled:
        break;
    }
  }

  service_seconds = service_timer.ElapsedSeconds();
  out.service_ms = service_seconds * 1e3;

  // The slow-client fault fires after execution: the work was done but the
  // client cannot take delivery, so the payload is dropped.
  if (ticket->forced_slow_client) {
    out.outcome = ResponseOutcome::kSlowClient;
    out.status = Status::DeadlineExceeded(
        "client could not take delivery; result dropped (fault injection)");
    out.result = JsonValue();
    out.degradation.reset();
  }
  span.AddString("outcome", ResponseOutcomeName(out.outcome));
  span.AddDouble("queue_wait_ms", out.queue_wait_ms);
  if (out.result.is_object() && out.result.Has("nodes")) {
    if (Result<JsonValue> nodes = out.result.Get("nodes"); nodes.ok()) {
      if (Result<int64_t> count = nodes->GetInt(); count.ok()) {
        span.AddInt("nodes", *count);
      }
    }
  }

  switch (out.outcome) {
    case ResponseOutcome::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kTimeout:
      timeout_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kSlowClient:
      slow_client_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseOutcome::kOverloaded:
    case ResponseOutcome::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  }  // Root span closes; the request's trace is complete.

  queue_->Complete(ticket, service_seconds);
#if COURSENAV_TRACING
  if (ticket->want_trace && ticket->tracer != nullptr) {
    JsonValue::Array spans;
    for (const obs::SpanRecord& record : ticket->tracer->Spans()) {
      spans.push_back(obs::SpanToJson(record));
    }
    out.trace = JsonValue(std::move(spans));
  }
#endif
  RecordOutcome(out, ticket->deadline_seconds * 1e3, ticket.get());
  PublishMetrics(out, /*executed=*/true);
  CompleteTicket(ticket, std::move(out));
}

ResponseEnvelope ExplorationServer::ShedResponse(
    const RequestEnvelope& envelope, AdmitVerdict verdict,
    double retry_after_ms) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeShed)->Increment();
  ResponseEnvelope out;
  out.tenant = envelope.tenant;
  out.request_id = envelope.request_id;
  out.trace_id = envelope.trace_id;
  out.outcome = ResponseOutcome::kOverloaded;
  out.status = Status::ResourceExhausted(
      StrFormat("shed: %s", std::string(AdmitVerdictName(verdict)).c_str()));
  out.retry_after_ms = retry_after_ms;
  RecordOutcome(out, EffectiveDeadlineMs(envelope, config_.admission),
                nullptr);
  PublishMetrics(out, /*executed=*/false);
  return out;
}

ResponseEnvelope ExplorationServer::RejectResponse(std::string_view tenant,
                                                   std::string_view request_id,
                                                   std::string_view trace_id,
                                                   Status status) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeRejected)->Increment();
  ResponseEnvelope out;
  out.tenant = std::string(tenant);
  out.request_id = std::string(request_id);
  out.trace_id = std::string(trace_id);
  out.outcome = ResponseOutcome::kRejected;
  out.status = std::move(status);
  RecordOutcome(out, 0.0, nullptr);
  return out;
}

void ExplorationServer::PublishMetrics(const ResponseEnvelope& response,
                                       bool executed) {
  obs::MetricRegistry& metrics = obs::GlobalMetrics();
  if (executed) {
    metrics.GetCounter(obs::kMetricServeCompleted)->Increment();
    switch (response.outcome) {
      case ResponseOutcome::kDegraded:
        metrics.GetCounter(obs::kMetricServeDegraded)->Increment();
        break;
      case ResponseOutcome::kTimeout:
        metrics.GetCounter(obs::kMetricServeTimeout)->Increment();
        break;
      case ResponseOutcome::kCancelled:
        metrics.GetCounter(obs::kMetricServeCancelled)->Increment();
        break;
      case ResponseOutcome::kSlowClient:
        metrics.GetCounter(obs::kMetricServeSlowClient)->Increment();
        break;
      default:
        break;
    }
    metrics.GetHistogram(obs::kMetricServeQueueWaitMicros)
        ->Observe(static_cast<int64_t>(response.queue_wait_ms * 1e3));
    metrics.GetHistogram(obs::kMetricServeServiceMicros)
        ->Observe(static_cast<int64_t>(response.service_ms * 1e3));
  }
  if (queue_ == nullptr) return;
  metrics.GetGauge(obs::kMetricServeQueueDepth)->Set(queue_->depth());
  metrics.GetGauge(obs::kMetricServeInflight)->Set(queue_->inflight());

  // Per-tenant labeled series, gated on the queue's bounded tenant table so
  // a hostile stream of fresh tenant names cannot grow the metric registry
  // without bound.
  std::map<std::string, TenantCounters> tenants = queue_->TenantSnapshot();
  auto it = tenants.find(response.tenant);
  if (it == tenants.end()) return;
  metrics
      .GetCounter(obs::LabeledMetricName(obs::kMetricServeTenantRequests,
                                         "tenant", response.tenant))
      ->Increment();
  metrics
      .GetGauge(obs::LabeledMetricName(obs::kMetricServeTenantInflight,
                                       "tenant", response.tenant))
      ->Set(it->second.inflight);
  if (executed) {
    metrics
        .GetHistogram(obs::LabeledMetricName(
            obs::kMetricServeTenantQueueWaitMicros, "tenant", response.tenant))
        ->Observe(static_cast<int64_t>(response.queue_wait_ms * 1e3));
    metrics
        .GetHistogram(obs::LabeledMetricName(
            obs::kMetricServeTenantServiceMicros, "tenant", response.tenant))
        ->Observe(static_cast<int64_t>(response.service_ms * 1e3));
  }
}

void ExplorationServer::RecordOutcome(const ResponseEnvelope& response,
                                      double deadline_ms,
                                      const Ticket* ticket) {
  // Per-tenant SLO tally. Rejected requests are the client's fault and
  // count toward neither bucket; the tenant table is bounded by the
  // admission cap so hostile tenant churn cannot grow it.
  if (response.outcome != ResponseOutcome::kRejected) {
    const bool met = (response.outcome == ResponseOutcome::kOk ||
                      response.outcome == ResponseOutcome::kDegraded) &&
                     (deadline_ms <= 0 ||
                      response.queue_wait_ms + response.service_ms <=
                          deadline_ms);
    bool tracked = false;
    {
      MutexLock lock(slo_mu_);
      auto it = slo_.find(response.tenant);
      if (it == slo_.end() &&
          slo_.size() < static_cast<size_t>(std::max(
                            1, config_.admission.max_tenants))) {
        it = slo_.emplace(response.tenant, SloCounters{}).first;
      }
      if (it != slo_.end()) {
        tracked = true;
        if (met) {
          ++it->second.deadline_met;
        } else {
          ++it->second.deadline_missed;
        }
      }
    }
    if (tracked) {
      obs::GlobalMetrics()
          .GetCounter(obs::LabeledMetricName(
              met ? obs::kMetricServeTenantDeadlineMet
                  : obs::kMetricServeTenantDeadlineMissed,
              "tenant", response.tenant))
          ->Increment();
    }
  }

  obs::RecordedRequest record;
  record.trace_id = response.trace_id;
  record.tenant = response.tenant;
  record.request_id = response.request_id;
  record.outcome = std::string(ResponseOutcomeName(response.outcome));
  if (!response.status.ok()) {
    record.status_message = response.status.message();
  }
  record.deadline_ms = deadline_ms;
  record.queue_wait_ms = response.queue_wait_ms;
  record.service_ms = response.service_ms;
  record.served_seq = response.served_seq;
  if (ticket != nullptr && ticket->tracer != nullptr) {
    trace_dropped_.fetch_add(static_cast<int64_t>(ticket->tracer->dropped()),
                             std::memory_order_relaxed);
    obs::GlobalMetrics()
        .GetGauge(obs::kMetricTraceDroppedSpans)
        ->Set(trace_dropped_.load(std::memory_order_relaxed));
    // The server-side trace sink: 1-in-N samples, every client opt-in, and
    // every non-ok outcome keep their span tree in the recorder.
    const bool keep = ticket->sampled || ticket->want_trace ||
                      response.outcome != ResponseOutcome::kOk;
    if (keep) record.trace = ticket->tracer->Spans();
  }
  recorder_.Record(std::move(record));
}

Status ExplorationServer::Drain(double timeout_seconds) {
  MutexLock lifecycle_lock(lifecycle_mu_);
  State current = state();
  if (current == State::kIdle) {
    state_.store(State::kStopped, std::memory_order_release);
    return Status::OK();
  }
  if (current == State::kStopped) return Status::OK();
  state_.store(State::kDraining, std::memory_order_release);
  queue_->CloseForAdmission();

  Stopwatch timer;
  bool escalated = false;
  while (!dispatcher_done_.load(std::memory_order_acquire)) {
    if (!escalated && timer.ElapsedSeconds() > timeout_seconds) {
      escalated = true;
      // Past the drain budget: shed everything still queued and cancel the
      // in-flight work; the workers acknowledge within one budget check.
      for (const std::shared_ptr<Ticket>& ticket : queue_->Evict()) {
        CancelTicket(ticket);
      }
      for (const std::shared_ptr<Ticket>& ticket :
           queue_->InflightSnapshot()) {
        ticket->cancel.RequestCancel();
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  state_.store(State::kStopped, std::memory_order_release);
  return escalated ? Status::DeadlineExceeded(
                         "drain timed out; remaining work was cancelled")
                   : Status::OK();
}

void ExplorationServer::Shutdown() {
  MutexLock lifecycle_lock(lifecycle_mu_);
  State current = state();
  if (current == State::kIdle || current == State::kStopped) {
    state_.store(State::kStopped, std::memory_order_release);
    return;
  }
  state_.store(State::kDraining, std::memory_order_release);
  queue_->CloseForAdmission();
  for (const std::shared_ptr<Ticket>& ticket : queue_->Evict()) {
    CancelTicket(ticket);
  }
  for (const std::shared_ptr<Ticket>& ticket : queue_->InflightSnapshot()) {
    ticket->cancel.RequestCancel();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  state_.store(State::kStopped, std::memory_order_release);
}

void ExplorationServer::CancelTicket(const std::shared_ptr<Ticket>& ticket) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::GlobalMetrics().GetCounter(obs::kMetricServeCancelled)->Increment();
  obs::GlobalMetrics().GetCounter(obs::kMetricServeCompleted)->Increment();
  ResponseEnvelope out;
  out.tenant = ticket->tenant;
  out.request_id = ticket->request_id;
  out.outcome = ResponseOutcome::kCancelled;
  out.status = Status::Cancelled("server shutting down");
  out.queue_wait_ms = ticket->queued_at.ElapsedSeconds() * 1e3;
  out.trace_id = ticket->trace_id;
  ticket->cancel.RequestCancel();
  RecordOutcome(out, ticket->deadline_seconds * 1e3, ticket.get());
  CompleteTicket(ticket, std::move(out));
}

ServerStats ExplorationServer::Stats() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.timeout = timeout_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.slow_client = slow_client_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  stats.uptime_seconds = started_.ElapsedSeconds();
  stats.trace_dropped_spans = trace_dropped_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.cache_bypass = cache_bypass_.load(std::memory_order_relaxed);
  if (queue_ != nullptr) {
    stats.queue_depth = queue_->depth();
    stats.inflight = queue_->inflight();
    stats.tenants = queue_->TenantSnapshot();
  }
  {
    MutexLock lock(slo_mu_);
    stats.slo.insert(slo_.begin(), slo_.end());
  }
  return stats;
}

}  // namespace coursenav::serve

#include "serve/admission.h"

#include <algorithm>
#include <utility>

namespace coursenav::serve {

std::string_view AdmitVerdictName(AdmitVerdict verdict) {
  switch (verdict) {
    case AdmitVerdict::kAdmitted:
      return "admitted";
    case AdmitVerdict::kQueueFull:
      return "queue-full";
    case AdmitVerdict::kTenantQueueFull:
      return "tenant-queue-full";
    case AdmitVerdict::kTenantInflightFull:
      return "tenant-inflight-full";
    case AdmitVerdict::kTenantTableFull:
      return "tenant-table-full";
    case AdmitVerdict::kNotServing:
      return "not-serving";
  }
  return "not-serving";
}

void CompleteTicket(const std::shared_ptr<Ticket>& ticket,
                    ResponseEnvelope response) {
  {
    MutexLock lock(ticket->mu);
    if (ticket->done) return;
    ticket->response = std::move(response);
    ticket->done = true;
  }
  ticket->cv.NotifyAll();
}

AdmissionQueue::AdmissionQueue(AdmissionConfig config)
    : config_(config) {}

AdmissionQueue::AdmitResult AdmissionQueue::Admit(
    const std::shared_ptr<Ticket>& ticket) {
  MutexLock lock(mu_);
  if (closed_) {
    return {AdmitVerdict::kNotServing, RetryAfterMsLocked()};
  }
  auto tenant_it = tenants_.find(ticket->tenant);
  if (tenant_it == tenants_.end()) {
    if (static_cast<int>(tenants_.size()) >= config_.max_tenants) {
      return {AdmitVerdict::kTenantTableFull, RetryAfterMsLocked()};
    }
    tenant_it = tenants_.emplace(ticket->tenant, TenantCounters{}).first;
  }
  TenantCounters& tenant = tenant_it->second;
  AdmitVerdict verdict = AdmitVerdict::kAdmitted;
  if (static_cast<int>(queue_.size()) >= config_.max_queue_depth) {
    verdict = AdmitVerdict::kQueueFull;
  } else if (tenant.queued >= config_.max_queued_per_tenant) {
    verdict = AdmitVerdict::kTenantQueueFull;
  } else if (tenant.inflight >= config_.max_inflight_per_tenant) {
    verdict = AdmitVerdict::kTenantInflightFull;
  }
  if (verdict != AdmitVerdict::kAdmitted) {
    ++tenant.shed_total;
    return {verdict, RetryAfterMsLocked()};
  }
  ticket->id = next_id_++;
  ticket->absolute_deadline =
      epoch_.ElapsedSeconds() + ticket->deadline_seconds;
  ticket->queued_at.Reset();
  ++tenant.queued;
  ++tenant.admitted_total;
  queue_.emplace(std::make_pair(ticket->absolute_deadline, ticket->id),
                 ticket);
  work_.NotifyOne();
  return {AdmitVerdict::kAdmitted, 0.0};
}

std::shared_ptr<Ticket> AdmissionQueue::Pop() {
  MutexLock lock(mu_);
  while (queue_.empty() && !closed_) work_.Wait(mu_);
  if (queue_.empty()) return nullptr;
  auto first = queue_.begin();
  std::shared_ptr<Ticket> ticket = std::move(first->second);
  queue_.erase(first);
  inflight_.emplace(ticket->id, ticket);
  auto tenant_it = tenants_.find(ticket->tenant);
  if (tenant_it != tenants_.end()) {
    --tenant_it->second.queued;
    ++tenant_it->second.inflight;
  }
  return ticket;
}

void AdmissionQueue::Complete(const std::shared_ptr<Ticket>& ticket,
                              double service_seconds) {
  MutexLock lock(mu_);
  inflight_.erase(ticket->id);
  auto tenant_it = tenants_.find(ticket->tenant);
  if (tenant_it != tenants_.end()) {
    --tenant_it->second.inflight;
    ++tenant_it->second.completed_total;
  }
  ++completed_;
  // EWMA with 1/8 gain: stable under bursts, adapts within ~10 requests.
  ewma_service_seconds_ += (service_seconds - ewma_service_seconds_) / 8.0;
}

void AdmissionQueue::CloseForAdmission() {
  MutexLock lock(mu_);
  closed_ = true;
  work_.NotifyAll();
}

std::vector<std::shared_ptr<Ticket>> AdmissionQueue::Evict() {
  std::vector<std::shared_ptr<Ticket>> evicted;
  MutexLock lock(mu_);
  evicted.reserve(queue_.size());
  for (auto& [key, ticket] : queue_) {
    auto tenant_it = tenants_.find(ticket->tenant);
    if (tenant_it != tenants_.end()) --tenant_it->second.queued;
    evicted.push_back(std::move(ticket));
  }
  queue_.clear();
  work_.NotifyAll();
  return evicted;
}

std::vector<std::shared_ptr<Ticket>> AdmissionQueue::InflightSnapshot()
    const {
  std::vector<std::shared_ptr<Ticket>> inflight;
  MutexLock lock(mu_);
  inflight.reserve(inflight_.size());
  for (const auto& [id, ticket] : inflight_) inflight.push_back(ticket);
  return inflight;
}

int AdmissionQueue::depth() const {
  MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

int AdmissionQueue::inflight() const {
  MutexLock lock(mu_);
  return static_cast<int>(inflight_.size());
}

bool AdmissionQueue::accepting() const {
  MutexLock lock(mu_);
  return !closed_;
}

double AdmissionQueue::RetryAfterMsHint() const {
  MutexLock lock(mu_);
  return RetryAfterMsLocked();
}

double AdmissionQueue::RetryAfterMsLocked() const {
  // The backlog ahead of a retry is everything queued plus what is
  // executing; scale by the observed service time and clamp to a range
  // that keeps clients neither hammering nor giving up.
  double backlog = static_cast<double>(queue_.size() + inflight_.size()) + 1.0;
  double hint_ms = backlog * ewma_service_seconds_ * 1e3;
  return std::clamp(hint_ms, 10.0, 5000.0);
}

std::map<std::string, TenantCounters> AdmissionQueue::TenantSnapshot() const {
  MutexLock lock(mu_);
  return {tenants_.begin(), tenants_.end()};
}

}  // namespace coursenav::serve

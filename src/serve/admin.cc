#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "cache/request_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "util/json.h"
#include "util/string_util.h"

namespace coursenav::serve {

namespace {

void SetSocketTimeout(int fd, int option, double seconds) {
  if (seconds <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  (void)setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

/// Writes all of `data`; false on timeout or error.
bool WriteFully(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = send(fd, data.data() + written, data.size() - written,
                     MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string_view HttpStatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Serializes one response in HTTP/1.0 form. Content-Length + close framing
/// keeps the protocol stateless: one request, one response, one connection.
std::string SerializeHttp(const AdminServer::HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 128);
  out += StrFormat("HTTP/1.0 %d ", response.status_code);
  out += HttpStatusText(response.status_code);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += StrFormat("\r\nContent-Length: %zu", response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::string_view StateName(ExplorationServer::State state) {
  switch (state) {
    case ExplorationServer::State::kIdle:
      return "idle";
    case ExplorationServer::State::kServing:
      return "serving";
    case ExplorationServer::State::kDraining:
      return "draining";
    case ExplorationServer::State::kStopped:
      return "stopped";
  }
  return "unknown";
}

/// True when the query string (already split off the path) asks for the
/// flight-recorder dump. Only `recorder=1` is recognized; everything else
/// is ignored, so scrapers with extra parameters still get /statusz.
bool WantsRecorder(std::string_view query) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view param = query.substr(0, amp);
    if (param == "recorder=1") return true;
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return false;
}

}  // namespace

AdminServer::AdminServer(const ExplorationServer* core, AdminConfig config)
    : core_(core), config_(std::move(config)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("admin server already started");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int reuse = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &address.sin_addr) !=
      1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<const sockaddr*>(&address),
           sizeof(address)) != 0) {
    Status status = Status::FailedPrecondition(
        StrFormat("bind(%s:%d): %s", config_.bind_address.c_str(),
                  config_.port, std::strerror(errno)));
    close(fd);
    return status;
  }
  if (listen(fd, config_.backlog) != 0) {
    Status status =
        Status::Internal(StrFormat("listen(): %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status =
        Status::Internal(StrFormat("getsockname(): %s", std::strerror(errno)));
    close(fd);
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(fd);
      break;
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, config_.recv_timeout_seconds);
    SetSocketTimeout(fd, SO_SNDTIMEO, config_.send_timeout_seconds);
    // Serial service: the next scraper waits in the listen backlog. Worst
    // case Stop() is delayed by one request's recv+send timeouts.
    ServeConnection(fd);
    close(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  std::string request;
  char chunk[1024];
  // Read until the end of the headers; the admin plane never reads a body.
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > config_.max_request_bytes) {
      HttpResponse bad;
      bad.status_code = 400;
      bad.body = "request too large\n";
      (void)WriteFully(fd, SerializeHttp(bad));
      return;
    }
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      request.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EOF, timeout, or error before a complete request
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = request.find("\r\n");
  std::string_view line = std::string_view(request).substr(0, line_end);
  const size_t method_end = line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    HttpResponse bad;
    bad.status_code = 400;
    bad.body = "malformed request line\n";
    (void)WriteFully(fd, SerializeHttp(bad));
    return;
  }
  const std::string_view method = line.substr(0, method_end);
  const std::string_view target =
      line.substr(method_end + 1, target_end - method_end - 1);

  HttpResponse response;
  if (method != "GET") {
    response.status_code = 405;
    response.body = "admin plane is GET-only\n";
  } else {
    response = HandleGet(target);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  (void)WriteFully(fd, SerializeHttp(response));
}

AdminServer::HttpResponse AdminServer::HandleGet(
    std::string_view target) const {
  const size_t question = target.find('?');
  const std::string_view path = target.substr(0, question);
  const std::string_view query =
      question == std::string_view::npos ? std::string_view()
                                         : target.substr(question + 1);
  if (path == "/metrics") return Metrics();
  if (path == "/healthz") return Healthz();
  if (path == "/statusz") return Statusz(WantsRecorder(query));
  HttpResponse response;
  response.status_code = 404;
  response.body = StrFormat(
      "unknown target '%s'; try /metrics, /healthz, or /statusz\n",
      std::string(path).c_str());
  return response;
}

AdminServer::HttpResponse AdminServer::Metrics() const {
  obs::MetricRegistry& metrics = obs::GlobalMetrics();
  // Refresh the self-monitoring gauges so every scrape sees current
  // dropped-span and cardinality numbers even between requests.
  obs::PublishTracerHealth(
      static_cast<size_t>(core_->Stats().trace_dropped_spans), metrics);
  obs::PublishRegistryHealth(metrics);
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::RenderPrometheus(metrics);
  return response;
}

AdminServer::HttpResponse AdminServer::Healthz() const {
  const ExplorationServer::State state = core_->state();
  HttpResponse response;
  response.status_code =
      state == ExplorationServer::State::kServing ? 200 : 503;
  response.body = std::string(StateName(state)) + "\n";
  return response;
}

AdminServer::HttpResponse AdminServer::Statusz(bool include_recorder) const {
  const ServerStats stats = core_->Stats();
  const ServerConfig& config = core_->config();
  const std::vector<obs::MetricSnapshot> snapshot =
      obs::GlobalMetrics().Snapshot();
  // Histogram lookup table for the per-tenant latency quantiles.
  std::map<std::string, const obs::MetricSnapshot*> histograms;
  for (const obs::MetricSnapshot& metric : snapshot) {
    if (metric.kind == obs::MetricKind::kHistogram) {
      histograms.emplace(metric.name, &metric);
    }
  }
  const auto quantile = [&histograms](const std::string& name,
                                      double q) -> int64_t {
    auto it = histograms.find(name);
    return it != histograms.end() ? obs::HistogramQuantile(*it->second, q)
                                  : 0;
  };

  JsonValue::Object root;
  root["state"] = JsonValue(std::string(StateName(core_->state())));
  root["uptime_seconds"] = JsonValue(stats.uptime_seconds);

  JsonValue::Object requests;
  requests["submitted"] = JsonValue(stats.submitted);
  requests["admitted"] = JsonValue(stats.admitted);
  requests["completed"] = JsonValue(stats.completed);
  requests["ok"] = JsonValue(stats.ok);
  requests["degraded"] = JsonValue(stats.degraded);
  requests["timeout"] = JsonValue(stats.timeout);
  requests["shed"] = JsonValue(stats.shed);
  requests["rejected"] = JsonValue(stats.rejected);
  requests["cancelled"] = JsonValue(stats.cancelled);
  requests["slow_client"] = JsonValue(stats.slow_client);
  requests["failed"] = JsonValue(stats.failed);
  requests["faults_injected"] = JsonValue(stats.faults_injected);
  root["requests"] = JsonValue(std::move(requests));

  JsonValue::Object queue;
  queue["depth"] = JsonValue(stats.queue_depth);
  queue["inflight"] = JsonValue(stats.inflight);
  queue["max_queue_depth"] = JsonValue(config.admission.max_queue_depth);
  queue["max_queued_per_tenant"] =
      JsonValue(config.admission.max_queued_per_tenant);
  queue["max_inflight_per_tenant"] =
      JsonValue(config.admission.max_inflight_per_tenant);
  queue["max_tenants"] = JsonValue(config.admission.max_tenants);
  root["queue"] = JsonValue(std::move(queue));

  JsonValue::Object tenants;
  for (const auto& [name, counters] : stats.tenants) {
    JsonValue::Object tenant;
    tenant["queued"] = JsonValue(counters.queued);
    tenant["inflight"] = JsonValue(counters.inflight);
    tenant["admitted_total"] = JsonValue(counters.admitted_total);
    tenant["shed_total"] = JsonValue(counters.shed_total);
    tenant["completed_total"] = JsonValue(counters.completed_total);
    tenants[name] = JsonValue(std::move(tenant));
  }
  root["tenants"] = JsonValue(std::move(tenants));

  JsonValue::Object slo;
  slo["deadline_target"] = JsonValue(config.slo_deadline_target);
  JsonValue::Object slo_tenants;
  for (const auto& [name, counters] : stats.slo) {
    JsonValue::Object tenant;
    tenant["deadline_met"] = JsonValue(counters.deadline_met);
    tenant["deadline_missed"] = JsonValue(counters.deadline_missed);
    tenant["attainment"] = JsonValue(counters.attainment());
    tenant["meets_target"] =
        JsonValue(counters.attainment() >= config.slo_deadline_target);
    tenant["queue_wait_p50_us"] = JsonValue(quantile(
        obs::LabeledMetricName(obs::kMetricServeTenantQueueWaitMicros,
                               "tenant", name),
        0.5));
    tenant["queue_wait_p99_us"] = JsonValue(quantile(
        obs::LabeledMetricName(obs::kMetricServeTenantQueueWaitMicros,
                               "tenant", name),
        0.99));
    tenant["service_p50_us"] = JsonValue(quantile(
        obs::LabeledMetricName(obs::kMetricServeTenantServiceMicros, "tenant",
                               name),
        0.5));
    tenant["service_p99_us"] = JsonValue(quantile(
        obs::LabeledMetricName(obs::kMetricServeTenantServiceMicros, "tenant",
                               name),
        0.99));
    slo_tenants[name] = JsonValue(std::move(tenant));
  }
  slo["tenants"] = JsonValue(std::move(slo_tenants));
  root["slo"] = JsonValue(std::move(slo));

  // The request-cache block: this server's view (hits/misses/bypass of
  // executed requests) plus the process-wide tiers it shares with every
  // other server and session in the process.
  JsonValue::Object cache_info;
  cache_info["enabled"] = JsonValue(config.enable_cache);
  cache_info["hits"] = JsonValue(stats.cache_hits);
  cache_info["misses"] = JsonValue(stats.cache_misses);
  cache_info["bypass"] = JsonValue(stats.cache_bypass);
  if (config.enable_cache) {
    const cache::CacheStats shared = cache::RequestCache::Global().Stats();
    JsonValue::Object process;
    process["plan_hits"] = JsonValue(shared.plan_hits);
    process["plan_misses"] = JsonValue(shared.plan_misses);
    process["result_hits"] = JsonValue(shared.result_hits);
    process["result_misses"] = JsonValue(shared.result_misses);
    process["count_hits"] = JsonValue(shared.count_hits);
    process["count_misses"] = JsonValue(shared.count_misses);
    process["bypasses"] = JsonValue(shared.bypasses);
    process["evictions"] = JsonValue(shared.evictions);
    process["epoch_invalidations"] = JsonValue(shared.epoch_invalidations);
    process["plan_entries"] =
        JsonValue(static_cast<int64_t>(shared.plan_entries));
    process["result_entries"] =
        JsonValue(static_cast<int64_t>(shared.result_entries));
    process["count_entries"] =
        JsonValue(static_cast<int64_t>(shared.count_entries));
    process["result_bytes"] =
        JsonValue(static_cast<int64_t>(shared.result_bytes));
    cache_info["process"] = JsonValue(std::move(process));
  }
  root["cache"] = JsonValue(std::move(cache_info));

  JsonValue::Object trace;
  trace["sample_every"] = JsonValue(config.trace_sample_every);
  trace["max_spans_per_request"] =
      JsonValue(static_cast<int64_t>(config.max_spans_per_request));
  trace["dropped_spans"] = JsonValue(stats.trace_dropped_spans);
  root["trace"] = JsonValue(std::move(trace));

  const obs::FlightRecorder& recorder = core_->recorder();
  JsonValue::Object recorder_info;
  recorder_info["capacity"] =
      JsonValue(static_cast<int64_t>(recorder.config().capacity));
  recorder_info["quiet_seconds"] = JsonValue(recorder.config().quiet_seconds);
  recorder_info["total_recorded"] = JsonValue(recorder.total_recorded());
  recorder_info["non_ok_recorded"] = JsonValue(recorder.non_ok_recorded());
  recorder_info["auto_dumps"] = JsonValue(recorder.auto_dumps());
  root["recorder"] = JsonValue(std::move(recorder_info));

  if (include_recorder) {
    JsonValue::Array records;
    for (const obs::RecordedRequest& record : recorder.Snapshot()) {
      records.push_back(record.ToJson());
    }
    root["recorder_records"] = JsonValue(std::move(records));
  }

  HttpResponse response;
  response.content_type = "application/json; charset=utf-8";
  response.body = JsonValue(std::move(root)).Dump();
  response.body += "\n";
  return response;
}

void AdminServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
    close(listen_fd_);
  }
  // An in-progress request finishes on its own (bounded by the socket
  // timeouts) before the accept loop notices the closed listener.
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
}

Result<AdminServer::HttpResponse> AdminHttpGet(const std::string& host,
                                               int port,
                                               std::string_view target,
                                               double timeout_seconds) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  SetSocketTimeout(fd, SO_RCVTIMEO, timeout_seconds);
  SetSocketTimeout(fd, SO_SNDTIMEO, timeout_seconds);

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad admin host '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
              sizeof(address)) != 0) {
    Status status = Status::FailedPrecondition(StrFormat(
        "connect(%s:%d): %s", host.c_str(), port, std::strerror(errno)));
    close(fd);
    return status;
  }

  std::string request = StrFormat("GET %s HTTP/1.0\r\nHost: %s\r\n\r\n",
                                  std::string(target).c_str(), host.c_str());
  if (!WriteFully(fd, request)) {
    close(fd);
    return Status::DeadlineExceeded("admin request write failed");
  }

  // HTTP/1.0 with Connection: close — the response body ends at EOF.
  std::string raw;
  char chunk[4096];
  for (;;) {
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      raw.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) break;  // orderly EOF
    close(fd);
    return Status::DeadlineExceeded(
        StrFormat("admin response read failed: %s", std::strerror(errno)));
  }
  close(fd);

  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::Internal("malformed admin response: no status line");
  }
  // Status line: HTTP/1.x SP CODE SP TEXT.
  const std::string_view line = std::string_view(raw).substr(0, line_end);
  const size_t code_start = line.find(' ');
  if (code_start == std::string_view::npos ||
      code_start + 4 > line.size()) {
    return Status::Internal("malformed admin status line '" +
                            std::string(line) + "'");
  }
  int code = 0;
  for (size_t i = code_start + 1; i < line.size() && line[i] != ' '; ++i) {
    if (line[i] < '0' || line[i] > '9') {
      return Status::Internal("malformed admin status code in '" +
                              std::string(line) + "'");
    }
    code = code * 10 + (line[i] - '0');
  }

  const size_t headers_end = raw.find("\r\n\r\n");
  if (headers_end == std::string::npos) {
    return Status::Internal("malformed admin response: no header terminator");
  }
  AdminServer::HttpResponse response;
  response.status_code = code;
  const std::string_view headers =
      std::string_view(raw).substr(line_end + 2, headers_end - line_end - 2);
  const size_t type_at = headers.find("Content-Type: ");
  if (type_at != std::string_view::npos) {
    const std::string_view rest = headers.substr(type_at + 14);
    response.content_type = std::string(rest.substr(0, rest.find("\r\n")));
  }
  response.body = raw.substr(headers_end + 4);
  return response;
}

}  // namespace coursenav::serve

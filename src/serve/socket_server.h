#ifndef COURSENAV_SERVE_SOCKET_SERVER_H_
#define COURSENAV_SERVE_SOCKET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace coursenav::serve {

/// Transport tuning for the TCP front end.
struct SocketConfig {
  /// Loopback by default: the server is an internal service component, not
  /// an internet-facing endpoint.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  int port = 0;
  int backlog = 16;
  /// Concurrent connections; later ones are closed immediately (the TCP
  /// analogue of a queue-full shed).
  int max_connections = 64;
  /// A client must deliver a complete frame within this budget or the
  /// connection is dropped (slow-loris defense).
  double recv_timeout_seconds = 5.0;
  /// A client must take delivery within this budget or the response is
  /// dropped and counted as a slow client.
  double send_timeout_seconds = 5.0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The length-prefixed TCP transport over an ExplorationServer core.
///
/// One thread per connection, each running read-frame → core->Handle() →
/// write-frame until the peer closes. All admission control, quotas, and
/// overload shedding live in the core; this layer only enforces transport
/// hygiene — frame size before buffering, read/write timeouts, and the
/// connection cap. Stop() closes the listener and every open connection,
/// then joins all transport threads.
///
/// The core is borrowed, must outlive the socket server, and must be
/// Start()ed by the caller.
class SocketServer {
 public:
  SocketServer(ExplorationServer* core, SocketConfig config = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Fails (FailedPrecondition
  /// / Internal) when the address cannot be bound.
  Status Start();

  /// Closes the listener and all connections, then joins every thread.
  /// Idempotent.
  void Stop();

  /// The bound port (the ephemeral pick when config.port was 0).
  int port() const { return port_; }

  /// Currently open connections.
  int active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Joins finished connection threads (called from the accept loop so the
  /// thread list stays bounded on long-running servers).
  void ReapFinished();

  ExplorationServer* core_;
  const SocketConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::atomic<int> active_connections_{0};
  Mutex mu_;
  std::list<std::unique_ptr<Connection>> connections_ CN_GUARDED_BY(mu_);
};

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_SOCKET_SERVER_H_

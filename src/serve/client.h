#ifndef COURSENAV_SERVE_CLIENT_H_
#define COURSENAV_SERVE_CLIENT_H_

#include <functional>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "util/result.h"

namespace coursenav::serve {

/// Client-side back-off tuning for overload retries.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retry.
  int max_attempts = 5;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  double multiplier = 2.0;
  /// Seed for the deterministic jitter stream (equal-jitter: each sleep is
  /// half deterministic, half uniform-random), so load-generator runs
  /// replay exactly.
  uint64_t jitter_seed = 1;
};

/// One CallWithRetry conversation, successful or not.
struct RetryResult {
  /// The last response received (the successful one, or the final
  /// overloaded/failed answer when attempts ran out).
  ResponseEnvelope response;
  int attempts = 0;
  /// Total milliseconds slept between attempts.
  double backoff_ms_total = 0.0;
};

/// Sends one framed payload and returns the peer's framed response.
using TransportFn =
    std::function<Result<ResponseEnvelope>(std::string_view payload)>;

/// Sleeps for the given milliseconds; injectable so tests and chaos sweeps
/// can collect the delays instead of actually sleeping.
using SleepFn = std::function<void(double ms)>;

/// Drives `transport` with jittered exponential back-off: retries while the
/// server answers kOverloaded (honoring its retry_after_ms hint as the
/// back-off floor) or the transport itself fails transiently. Rejections
/// are never retried — the same bytes can never succeed. Returns the last
/// response; transport-level failure on the final attempt surfaces as its
/// Status.
Result<RetryResult> CallWithRetry(const TransportFn& transport,
                                  std::string_view payload,
                                  const RetryPolicy& policy = {},
                                  const SleepFn& sleep = {});

/// A blocking length-prefixed TCP client for the exploration server.
///
/// Minimal by design: one connection, one in-flight request. The load
/// generator opens one client per simulated session.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;

  /// Connects to host:port with the given I/O timeout.
  static Result<ServeClient> Connect(std::string_view host, int port,
                                     double timeout_seconds = 5.0);

  /// One request/response round trip (raw payload in, raw payload out).
  Result<std::string> Call(std::string_view payload);

  /// Call() plus envelope parsing.
  Result<ResponseEnvelope> CallEnvelope(std::string_view payload);

  /// A TransportFn bound to this connection, for CallWithRetry.
  TransportFn Transport();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_CLIENT_H_

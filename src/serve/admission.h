#ifndef COURSENAV_SERVE_ADMISSION_H_
#define COURSENAV_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "plan/request.h"
#include "serve/protocol.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace coursenav::serve {

/// Bounds on the admission queue and the per-tenant quotas. Every bound
/// sheds with a structured Overloaded/Rejected response when exceeded —
/// the queue never grows past `max_queue_depth` and the tenant table never
/// past `max_tenants`, so server memory stays bounded under any load.
struct AdmissionConfig {
  /// Total queued requests across all tenants.
  int max_queue_depth = 64;
  /// Queued requests per tenant (fairness: one tenant cannot fill the
  /// whole queue).
  int max_queued_per_tenant = 16;
  /// Concurrently executing requests per tenant.
  int max_inflight_per_tenant = 8;
  /// Distinct tenants the server will track; later tenants are rejected.
  int max_tenants = 64;
  /// Deadline granted to requests that name none, in seconds.
  double default_deadline_seconds = 2.0;
  /// Hard ceiling on any request's deadline, in seconds.
  double max_deadline_seconds = 10.0;
};

/// Why a request was not admitted.
enum class AdmitVerdict {
  kAdmitted,
  kQueueFull,
  kTenantQueueFull,
  kTenantInflightFull,
  kTenantTableFull,
  kNotServing,
};

std::string_view AdmitVerdictName(AdmitVerdict verdict);

/// Per-tenant accounting, snapshotted for Stats()/metrics export.
struct TenantCounters {
  int64_t queued = 0;
  int64_t inflight = 0;
  int64_t admitted_total = 0;
  int64_t shed_total = 0;
  int64_t completed_total = 0;
};

/// One admitted request riding through the queue to a worker. The ticket is
/// also the completion channel: the transport thread that admitted it
/// blocks on `cv` until a worker (or shutdown) publishes `response`.
struct Ticket {
  uint64_t id = 0;
  std::string tenant;
  std::string request_id;
  ExplorationRequest request;
  bool degrade = false;
  bool full_payload = false;
  /// Fault-seam flags (see kFaultSiteServeOverload): the worker honors
  /// these instead of executing / delivering normally.
  bool forced_deadline_exceeded = false;
  bool forced_slow_client = false;
  /// Total budget (queue wait + execution), seconds.
  double deadline_seconds = 0.0;
  /// Deadline instant on the queue's epoch clock; the EDF ordering key.
  double absolute_deadline = 0.0;
  /// Trace correlation id (client-supplied or server-generated).
  std::string trace_id;
  /// The client asked for the span tree back in the response.
  bool want_trace = false;
  /// The server's 1-in-N sampling picked this request for its trace sink.
  bool sampled = false;
  /// Microseconds the transport thread spent clamping request limits,
  /// re-emitted as a span once a worker owns the request's tracer.
  int64_t clamp_us = 0;
  /// The request-scoped tracer (null when tracing is compiled out). Its
  /// epoch starts on the transport thread just before admission, so
  /// admission wait is on its timeline; a worker installs it thread-locally
  /// for the execution stages.
  std::unique_ptr<obs::Tracer> tracer;
  Stopwatch queued_at;
  CancellationToken cancel = CancellationToken::Cancellable();

  Mutex mu;
  CondVar cv;
  bool done CN_GUARDED_BY(mu) = false;
  ResponseEnvelope response CN_GUARDED_BY(mu);
};

/// Publishes `response` into the ticket and wakes its waiter. Idempotent:
/// the first completion wins (shutdown and a finishing worker may race).
void CompleteTicket(const std::shared_ptr<Ticket>& ticket,
                    ResponseEnvelope response);

/// A bounded, deadline-aware admission queue.
///
/// Ordering is earliest-deadline-first with FIFO arrival tiebreak, so a
/// near-deadline interactive request overtakes queued batch work instead of
/// timing out behind it. All bounds from AdmissionConfig are enforced at
/// Admit() time; Pop() blocks workers until work arrives or the queue
/// closes. Thread-safe throughout.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  struct AdmitResult {
    AdmitVerdict verdict = AdmitVerdict::kAdmitted;
    /// Back-off hint for shed requests, from queue pressure and the
    /// service-time EWMA.
    double retry_after_ms = 0.0;
  };

  /// Admits `ticket` or sheds it with a verdict + retry hint. On admission
  /// the ticket's `absolute_deadline` is stamped against the queue epoch.
  AdmitResult Admit(const std::shared_ptr<Ticket>& ticket);

  /// Blocks until a ticket is available (EDF order) or the queue will
  /// never yield one again (closed for admission and empty, or closed
  /// hard); nullptr means the worker should exit. Marks the ticket
  /// in-flight.
  std::shared_ptr<Ticket> Pop();

  /// Completion bookkeeping: drops in-flight state and feeds the
  /// service-time EWMA behind retry hints.
  void Complete(const std::shared_ptr<Ticket>& ticket,
                double service_seconds);

  /// Stops admission (Admit sheds with kNotServing); Pop keeps draining
  /// what is already queued.
  void CloseForAdmission();

  /// Removes and returns every queued ticket (the shutdown path completes
  /// them with Cancelled); wakes blocked workers.
  std::vector<std::shared_ptr<Ticket>> Evict();

  /// Tickets currently executing, for shutdown cancellation.
  std::vector<std::shared_ptr<Ticket>> InflightSnapshot() const;

  int depth() const;
  int inflight() const;
  bool accepting() const;

  /// Current shed back-off hint (also computed inside Admit).
  double RetryAfterMsHint() const;

  std::map<std::string, TenantCounters> TenantSnapshot() const;

 private:
  double RetryAfterMsLocked() const CN_REQUIRES(mu_);

  const AdmissionConfig config_;
  Stopwatch epoch_;

  mutable Mutex mu_;
  CondVar work_;
  bool closed_ CN_GUARDED_BY(mu_) = false;
  /// EDF order: (absolute deadline, admission id) -> ticket.
  std::map<std::pair<double, uint64_t>, std::shared_ptr<Ticket>> queue_
      CN_GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<Ticket>> inflight_ CN_GUARDED_BY(mu_);
  std::map<std::string, TenantCounters, std::less<>> tenants_
      CN_GUARDED_BY(mu_);
  uint64_t next_id_ CN_GUARDED_BY(mu_) = 0;
  /// EWMA of per-request service seconds, seeded pessimistically so the
  /// first hints are conservative.
  double ewma_service_seconds_ CN_GUARDED_BY(mu_) = 0.05;
  int64_t completed_ CN_GUARDED_BY(mu_) = 0;
};

}  // namespace coursenav::serve

#endif  // COURSENAV_SERVE_ADMISSION_H_

#ifndef COURSENAV_DATA_BRANDEIS_CS_H_
#define COURSENAV_DATA_BRANDEIS_CS_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "requirements/degree_requirement.h"

namespace coursenav::data {

/// The evaluation dataset: a deterministic synthetic stand-in for the 38
/// Brandeis Computer Science courses and class schedules (academic window
/// Fall 2011 – Fall 2015) used in the paper's Section 5.
///
/// The real registrar data is not public; this catalog mirrors its
/// structural properties — 38 courses, a 7-core / 31-elective split,
/// realistic prerequisite chains (depth up to 4), intro courses offered
/// every semester and upper-level courses on yearly Fall/Spring patterns —
/// which are what drive the branching factors and pruning rates the
/// evaluation measures.
struct BrandeisDataset {
  Catalog catalog;
  OfferingSchedule schedule;
  /// The CS-major goal: 7 core courses plus 5 electives (credit allocation
  /// via max-flow; a course counts toward one group).
  std::shared_ptr<const DegreeRequirement> cs_major;
  std::vector<std::string> core_codes;
  std::vector<std::string> elective_codes;
  /// First and last term covered by the schedule.
  Term first_term;
  Term last_term;

  BrandeisDataset() : schedule(0) {}
};

/// Builds the dataset. Infallible by construction (the table is validated
/// by unit tests); aborts on internal inconsistency.
BrandeisDataset BuildBrandeisDataset();

/// The paper's start semester for an exploration spanning `num_semesters`
/// enrollment semesters with the deadline fixed at Fall 2015: e.g.
/// 6 -> Fall 2012 (the paper's "Fall '12 to Fall '15" period).
Term StartTermForSpan(int num_semesters);

/// The fixed end semester of the evaluation window (Fall 2015).
Term EvaluationEndTerm();

}  // namespace coursenav::data

#endif  // COURSENAV_DATA_BRANDEIS_CS_H_

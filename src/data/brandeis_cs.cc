#include "data/brandeis_cs.h"

#include <cassert>
#include <cstdlib>

#include "parsers/prereq_parser.h"
#include "util/logging.h"

namespace coursenav::data {

namespace {

/// Offering cadence over the Fall 2011 – Fall 2015 window.
enum class Cadence {
  kEveryTerm,
  kEveryFall,
  kEverySpring,
  kFallOddYears,    // Fall 2011, 2013, 2015
  kSpringEvenYears  // Spring 2012, 2014
};

struct CourseSpec {
  const char* code;
  const char* title;
  double workload;
  const char* prereq;  // ParsePrerequisiteText input; "" = none
  Cadence cadence;
  bool core;
};

/// 38 courses: 7 core + 31 electives. Prerequisite depth reaches 4
/// (11A → 21A → 21B → 35A), so a from-scratch major is completable in 4
/// semesters at m = 3 but only along tightly scheduled paths — the regime
/// the paper's pruning numbers come from.
constexpr CourseSpec kCourses[] = {
    // --- Core (7) ---
    {"COSI11A", "Programming in Java", 8, "", Cadence::kEveryTerm, true},
    {"COSI12B", "Advanced Programming Techniques", 9, "COSI 11a",
     Cadence::kEveryTerm, true},
    {"COSI21A", "Data Structures and Algorithms", 10, "COSI 11a",
     Cadence::kEveryTerm, true},
    {"COSI21B", "Computer Systems", 10, "COSI 21a", Cadence::kEveryTerm,
     true},
    {"COSI29A", "Discrete Structures", 8, "", Cadence::kEveryTerm, true},
    {"COSI30A", "Introduction to the Theory of Computation", 9,
     "COSI 21a and COSI 29a", Cadence::kEveryFall, true},
    {"COSI35A", "Operating Systems", 11, "COSI 21b", Cadence::kEverySpring,
     true},
    // --- Electives (31) ---
    {"COSI2A", "How Computers Work", 5, "", Cadence::kEveryTerm, false},
    {"COSI65A", "Introduction to 3-D Animation", 6, "", Cadence::kEveryFall,
     false},
    {"COSI33B", "Internet and Society", 6, "", Cadence::kEverySpring, false},
    {"COSI45A", "Programming Languages", 9, "COSI 21a", Cadence::kFallOddYears,
     false},
    {"COSI100A", "Software Engineering", 9, "COSI 12b", Cadence::kEveryFall,
     false},
    {"COSI101A", "Artificial Intelligence", 10, "COSI 21a and COSI 29a",
     Cadence::kEveryFall, false},
    {"COSI102A", "Machine Learning", 10, "COSI 101a", Cadence::kSpringEvenYears,
     false},
    {"COSI103A", "Computer Vision", 9, "COSI 21a", Cadence::kSpringEvenYears,
     false},
    {"COSI104A", "Robotics", 8, "COSI 11a", Cadence::kFallOddYears, false},
    {"COSI105A", "Computational Biology", 8, "COSI 11a",
     Cadence::kEverySpring, false},
    {"COSI107A", "Database Systems", 9, "COSI 21a", Cadence::kFallOddYears,
     false},
    {"COSI108A", "Distributed Systems", 10, "COSI 21b",
     Cadence::kSpringEvenYears, false},
    {"COSI109A", "Computer Networks", 9, "COSI 12b", Cadence::kFallOddYears,
     false},
    {"COSI110A", "Compiler Design", 11, "COSI 21b and COSI 29a",
     Cadence::kSpringEvenYears, false},
    {"COSI111A", "Cryptography", 9, "COSI 29a", Cadence::kFallOddYears, false},
    {"COSI112A", "Advanced Algorithms", 10, "COSI 21a and COSI 29a",
     Cadence::kSpringEvenYears, false},
    {"COSI113A", "Information Retrieval", 8, "COSI 21a", Cadence::kFallOddYears,
     false},
    {"COSI114A", "Natural Language Processing", 9, "COSI 101a",
     Cadence::kSpringEvenYears, false},
    {"COSI115A", "Computer Graphics", 9, "COSI 12b", Cadence::kEveryFall,
     false},
    {"COSI116A", "Human-Computer Interaction", 7, "COSI 11a",
     Cadence::kEverySpring, false},
    {"COSI117A", "Computer Security", 9, "COSI 21b", Cadence::kFallOddYears,
     false},
    {"COSI118A", "Parallel Computing", 10, "COSI 21b", Cadence::kSpringEvenYears,
     false},
    {"COSI119A", "Web Application Development", 7, "COSI 12b",
     Cadence::kEveryTerm, false},
    {"COSI120A", "Mobile Application Development", 7, "COSI 12b",
     Cadence::kSpringEvenYears, false},
    {"COSI121A", "Game Design", 7, "COSI 12b or COSI 2a", Cadence::kFallOddYears,
     false},
    {"COSI122A", "Data Mining", 9, "COSI 21a", Cadence::kSpringEvenYears, false},
    {"COSI123A", "Embedded Systems", 10, "COSI 21b", Cadence::kFallOddYears,
     false},
    {"COSI124A", "Mathematical Logic", 8, "COSI 29a", Cadence::kSpringEvenYears,
     false},
    {"COSI125A", "Numerical Methods", 8, "COSI 11a", Cadence::kFallOddYears,
     false},
    {"COSI126A", "Quantum Computing", 11, "COSI 21a and COSI 29a",
     Cadence::kSpringEvenYears, false},
    {"COSI127A", "Bioinformatics Seminar", 8, "COSI 105a",
     Cadence::kFallOddYears, false},
};

void AddOfferings(OfferingSchedule* schedule, CourseId id, Cadence cadence,
                  Term first, Term last) {
  for (Term t = first; t <= last; t = t.Next()) {
    bool offered = false;
    switch (cadence) {
      case Cadence::kEveryTerm:
        offered = true;
        break;
      case Cadence::kEveryFall:
        offered = t.season() == Season::kFall;
        break;
      case Cadence::kEverySpring:
        offered = t.season() == Season::kSpring;
        break;
      case Cadence::kFallOddYears:
        offered = t.season() == Season::kFall && t.year() % 2 == 1;
        break;
      case Cadence::kSpringEvenYears:
        offered = t.season() == Season::kSpring && t.year() % 2 == 0;
        break;
    }
    if (offered) {
      Status status = schedule->AddOffering(id, t);
      assert(status.ok());
      (void)status;
    }
  }
}

/// Aborts on construction failure: the table is static data and any error
/// in it is a bug, not a runtime condition.
void CheckOk(const Status& status) {
  if (!status.ok()) {
    COURSENAV_LOG(kError) << "Brandeis dataset construction failed: "
                          << status.ToString();
    std::abort();
  }
}

}  // namespace

BrandeisDataset BuildBrandeisDataset() {
  BrandeisDataset data;
  data.first_term = Term(Season::kFall, 2011);
  data.last_term = Term(Season::kFall, 2015);

  for (const CourseSpec& spec : kCourses) {
    Course course;
    course.code = spec.code;
    course.title = spec.title;
    course.workload_hours = spec.workload;
    Result<expr::Expr> prereq = ParsePrerequisiteText(spec.prereq);
    CheckOk(prereq.status());
    course.prerequisites = std::move(prereq).value();
    Result<CourseId> id = data.catalog.AddCourse(std::move(course));
    CheckOk(id.status());
    (spec.core ? data.core_codes : data.elective_codes)
        .push_back(spec.code);
  }
  CheckOk(data.catalog.Finalize());

  data.schedule = OfferingSchedule(data.catalog.size());
  for (const CourseSpec& spec : kCourses) {
    Result<CourseId> id = data.catalog.FindByCode(spec.code);
    CheckOk(id.status());
    AddOfferings(&data.schedule, *id, spec.cadence, data.first_term,
                 data.last_term);
  }

  // The CS major: all 7 core courses plus any 5 electives.
  Result<std::shared_ptr<const DegreeRequirement>> major =
      DegreeRequirement::Builder(&data.catalog)
          .AddGroup("core", data.core_codes, 7)
          .AddGroup("electives", data.elective_codes, 5)
          .Build();
  CheckOk(major.status());
  data.cs_major = std::move(major).value();
  return data;
}

Term StartTermForSpan(int num_semesters) {
  assert(num_semesters >= 1);
  // A span of n semesters means n enrollment semesters before the end
  // deadline: the paper's "Fall '12 to Fall '15" period is the 6-semester
  // row (enrollments in F12, S13, F13, S14, F14, S15; deadline F15).
  return EvaluationEndTerm().Plus(-num_semesters);
}

Term EvaluationEndTerm() { return Term(Season::kFall, 2015); }

}  // namespace coursenav::data

#ifndef COURSENAV_DATA_SYNTHETIC_H_
#define COURSENAV_DATA_SYNTHETIC_H_

#include <cstdint>

#include "catalog/term.h"
#include "parsers/catalog_loader.h"
#include "util/result.h"

namespace coursenav::data {

/// Parameters of the random catalog generator used for scaling studies and
/// property tests beyond the fixed 38-course evaluation dataset.
struct SyntheticConfig {
  /// Total courses; split into `num_layers` prerequisite layers.
  int num_courses = 38;
  /// Courses in layer 0 have no prerequisites.
  int num_intro_courses = 5;
  /// Prerequisite layers; a course in layer L draws prerequisites from
  /// layers < L only, so the catalog is acyclic by construction.
  int num_layers = 4;
  /// Per non-intro course: number of conjunctive prerequisite terms
  /// (1..max). Each term is a single course or a 2-way disjunction.
  int max_prereq_terms = 2;
  /// Probability a prerequisite term is a 2-way "or".
  double or_probability = 0.3;
  /// Probability a course is offered in any given semester (intro courses
  /// are always offered every semester).
  double offering_probability = 0.6;
  /// Schedule window.
  Term first_term = Term(Season::kFall, 2011);
  Term last_term = Term(Season::kFall, 2015);
  /// Workload hours are drawn uniformly from [min, max].
  double min_workload = 5.0;
  double max_workload = 12.0;
  uint64_t seed = 42;
};

/// Generates a random — but seed-deterministic — finalized catalog and
/// schedule. Fails only on inconsistent configuration.
Result<CatalogBundle> BuildSyntheticCatalog(const SyntheticConfig& config);

}  // namespace coursenav::data

#endif  // COURSENAV_DATA_SYNTHETIC_H_

#include "data/synthetic.h"

#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace coursenav::data {

Result<CatalogBundle> BuildSyntheticCatalog(const SyntheticConfig& config) {
  if (config.num_courses < 1) {
    return Status::InvalidArgument("num_courses must be >= 1");
  }
  if (config.num_intro_courses < 1 ||
      config.num_intro_courses > config.num_courses) {
    return Status::InvalidArgument(
        "num_intro_courses must be in [1, num_courses]");
  }
  if (config.num_layers < 1) {
    return Status::InvalidArgument("num_layers must be >= 1");
  }
  if (config.max_prereq_terms < 1) {
    return Status::InvalidArgument("max_prereq_terms must be >= 1");
  }
  if (config.first_term > config.last_term) {
    return Status::InvalidArgument("schedule window is reversed");
  }

  Random rng(config.seed);
  CatalogBundle bundle;

  // Assign courses to layers: intro courses form layer 0, the rest spread
  // round-robin over layers 1..num_layers-1 (or stay in layer 0 when there
  // is only one layer).
  std::vector<int> layer_of(static_cast<size_t>(config.num_courses));
  std::vector<std::vector<int>> by_layer(
      static_cast<size_t>(config.num_layers));
  for (int i = 0; i < config.num_courses; ++i) {
    int layer = 0;
    if (i >= config.num_intro_courses && config.num_layers > 1) {
      layer = 1 + (i - config.num_intro_courses) % (config.num_layers - 1);
    }
    layer_of[static_cast<size_t>(i)] = layer;
    by_layer[static_cast<size_t>(layer)].push_back(i);
  }

  auto code_of = [](int i) { return StrFormat("SYN%03d", i); };

  for (int i = 0; i < config.num_courses; ++i) {
    Course course;
    course.code = code_of(i);
    course.title = StrFormat("Synthetic Course %d", i);
    course.workload_hours =
        config.min_workload +
        rng.UniformDouble() * (config.max_workload - config.min_workload);

    int layer = layer_of[static_cast<size_t>(i)];
    if (layer > 0) {
      // Candidate prerequisites: every course in a strictly earlier layer.
      std::vector<int> candidates;
      for (int l = 0; l < layer; ++l) {
        for (int c : by_layer[static_cast<size_t>(l)]) candidates.push_back(c);
      }
      int num_terms = rng.UniformInt(1, config.max_prereq_terms);
      std::vector<expr::Expr> conjuncts;
      for (int t = 0; t < num_terms && !candidates.empty(); ++t) {
        int a = candidates[static_cast<size_t>(
            rng.Uniform(candidates.size()))];
        if (candidates.size() >= 2 && rng.Bernoulli(config.or_probability)) {
          int b = a;
          while (b == a) {
            b = candidates[static_cast<size_t>(
                rng.Uniform(candidates.size()))];
          }
          conjuncts.push_back(expr::Expr::Or(
              {expr::Expr::Var(code_of(a)), expr::Expr::Var(code_of(b))}));
        } else {
          conjuncts.push_back(expr::Expr::Var(code_of(a)));
        }
      }
      course.prerequisites = expr::Expr::And(std::move(conjuncts));
    }
    COURSENAV_RETURN_IF_ERROR(
        bundle.catalog.AddCourse(std::move(course)).status());
  }
  COURSENAV_RETURN_IF_ERROR(bundle.catalog.Finalize());

  bundle.schedule = OfferingSchedule(bundle.catalog.size());
  for (int i = 0; i < config.num_courses; ++i) {
    bool is_intro = layer_of[static_cast<size_t>(i)] == 0;
    for (Term t = config.first_term; t <= config.last_term; t = t.Next()) {
      if (is_intro || rng.Bernoulli(config.offering_probability)) {
        COURSENAV_RETURN_IF_ERROR(
            bundle.schedule.AddOffering(static_cast<CourseId>(i), t));
      }
    }
  }
  return bundle;
}

}  // namespace coursenav::data

#include "data/transcripts.h"

#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace coursenav::data {

namespace {

/// One randomized walk. Returns the path if it reaches the goal by
/// `end_term`, or nothing (signalled via `reached`) otherwise.
LearningPath Walk(const Catalog& catalog, const OfferingSchedule& schedule,
                  const Goal& goal, const EnrollmentStatus& start,
                  Term end_term, const ExplorationOptions& options,
                  const TranscriptSimulationConfig& config, Random& rng,
                  bool* reached) {
  LearningPath path(start.term, start.completed);
  DynamicBitset completed = start.completed;
  *reached = false;

  for (Term term = start.term; term < end_term; term = term.Next()) {
    if (goal.IsSatisfied(completed)) {
      *reached = true;
      return path;
    }
    DynamicBitset electable =
        ComputeOptions(catalog, schedule, completed, term, options);
    std::vector<int> pool = electable.ToIndices();

    int load = options.max_courses_per_term;
    if (!rng.Bernoulli(config.diligence) && load > 1) {
      load = rng.UniformInt(1, load);
    }

    DynamicBitset selection(catalog.size());
    int current_left = goal.MinCoursesRemaining(completed);
    for (int slot = 0; slot < load && !pool.empty(); ++slot) {
      // Split the remaining pool into goal-advancing picks and fillers.
      std::vector<int> useful;
      for (int candidate : pool) {
        DynamicBitset with = completed;
        with |= selection;
        with.set(candidate);
        if (goal.MinCoursesRemaining(with) < current_left) {
          useful.push_back(candidate);
        }
      }
      int pick;
      if (!useful.empty() && rng.Bernoulli(config.focus)) {
        pick = useful[static_cast<size_t>(rng.Uniform(useful.size()))];
      } else {
        pick = pool[static_cast<size_t>(rng.Uniform(pool.size()))];
      }
      selection.set(pick);
      DynamicBitset with = completed;
      with |= selection;
      current_left = goal.MinCoursesRemaining(with);
      std::erase(pool, pick);
    }

    path.AppendStep(term, selection);
    completed |= selection;
  }

  *reached = goal.IsSatisfied(completed);
  return path;
}

/// Drops trailing empty steps so the path ends at the semester in which
/// the goal was first reached — the shape of the generator's goal leaves.
void TrimTrailingSkips(LearningPath* path, const Catalog& catalog,
                       const Goal& goal) {
  DynamicBitset completed = path->start_completed();
  LearningPath trimmed(path->start_term(), path->start_completed());
  for (const PathStep& step : path->steps()) {
    if (goal.IsSatisfied(completed)) break;
    trimmed.AppendStep(step.term, step.selection);
    completed |= step.selection;
  }
  (void)catalog;
  *path = std::move(trimmed);
}

}  // namespace

Result<std::vector<LearningPath>> SimulateTranscripts(
    const Catalog& catalog, const OfferingSchedule& schedule, const Goal& goal,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options,
    const TranscriptSimulationConfig& config) {
  COURSENAV_RETURN_IF_ERROR(
      ValidateExplorationInputs(catalog, schedule, start, options));
  if (end_term <= start.term) {
    return Status::InvalidArgument("end semester must be after the start");
  }
  if (config.num_students < 1) {
    return Status::InvalidArgument("num_students must be >= 1");
  }

  Random rng(config.seed);
  std::vector<LearningPath> paths;
  paths.reserve(static_cast<size_t>(config.num_students));
  for (int student = 0; student < config.num_students; ++student) {
    bool reached = false;
    LearningPath path(start.term, start.completed);
    for (int attempt = 0; attempt < config.max_attempts_per_student;
         ++attempt) {
      path = Walk(catalog, schedule, goal, start, end_term, options, config,
                  rng, &reached);
      if (reached) break;
    }
    if (!reached) {
      return Status::ResourceExhausted(StrFormat(
          "student %d found no goal-reaching walk in %d attempts", student,
          config.max_attempts_per_student));
    }
    TrimTrailingSkips(&path, catalog, goal);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace coursenav::data

#ifndef COURSENAV_DATA_TRANSCRIPTS_H_
#define COURSENAV_DATA_TRANSCRIPTS_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "graph/path.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav::data {

/// Parameters for the transcript simulator.
struct TranscriptSimulationConfig {
  /// How many student paths to produce (the paper used 83 real ones).
  int num_students = 83;
  /// Random-walk retries per student before giving up.
  int max_attempts_per_student = 500;
  /// Probability a student takes a full load (m courses) in a semester;
  /// otherwise a uniform 1..m load is drawn.
  double diligence = 0.85;
  /// Probability a picked course is goal-advancing when one is available
  /// (the rest of the time students wander into unrelated electives).
  double focus = 0.9;
  uint64_t seed = 7;
};

/// Simulates anonymized student transcripts as randomized goal-seeking
/// walks through the enrollment-status space — the stand-in for the 83
/// real Brandeis transcripts of the paper's §5.2 containment experiment.
///
/// Every returned path starts at `start`, follows the same feasibility
/// rules as the generators (offered, prerequisites satisfied, at most `m`
/// per semester, empty semesters only when nothing is electable), and
/// reaches a status satisfying `goal` no later than `end_term`. By Lemma 1
/// soundness every such path must appear in the goal-driven generator's
/// output — which is exactly what the containment bench verifies.
///
/// Fails with ResourceExhausted if fewer than `config.num_students` walks
/// reach the goal within the retry budget (a sign the scenario is
/// over-constrained).
Result<std::vector<LearningPath>> SimulateTranscripts(
    const Catalog& catalog, const OfferingSchedule& schedule, const Goal& goal,
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options,
    const TranscriptSimulationConfig& config);

}  // namespace coursenav::data

#endif  // COURSENAV_DATA_TRANSCRIPTS_H_

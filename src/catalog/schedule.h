#ifndef COURSENAV_CATALOG_SCHEDULE_H_
#define COURSENAV_CATALOG_SCHEDULE_H_

#include <map>
#include <vector>

#include "catalog/course.h"
#include "catalog/term.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav {

/// The class schedule: for each course `c_i`, the set `S_i` of semesters in
/// which it is offered.
///
/// Offerings are stored per term as course bitsets, so the generators' two
/// schedule queries — "which courses run in semester s" and "which courses
/// run at all in semesters [a, b]" — are O(1) lookups / O(terms) unions.
///
/// The schedule covers a bounded horizon (universities release schedules a
/// couple of semesters ahead; the paper's evaluation uses a fixed window
/// ending in Fall '15). Queries outside any recorded term return the empty
/// set.
class OfferingSchedule {
 public:
  /// A schedule over a catalog of `num_courses` interned courses.
  explicit OfferingSchedule(int num_courses);

  // Move-only by default (schedules are shared by reference); explicit
  // deep copies for what-if perturbation go through Clone().
  OfferingSchedule(const OfferingSchedule&) = delete;
  OfferingSchedule& operator=(const OfferingSchedule&) = delete;
  OfferingSchedule(OfferingSchedule&&) = default;
  OfferingSchedule& operator=(OfferingSchedule&&) = default;

  /// Deep copy, for perturbation analyses ("what if this offering is
  /// cancelled?").
  OfferingSchedule Clone() const;

  /// Removes one offering; no-op if it was not recorded.
  void RemoveOffering(CourseId course, Term term);

  int num_courses() const { return num_courses_; }

  /// Records that `course` is offered in `term`.
  Status AddOffering(CourseId course, Term term);

  /// Records `course` as offered every `season` semester in `[from, to]`.
  Status AddRecurring(CourseId course, Season season, Term from, Term to);

  /// True if `course` is offered in `term` (`term ∈ S_course`).
  bool IsOffered(CourseId course, Term term) const;

  /// The set of courses offered in `term` (empty set if none recorded).
  const DynamicBitset& OfferedIn(Term term) const;

  /// Union of offerings over the inclusive term range `[first, last]` —
  /// the `C_offered` set of the course-availability pruning strategy.
  DynamicBitset OfferedInRange(Term first, Term last) const;

  /// All terms in which `course` is offered, ascending.
  std::vector<Term> OfferingTerms(CourseId course) const;

  /// True if no offering has been recorded.
  bool empty() const { return by_term_.empty(); }

  /// Earliest / latest term with any recorded offering. Only meaningful when
  /// `!empty()`.
  Term first_term() const;
  Term last_term() const;

 private:
  int num_courses_;
  DynamicBitset empty_set_;
  /// term index -> offered course set. std::map keeps terms ordered for
  /// range queries and deterministic iteration.
  std::map<int, DynamicBitset> by_term_;
};

}  // namespace coursenav

#endif  // COURSENAV_CATALOG_SCHEDULE_H_

#include "catalog/schedule.h"

#include <cassert>

#include "util/fault_injection.h"

namespace coursenav {

OfferingSchedule::OfferingSchedule(int num_courses)
    : num_courses_(num_courses), empty_set_(num_courses) {
  assert(num_courses >= 0);
}

OfferingSchedule OfferingSchedule::Clone() const {
  OfferingSchedule copy(num_courses_);
  copy.by_term_ = by_term_;
  return copy;
}

void OfferingSchedule::RemoveOffering(CourseId course, Term term) {
  auto it = by_term_.find(term.index());
  if (it == by_term_.end()) return;
  it->second.reset(course);
  if (it->second.empty()) by_term_.erase(it);
}

Status OfferingSchedule::AddOffering(CourseId course, Term term) {
  if (course < 0 || course >= num_courses_) {
    return Status::InvalidArgument("course id out of range");
  }
  auto [it, inserted] =
      by_term_.try_emplace(term.index(), num_courses_);
  it->second.set(course);
  return Status::OK();
}

Status OfferingSchedule::AddRecurring(CourseId course, Season season,
                                      Term from, Term to) {
  if (from > to) {
    return Status::InvalidArgument("recurring range is reversed");
  }
  for (Term t = from; t <= to; t = t.Next()) {
    if (t.season() == season) {
      COURSENAV_RETURN_IF_ERROR(AddOffering(course, t));
    }
  }
  return Status::OK();
}

bool OfferingSchedule::IsOffered(CourseId course, Term term) const {
  auto it = by_term_.find(term.index());
  if (it == by_term_.end()) return false;
  return it->second.test(course);
}

const DynamicBitset& OfferingSchedule::OfferedIn(Term term) const {
  auto it = by_term_.find(term.index());
  if (it == by_term_.end()) return empty_set_;
  // Fault seam: simulated registrar churn. When the schedule/churn site
  // fires, this read observes the term's offerings with one deterministic
  // course withdrawn — the mid-session "offering cancelled" race the chaos
  // tests exercise. Readers must stay correct under inconsistent reads.
  if (FaultInjector* injector = ActiveFaultInjector();
      injector != nullptr &&
      injector->ShouldInject(kFaultSiteScheduleChurn)) {
    int offered = it->second.count();
    if (offered > 0) {
      // The returned reference points at per-thread scratch so concurrent
      // chaos runs (parallel workers, each drawing their own churn) never
      // race on the perturbed set.
      static thread_local DynamicBitset churn_scratch(0);
      churn_scratch = it->second;
      int drop = static_cast<int>(
          injector->Draw(kFaultSiteScheduleChurn) %
          static_cast<uint64_t>(offered));
      int seen = 0;
      churn_scratch.ForEach([&](int id) {
        if (seen++ == drop) churn_scratch.reset(id);
      });
      return churn_scratch;
    }
  }
  return it->second;
}

DynamicBitset OfferingSchedule::OfferedInRange(Term first, Term last) const {
  DynamicBitset out(num_courses_);
  if (first > last) return out;
  for (auto it = by_term_.lower_bound(first.index());
       it != by_term_.end() && it->first <= last.index(); ++it) {
    out |= it->second;
  }
  return out;
}

std::vector<Term> OfferingSchedule::OfferingTerms(CourseId course) const {
  std::vector<Term> out;
  for (const auto& [term_index, offered] : by_term_) {
    if (offered.test(course)) out.push_back(Term::FromIndex(term_index));
  }
  return out;
}

Term OfferingSchedule::first_term() const {
  assert(!by_term_.empty());
  return Term::FromIndex(by_term_.begin()->first);
}

Term OfferingSchedule::last_term() const {
  assert(!by_term_.empty());
  return Term::FromIndex(by_term_.rbegin()->first);
}

}  // namespace coursenav

#include "catalog/schedule_history.h"

namespace coursenav {

void ScheduleHistory::AddRecord(CourseId course, Term term) {
  years_.insert(term.year());
  offered_years_[{course, term.season()}].insert(term.year());
}

void ScheduleHistory::ImportSchedule(const OfferingSchedule& schedule) {
  for (CourseId c = 0; c < schedule.num_courses(); ++c) {
    for (Term t : schedule.OfferingTerms(c)) AddRecord(c, t);
  }
}

double ScheduleHistory::FrequencyInSeason(CourseId course, Season season,
                                          double fallback) const {
  if (years_.empty()) return fallback;
  auto it = offered_years_.find({course, season});
  int offered = it == offered_years_.end()
                    ? 0
                    : static_cast<int>(it->second.size());
  return static_cast<double>(offered) / static_cast<double>(years_.size());
}

OfferingProbabilityModel::OfferingProbabilityModel(
    const OfferingSchedule* schedule, Term release_end,
    ScheduleHistory history, double default_prob)
    : schedule_(schedule),
      release_end_(release_end),
      history_(std::move(history)),
      default_prob_(default_prob) {}

double OfferingProbabilityModel::Probability(CourseId course,
                                             Term term) const {
  if (term <= release_end_) {
    return schedule_->IsOffered(course, term) ? 1.0 : 0.0;
  }
  if (history_.ObservedYears() == 0) return default_prob_;
  return history_.FrequencyInSeason(course, term.season(), default_prob_);
}

}  // namespace coursenav

#ifndef COURSENAV_CATALOG_CATALOG_H_
#define COURSENAV_CATALOG_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/course.h"
#include "expr/compiled_expr.h"
#include "util/bitset.h"
#include "util/result.h"

namespace coursenav {

/// The set of courses `C` offered to students, with interned ids and
/// compiled prerequisite programs.
///
/// Usage: add courses, then call `Finalize()` once. Finalization validates
/// the catalog (unique codes were enforced at insertion; prerequisite
/// references must resolve; the prerequisite dependency graph must be
/// acyclic) and compiles each `Q_i` for bitset evaluation. Generators only
/// accept finalized catalogs.
class Catalog {
 public:
  Catalog() = default;

  // Catalogs are heavyweight and referenced by pointer everywhere; moving is
  // allowed for construction pipelines, copying is not.
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Interns `course`. Fails if the code is empty, duplicated, or the
  /// workload is negative, or the catalog is already finalized.
  Result<CourseId> AddCourse(Course course);

  /// Validates and compiles. Idempotent on success.
  Status Finalize();

  bool finalized() const { return finalized_; }

  /// Number of interned courses.
  int size() const { return static_cast<int>(courses_.size()); }

  /// The course record for `id`; `id` must be valid.
  const Course& course(CourseId id) const {
    return courses_[static_cast<size_t>(id)];
  }

  /// Looks up a course by registrar code.
  Result<CourseId> FindByCode(std::string_view code) const;

  /// Compiled prerequisite program for `id`; catalog must be finalized.
  const expr::CompiledExpr& compiled_prereq(CourseId id) const {
    return compiled_prereqs_[static_cast<size_t>(id)];
  }

  /// A resolver mapping course codes to ids, for compiling goal/constraint
  /// expressions against this catalog.
  expr::VarResolver MakeResolver() const;

  /// An empty course set sized to this catalog.
  DynamicBitset NewCourseSet() const { return DynamicBitset(size()); }

  /// Builds a course set from codes; fails on any unknown code.
  Result<DynamicBitset> CourseSetFromCodes(
      const std::vector<std::string>& codes) const;

  /// Renders a course set as sorted codes, e.g. "{COSI11A, COSI21A}".
  std::string CourseSetToString(const DynamicBitset& set) const;

 private:
  /// Rejects cycles in the prerequisite dependency graph (course -> each
  /// course referenced by its `Q_i`). A cyclic catalog makes no semester
  /// reachable and is always registrar data corruption.
  Status CheckAcyclic() const;

  bool finalized_ = false;
  std::vector<Course> courses_;
  std::vector<expr::CompiledExpr> compiled_prereqs_;
  std::unordered_map<std::string, CourseId> code_to_id_;
};

}  // namespace coursenav

#endif  // COURSENAV_CATALOG_CATALOG_H_

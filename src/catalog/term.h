#ifndef COURSENAV_CATALOG_TERM_H_
#define COURSENAV_CATALOG_TERM_H_

#include <compare>
#include <string>
#include <string_view>

#include "util/result.h"

namespace coursenav {

/// Academic season of a term. The paper's calendar (and therefore ours) is a
/// two-season Fall/Spring year: the successor of Fall Y is Spring Y+1 and
/// the successor of Spring Y is Fall Y, matching the `s_{i+1} = s_i + 1`
/// transition semantics of the learning graph.
enum class Season { kSpring = 0, kFall = 1 };

std::string_view SeasonToString(Season season);

/// A semester, e.g. "Fall 2011", with integer arithmetic.
///
/// Internally a `Term` is a single linear index (`2*year + season offset`),
/// so `term + k` advances k semesters and `b - a` counts semesters between
/// two terms — the `(d - s_i - 1)` arithmetic of Equation 1.
class Term {
 public:
  /// Default: Spring of year 0; a sentinel that compares before any real
  /// term.
  Term() : index_(0) {}

  Term(Season season, int year);

  /// Parses "Fall 2011", "Fall '11", "fall 11", "F11", "S2012",
  /// "Fall2011". Two-digit years are 20xx.
  static Result<Term> Parse(std::string_view text);

  /// Builds a term directly from its linear index (inverse of `index()`).
  static Term FromIndex(int index);

  Season season() const {
    return index_ % 2 == 0 ? Season::kSpring : Season::kFall;
  }
  /// Calendar year of the term.
  int year() const { return index_ / 2; }

  /// Linear semester index; consecutive semesters differ by 1.
  int index() const { return index_; }

  /// The term `k` semesters later (or earlier for negative `k`).
  Term Plus(int k) const { return FromIndex(index_ + k); }
  Term Next() const { return Plus(1); }
  Term Prev() const { return Plus(-1); }

  friend Term operator+(Term t, int k) { return t.Plus(k); }
  /// Number of semesters from `b` to `a` (positive when `a` is later).
  friend int operator-(Term a, Term b) { return a.index_ - b.index_; }

  friend auto operator<=>(const Term&, const Term&) = default;

  /// "Fall 2011".
  std::string ToString() const;
  /// "F11" (two-digit year).
  std::string ToShortString() const;

 private:
  explicit Term(int index) : index_(index) {}

  int index_;
};

}  // namespace coursenav

#endif  // COURSENAV_CATALOG_TERM_H_

#include "catalog/term.h"

#include <cctype>

#include "util/string_util.h"

namespace coursenav {

std::string_view SeasonToString(Season season) {
  return season == Season::kFall ? "Fall" : "Spring";
}

Term::Term(Season season, int year)
    : index_(year * 2 + (season == Season::kFall ? 1 : 0)) {}

Term Term::FromIndex(int index) { return Term(index); }

namespace {

Result<int> ParseYear(std::string_view digits) {
  COURSENAV_ASSIGN_OR_RETURN(int64_t year, ParseInt(digits));
  if (year < 0) return Status::ParseError("negative year");
  // Two-digit years are interpreted as 20xx ("Fall '11" == Fall 2011).
  if (year < 100) year += 2000;
  if (year > 9999) return Status::ParseError("year out of range");
  return static_cast<int>(year);
}

}  // namespace

Result<Term> Term::Parse(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return Status::ParseError("empty term");

  // Split into a leading alphabetic season part and a trailing year part,
  // tolerating separators (space, apostrophe).
  size_t pos = 0;
  while (pos < trimmed.size() &&
         std::isalpha(static_cast<unsigned char>(trimmed[pos]))) {
    ++pos;
  }
  std::string_view season_text = trimmed.substr(0, pos);
  std::string_view rest = trimmed.substr(pos);
  while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\'')) {
    rest.remove_prefix(1);
  }

  Season season;
  if (EqualsIgnoreCase(season_text, "fall") ||
      EqualsIgnoreCase(season_text, "f") ||
      EqualsIgnoreCase(season_text, "autumn")) {
    season = Season::kFall;
  } else if (EqualsIgnoreCase(season_text, "spring") ||
             EqualsIgnoreCase(season_text, "s")) {
    season = Season::kSpring;
  } else {
    return Status::ParseError("unknown season in term '" + std::string(text) +
                              "'");
  }

  Result<int> year = ParseYear(rest);
  if (!year.ok()) {
    return Status::ParseError("bad year in term '" + std::string(text) +
                              "': " + year.status().message());
  }
  return Term(season, *year);
}

std::string Term::ToString() const {
  return std::string(SeasonToString(season())) + " " + std::to_string(year());
}

std::string Term::ToShortString() const {
  char season_char = season() == Season::kFall ? 'F' : 'S';
  int yy = year() % 100;
  return StrFormat("%c%02d", season_char, yy);
}

}  // namespace coursenav

#ifndef COURSENAV_CATALOG_COURSE_H_
#define COURSENAV_CATALOG_COURSE_H_

#include <cstdint>
#include <string>

#include "expr/expr.h"

namespace coursenav {

/// Dense identifier a `Catalog` assigns to each interned course. Ids are
/// contiguous in `[0, catalog.size())`, which lets every course set in the
/// system be a bitset.
using CourseId = int32_t;

inline constexpr CourseId kInvalidCourseId = -1;

/// Registrar-provided description of one course `c_i ∈ C`.
///
/// `prerequisites` is the paper's condition `Q_i`, a boolean expression over
/// course codes; `workload_hours` is `w(c_i)`, the estimated weekly study
/// hours used by workload-based ranking. The offering schedule `S_i` lives
/// separately in `OfferingSchedule` (see schedule.h), mirroring the paper's
/// split between course info and class schedule.
struct Course {
  /// Registrar code, unique within a catalog, e.g. "COSI11A".
  std::string code;
  /// Human-readable title.
  std::string title;
  /// Estimated weekly study hours, `w(c_i)`. Must be >= 0.
  double workload_hours = 0.0;
  /// Prerequisite condition `Q_i`. Defaults to `true` (no prerequisites).
  expr::Expr prerequisites;
};

}  // namespace coursenav

#endif  // COURSENAV_CATALOG_COURSE_H_

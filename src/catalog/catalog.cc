#include "catalog/catalog.h"

#include <set>

#include "util/string_util.h"

namespace coursenav {

Result<CourseId> Catalog::AddCourse(Course course) {
  if (finalized_) {
    return Status::FailedPrecondition("catalog is finalized");
  }
  if (course.code.empty()) {
    return Status::InvalidArgument("course code must not be empty");
  }
  if (course.workload_hours < 0) {
    return Status::InvalidArgument("course '" + course.code +
                                   "' has negative workload");
  }
  if (code_to_id_.contains(course.code)) {
    return Status::InvalidArgument("duplicate course code '" + course.code +
                                   "'");
  }
  CourseId id = static_cast<CourseId>(courses_.size());
  code_to_id_.emplace(course.code, id);
  courses_.push_back(std::move(course));
  return id;
}

Result<CourseId> Catalog::FindByCode(std::string_view code) const {
  auto it = code_to_id_.find(std::string(code));
  if (it == code_to_id_.end()) {
    return Status::NotFound("unknown course code '" + std::string(code) +
                            "'");
  }
  return it->second;
}

expr::VarResolver Catalog::MakeResolver() const {
  return [this](std::string_view code) -> Result<int> {
    COURSENAV_ASSIGN_OR_RETURN(CourseId id, FindByCode(code));
    return static_cast<int>(id);
  };
}

Status Catalog::CheckAcyclic() const {
  // Iterative three-color DFS over the "references" graph.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(courses_.size(), Color::kWhite);
  std::vector<std::vector<CourseId>> deps(courses_.size());
  for (size_t i = 0; i < courses_.size(); ++i) {
    std::set<std::string> vars;
    courses_[i].prerequisites.CollectVars(&vars);
    for (const std::string& var : vars) {
      auto it = code_to_id_.find(var);
      if (it != code_to_id_.end()) deps[i].push_back(it->second);
    }
  }
  for (size_t root = 0; root < courses_.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (node, next dependency index to visit).
    std::vector<std::pair<CourseId, size_t>> stack;
    stack.emplace_back(static_cast<CourseId>(root), 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& node_deps = deps[static_cast<size_t>(node)];
      if (next < node_deps.size()) {
        CourseId dep = node_deps[next++];
        if (color[static_cast<size_t>(dep)] == Color::kGray) {
          return Status::FailedPrecondition(
              "prerequisite cycle involving course '" +
              courses_[static_cast<size_t>(dep)].code + "'");
        }
        if (color[static_cast<size_t>(dep)] == Color::kWhite) {
          color[static_cast<size_t>(dep)] = Color::kGray;
          stack.emplace_back(dep, 0);
        }
      } else {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

Status Catalog::Finalize() {
  if (finalized_) return Status::OK();

  expr::VarResolver resolver = MakeResolver();
  std::vector<expr::CompiledExpr> compiled;
  compiled.reserve(courses_.size());
  for (const Course& course : courses_) {
    Result<expr::CompiledExpr> program =
        expr::CompiledExpr::Compile(course.prerequisites, resolver);
    if (!program.ok()) {
      return Status::FailedPrecondition(
          "course '" + course.code +
          "': " + program.status().message());
    }
    compiled.push_back(std::move(program).value());
  }

  COURSENAV_RETURN_IF_ERROR(CheckAcyclic());

  compiled_prereqs_ = std::move(compiled);
  finalized_ = true;
  return Status::OK();
}

Result<DynamicBitset> Catalog::CourseSetFromCodes(
    const std::vector<std::string>& codes) const {
  DynamicBitset out = NewCourseSet();
  for (const std::string& code : codes) {
    COURSENAV_ASSIGN_OR_RETURN(CourseId id, FindByCode(code));
    out.set(id);
  }
  return out;
}

std::string Catalog::CourseSetToString(const DynamicBitset& set) const {
  std::string out = "{";
  bool first = true;
  set.ForEach([&](int id) {
    if (!first) out += ", ";
    out += courses_[static_cast<size_t>(id)].code;
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace coursenav

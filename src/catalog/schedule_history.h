#ifndef COURSENAV_CATALOG_SCHEDULE_HISTORY_H_
#define COURSENAV_CATALOG_SCHEDULE_HISTORY_H_

#include <map>
#include <set>
#include <vector>

#include "catalog/course.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "util/result.h"

namespace coursenav {

/// Historical offering records used to estimate `prob(c_i, s)`, the
/// probability that course `c_i` is offered in semester `s` (Section 4.3.1,
/// reliability-based ranking).
///
/// The estimator is the paper's: for a season (Fall/Spring), the fraction of
/// observed academic years in which the course ran in that season.
class ScheduleHistory {
 public:
  ScheduleHistory() = default;

  /// Records that `course` ran in `term` in some past year.
  void AddRecord(CourseId course, Term term);

  /// Imports every offering of `schedule` as historical records.
  void ImportSchedule(const OfferingSchedule& schedule);

  /// Number of distinct calendar years observed (over all records).
  int ObservedYears() const { return static_cast<int>(years_.size()); }

  /// Fraction of observed years in which `course` ran in `season`.
  /// Returns `fallback` when no year has been observed at all.
  double FrequencyInSeason(CourseId course, Season season,
                           double fallback = 0.0) const;

 private:
  std::set<int> years_;
  /// (course, season) -> set of years offered.
  std::map<std::pair<CourseId, Season>, std::set<int>> offered_years_;
};

/// The reliability model `prob(c_i, s)` combining a released schedule with
/// historical frequencies.
///
/// Universities publish final schedules only one or two semesters ahead:
/// within the release horizon the probability is exactly 1.0 (offered) or
/// 0.0 (not offered); beyond it, the historical per-season frequency is
/// used.
class OfferingProbabilityModel {
 public:
  /// `schedule` must outlive the model. `release_end` is the last term whose
  /// schedule is final. `default_prob` is used for courses with no history.
  OfferingProbabilityModel(const OfferingSchedule* schedule, Term release_end,
                           ScheduleHistory history,
                           double default_prob = 0.5);

  /// P[course offered in term].
  double Probability(CourseId course, Term term) const;

  Term release_end() const { return release_end_; }

 private:
  const OfferingSchedule* schedule_;
  Term release_end_;
  ScheduleHistory history_;
  double default_prob_;
};

}  // namespace coursenav

#endif  // COURSENAV_CATALOG_SCHEDULE_HISTORY_H_

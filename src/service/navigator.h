#ifndef COURSENAV_SERVICE_NAVIGATOR_H_
#define COURSENAV_SERVICE_NAVIGATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/counting.h"
#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "core/options.h"
#include "core/pruning.h"
#include "core/ranked_generator.h"
#include "core/ranking.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// The exploration task type (Section 4's three algorithm families).
enum class TaskType { kDeadlineDriven, kGoalDriven, kRanked };

/// A complete exploration request — the paper's front-end parameters
/// (Figure 2): enrollment status, goal, constraints, and ranking.
struct ExplorationRequest {
  /// Current enrollment status (semester + completed courses).
  EnrollmentStatus start;
  /// The end semester `d`.
  Term end_term;
  TaskType type = TaskType::kDeadlineDriven;
  /// Required for kGoalDriven and kRanked.
  std::shared_ptr<const Goal> goal;
  /// Required for kRanked.
  std::shared_ptr<const RankingFunction> ranking;
  /// Number of top paths for kRanked.
  int top_k = 10;
  /// Student constraints (max load, avoided courses, budgets).
  ExplorationOptions options;
  /// Pruning configuration for goal-driven and ranked tasks.
  GoalDrivenConfig config;
};

/// The union of the three generators' outputs; exactly one member is
/// populated, matching the request's task type.
struct ExplorationResponse {
  std::optional<GenerationResult> generation;  // deadline- or goal-driven
  std::optional<RankedResult> ranked;          // ranked top-k
};

/// The CourseNavigator service facade: wires a registrar dataset (catalog +
/// class schedule) to the Learning Path Generator and exposes the
/// exploration entry points (Figure 2's system model).
///
/// The catalog and schedule are borrowed and must outlive the navigator.
class CourseNavigator {
 public:
  CourseNavigator(const Catalog* catalog, const OfferingSchedule* schedule)
      : catalog_(catalog), schedule_(schedule) {}

  /// Dispatches on `request.type`. Fails on inconsistent requests (missing
  /// goal/ranking, bad window, foreign course sets).
  Result<ExplorationResponse> Explore(const ExplorationRequest& request) const;

  /// Convenience wrappers over Explore().
  Result<GenerationResult> ExploreDeadline(
      const EnrollmentStatus& start, Term end_term,
      const ExplorationOptions& options) const;
  Result<GenerationResult> ExploreGoal(const EnrollmentStatus& start,
                                       Term end_term, const Goal& goal,
                                       const ExplorationOptions& options,
                                       const GoalDrivenConfig& config = {})
      const;
  Result<RankedResult> ExploreTopK(const EnrollmentStatus& start,
                                   Term end_term, const Goal& goal,
                                   const RankingFunction& ranking, int k,
                                   const ExplorationOptions& options,
                                   const GoalDrivenConfig& config = {}) const;

  /// Path counting without materialization (extension; see core/counting.h).
  Result<CountingResult> CountDeadline(const EnrollmentStatus& start,
                                       Term end_term,
                                       const ExplorationOptions& options)
      const;
  Result<CountingResult> CountGoal(const EnrollmentStatus& start,
                                   Term end_term, const Goal& goal,
                                   const ExplorationOptions& options,
                                   const GoalDrivenConfig& config = {}) const;

  const Catalog& catalog() const { return *catalog_; }
  const OfferingSchedule& schedule() const { return *schedule_; }

 private:
  const Catalog* catalog_;
  const OfferingSchedule* schedule_;
};

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_NAVIGATOR_H_

#ifndef COURSENAV_SERVICE_NAVIGATOR_H_
#define COURSENAV_SERVICE_NAVIGATOR_H_

#include "cache/request_cache.h"
#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/counting.h"
#include "core/options.h"
#include "core/pruning.h"
#include "core/ranked_generator.h"
#include "core/ranking.h"
// ExplorationRequest / ExplorationResponse / TaskType live in the plan
// layer (plan/request.h, namespace coursenav) — the service facade is a
// thin shell over the planner/executor pipeline.
#include "plan/request.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// The CourseNavigator service facade: wires a registrar dataset (catalog +
/// class schedule) to the Learning Path Generator and exposes the
/// exploration entry points (Figure 2's system model). Requests are lowered
/// and run by the plan layer (`plan::Planner` / `plan::Executor`).
///
/// The catalog and schedule are borrowed and must outlive the navigator.
class CourseNavigator {
 public:
  CourseNavigator(const Catalog* catalog, const OfferingSchedule* schedule)
      : catalog_(catalog), schedule_(schedule) {}

  /// Routes Explore() through `cache` (typically
  /// cache::RequestCache::Global()): plans and complete canonical results
  /// are reused across requests, sessions, and serve workers of the same
  /// catalog epoch. Pass nullptr to detach. The cached path returns
  /// byte-identical responses (docs/caching.md), so enabling the cache is
  /// purely an operational decision. The cache must outlive the navigator.
  void EnableCache(cache::RequestCache* cache) { cache_ = cache; }
  bool cache_enabled() const { return cache_ != nullptr; }

  /// Lowers `request` into a plan and executes it. Fails on inconsistent
  /// requests (missing goal/ranking, bad window, foreign course sets).
  /// `outcome` (optional) reports how the cache participated —
  /// kDisabled when no cache is wired.
  Result<ExplorationResponse> Explore(const ExplorationRequest& request,
                                      cache::CacheOutcome* outcome = nullptr)
      const;

  /// Convenience wrappers over Explore().
  Result<GenerationResult> ExploreDeadline(
      const EnrollmentStatus& start, Term end_term,
      const ExplorationOptions& options) const;
  Result<GenerationResult> ExploreGoal(const EnrollmentStatus& start,
                                       Term end_term, const Goal& goal,
                                       const ExplorationOptions& options,
                                       const GoalDrivenConfig& config = {})
      const;
  Result<RankedResult> ExploreTopK(const EnrollmentStatus& start,
                                   Term end_term, const Goal& goal,
                                   const RankingFunction& ranking, int k,
                                   const ExplorationOptions& options,
                                   const GoalDrivenConfig& config = {}) const;

  /// Path counting without materialization (extension; see core/counting.h).
  Result<CountingResult> CountDeadline(const EnrollmentStatus& start,
                                       Term end_term,
                                       const ExplorationOptions& options)
      const;
  Result<CountingResult> CountGoal(const EnrollmentStatus& start,
                                   Term end_term, const Goal& goal,
                                   const ExplorationOptions& options,
                                   const GoalDrivenConfig& config = {}) const;

  const Catalog& catalog() const { return *catalog_; }
  const OfferingSchedule& schedule() const { return *schedule_; }

 private:
  const Catalog* catalog_;
  const OfferingSchedule* schedule_;
  cache::RequestCache* cache_ = nullptr;
};

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_NAVIGATOR_H_

#ifndef COURSENAV_SERVICE_SESSION_H_
#define COURSENAV_SERVICE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "core/counting.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "core/ranked_generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "requirements/goal.h"
#include "service/degradation.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace coursenav {

/// Path-count impact of electing one candidate selection next semester.
struct SelectionImpact {
  DynamicBitset selection;
  /// Goal paths that remain if the student elects this selection now.
  uint64_t surviving_goal_paths = 0;
};

/// A stateful interactive exploration — the conversational loop the
/// paper's front end drives (Figure 2): the student commits or undoes
/// semester selections, tweaks constraints, and re-asks "what are my
/// options / how many futures remain / what are the best plans" after
/// every move. Queries are answered from the same generators the batch
/// API uses; goal-path counts are served from the process-wide
/// epoch-keyed request cache (cache::RequestCache::Global()), so counts
/// computed by one session — or by the serving layer — are reused by
/// every other session of the same catalog epoch. Mutations need no
/// explicit invalidation: they change the enrollment status, which is
/// part of the cache key.
///
/// The catalog, schedule and goal must outlive the session.
class ExplorationSession {
 public:
  ExplorationSession(const Catalog* catalog, const OfferingSchedule* schedule,
                     std::shared_ptr<const Goal> goal,
                     EnrollmentStatus initial, Term deadline,
                     ExplorationOptions options = {});

  // ------------------------------------------------------------- state

  const EnrollmentStatus& status() const { return current_; }
  Term deadline() const { return deadline_; }
  const ExplorationOptions& options() const { return options_; }

  /// The token every query this session runs observes. Calling
  /// RequestCancel() on it (typically from another thread) stops an
  /// in-flight query within one node expansion; the query returns a
  /// Cancelled status/termination and the session stays usable after
  /// ResetCancellation().
  CancellationToken cancel_token() const { return options_.cancel; }

  /// Re-arms the cancel token after a cancelled query.
  void ResetCancellation() { options_.cancel.Reset(); }

  // ----------------------------------------------------- observability

  /// Installs a tracer for this session: every subsequent query emits a
  /// `session/query` span (with the generators' spans nested beneath it)
  /// into it. Pass nullptr to detach. The tracer must outlive the session
  /// or a later SetTracer(nullptr). Affects queries made on the calling
  /// thread; the tracer itself is thread-safe.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Per-session interaction metrics: `session_commits_total`,
  /// `session_undos_total`, `session_queries_total`, and the goal-path
  /// cache hit/miss counters, now reporting this session's hits and
  /// misses against the shared count cache (see docs/observability.md,
  /// docs/caching.md).
  const obs::MetricRegistry& metrics() const { return registry_; }

  /// Semesters already committed in this session, oldest first.
  const std::vector<PathStep>& history() const { return history_; }

  // --------------------------------------------------------- mutations

  /// Commits a selection for the current semester and advances time.
  /// The selection must be electable: offered now, prerequisites met, not
  /// completed, within the load limit, not avoided. An empty list is a
  /// skip.
  Status Commit(const std::vector<std::string>& codes);

  /// Reverts the most recent Commit. Fails when there is none.
  Status Undo();

  /// Adjusts the per-semester load limit (>= 1).
  Status SetMaxLoad(int max_courses_per_term);

  /// Adds / removes a course from the avoided set. Avoiding an
  /// already-completed course fails.
  Status Avoid(const std::string& code);
  Status Unavoid(const std::string& code);

  /// Moves the deadline; must stay after the current semester.
  Status SetDeadline(Term deadline);

  /// Replaces the per-query resource budgets.
  void SetLimits(const ExplorationLimits& limits);

  // ----------------------------------------------------------- queries

  /// True if the goal already holds.
  bool GoalReached() const;

  /// The option set Y for the current status.
  DynamicBitset CurrentOptions() const;

  /// Number of goal paths from the current status (DAG-counted; cached).
  Result<uint64_t> RemainingGoalPaths();

  /// Best k plans from here under `ranking`.
  Result<RankedResult> TopK(const RankingFunction& ranking, int k) const;

  /// Best k plans with graceful degradation: instead of failing on a
  /// budget, retries down the ladder (smaller k, then count-only) and
  /// returns whatever survived, annotated with the DegradationReport.
  Result<DegradedResponse> TopKDegraded(const RankingFunction& ranking,
                                        int k,
                                        const DegradationPolicy& policy = {})
      const;

  /// Goal-driven exploration from the current status with graceful
  /// degradation (full graph → aggressive pruning → count-only).
  Result<DegradedResponse> ExploreDegraded(
      const DegradationPolicy& policy = {}) const;

  /// Ranks every electable selection for the current semester by how many
  /// goal paths survive it, descending. Selections that kill the goal
  /// entirely are included with zero. At most `max_candidates` selections
  /// are evaluated (largest option sets first would explode otherwise).
  Result<std::vector<SelectionImpact>> EvaluateSelections(
      int max_candidates = 256);

 private:
  /// Counts goal paths from `start` through the process-wide count cache
  /// and folds the shared outcome into this session's hit/miss counters.
  Result<uint64_t> CountThroughCache(const EnrollmentStatus& start);

  const Catalog* catalog_;
  const OfferingSchedule* schedule_;
  std::shared_ptr<const Goal> goal_;
  EnrollmentStatus current_;
  Term deadline_;
  ExplorationOptions options_;
  std::vector<PathStep> history_;

  obs::Tracer* tracer_ = nullptr;
  mutable obs::MetricRegistry registry_;
  // Interned once in the constructor; queries bump them lock-free.
  obs::Counter* commits_;
  obs::Counter* undos_;
  obs::Counter* queries_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
};

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_SESSION_H_

#ifndef COURSENAV_SERVICE_DEGRADATION_H_
#define COURSENAV_SERVICE_DEGRADATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.h"
#include "service/navigator.h"
#include "util/json.h"
#include "util/result.h"

namespace coursenav {

/// The graceful-degradation ladder: each level trades answer fidelity for
/// survival under a budget. Rungs are tried top to bottom until one
/// completes inside its slice of the request's budget.
enum class DegradationLevel {
  /// The request exactly as posed.
  kFull = 0,
  /// Same task with every pruning strategy forced on (and, optionally, a
  /// tighter node cap): the cheapest run that still materializes the same
  /// answer set for pruning-correct goals.
  kAggressivePruning = 1,
  /// Ranked top-k with a reduced k: a handful of best plans instead of the
  /// full graph. Requires a goal and a ranking.
  kRankedSmallK = 2,
  /// DAG-memoized path counting only: "how many futures remain" without
  /// materializing any of them — the cheapest nonempty answer.
  kCountOnly = 3,
};

std::string_view DegradationLevelName(DegradationLevel level);

/// Tuning for ExploreWithDegradation.
struct DegradationPolicy {
  /// Rungs to try, in order. Empty = the default ladder for the request's
  /// task type (see DefaultLadder).
  std::vector<DegradationLevel> ladder;

  /// Fraction of the *remaining* time budget granted to each rung except
  /// the last, which gets everything left. 0.5 means: full request gets
  /// half the deadline, the first fallback half of what remains, and so
  /// on — the ladder as a whole never exceeds the caller's deadline.
  double time_fraction = 0.5;

  /// k used by the kRankedSmallK rung (never more than the request's k).
  int degraded_top_k = 3;

  /// Node cap for degraded (non-kFull) materializing rungs; 0 = inherit
  /// the request's limit.
  int64_t degraded_max_nodes = 0;

  /// Distinct-status cap for the kCountOnly rung; 0 = inherit. Counting
  /// memoizes statuses rather than materializing nodes, so it usually
  /// deserves a far larger cap than the graph rungs.
  int64_t count_max_nodes = 0;
};

/// What happened on one rung of the ladder.
struct DegradationRung {
  DegradationLevel level = DegradationLevel::kFull;
  /// True when the rung was actually run (false: inapplicable or no budget
  /// remained for it).
  bool attempted = false;
  /// OK when this rung served the response; otherwise why it fell.
  Status outcome;
  /// Wall-clock seconds this rung was granted and consumed.
  double seconds_budget = 0.0;
  double seconds_spent = 0.0;
  /// Graph nodes (or distinct counted statuses) the rung produced.
  int64_t nodes_created = 0;
};

/// The annotation a degraded response carries instead of a bare error:
/// which level finally answered, and what every higher rung cost before it
/// fell.
struct DegradationReport {
  /// The level whose answer is in the response. When `exhausted` is true,
  /// this is the level that produced the best partial answer instead.
  DegradationLevel level_served = DegradationLevel::kFull;
  /// True when the response is anything less than the full request.
  bool degraded = false;
  /// True when no rung completed: the response holds the best partial
  /// answer the ladder salvaged (a truncated graph or partial top-k).
  bool exhausted = false;
  std::vector<DegradationRung> rungs;

  std::string ToString() const;

  /// Structured form for the JSON exporter (`--stats-format=json`, trace
  /// attachments, service responses). Round-trips through FromJson.
  JsonValue ToJson() const;

  /// Parses a report serialized by ToJson; InvalidArgument/ParseError on
  /// malformed input.
  static Result<DegradationReport> FromJson(const JsonValue& json);
};

/// Parses the canonical rung-level name ("full", "aggressive-pruning",
/// "ranked-small-k", "count-only") back to the enum.
Result<DegradationLevel> ParseDegradationLevel(std::string_view name);

/// A response that survived the ladder. Exactly one payload is populated:
/// `response.generation` / `response.ranked` for materializing rungs, or
/// `count` for the kCountOnly rung. When `report.exhausted` is set the
/// populated payload is partial (budget-truncated) rather than complete.
struct DegradedResponse {
  ExplorationResponse response;
  std::optional<CountingResult> count;
  DegradationReport report;
};

/// The default ladder for a task type: deadline-driven requests fall back
/// to counting; goal-driven insert an aggressive-pruning retry; ranked
/// retry with a smaller k first.
std::vector<DegradationLevel> DefaultLadder(TaskType type);

/// Explore with graceful degradation: runs `request` down the ladder,
/// splitting the request's time budget across rungs per `policy`, and
/// returns the first rung's complete answer — or, when every rung falls,
/// the best partial answer — always annotated with a DegradationReport.
///
/// Only budget verdicts (ResourceExhausted, DeadlineExceeded) trigger
/// descent. Cancellation and request errors (bad goal, bad window...)
/// propagate immediately as bare Status — degrading a cancelled or
/// malformed request would answer a question nobody is asking.
Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    const DegradationPolicy& policy = {});

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_DEGRADATION_H_

#ifndef COURSENAV_SERVICE_DEGRADATION_H_
#define COURSENAV_SERVICE_DEGRADATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.h"
#include "service/navigator.h"
#include "util/json.h"
#include "util/result.h"

namespace coursenav {

// DegradationLevel, DegradationPolicy, DegradationLevelName, and
// ParseDegradationLevel live in plan/request.h (re-exported through
// service/navigator.h): a degradation policy is part of a declarative
// ExplorationRequest, and each rung is a plan rewrite
// (plan::RewriteForDegradation). This header keeps the ladder *driver* —
// the budget-slicing loop and its report.

/// What happened on one rung of the ladder.
struct DegradationRung {
  DegradationLevel level = DegradationLevel::kFull;
  /// True when the rung was actually run (false: inapplicable or no budget
  /// remained for it).
  bool attempted = false;
  /// OK when this rung served the response; otherwise why it fell.
  Status outcome;
  /// Wall-clock seconds this rung was granted and consumed.
  double seconds_budget = 0.0;
  double seconds_spent = 0.0;
  /// Graph nodes (or distinct counted statuses) the rung produced.
  int64_t nodes_created = 0;
};

/// The annotation a degraded response carries instead of a bare error:
/// which level finally answered, and what every higher rung cost before it
/// fell.
struct DegradationReport {
  /// The level whose answer is in the response. When `exhausted` is true,
  /// this is the level that produced the best partial answer instead.
  DegradationLevel level_served = DegradationLevel::kFull;
  /// True when the response is anything less than the full request.
  bool degraded = false;
  /// True when no rung completed: the response holds the best partial
  /// answer the ladder salvaged (a truncated graph or partial top-k).
  bool exhausted = false;
  std::vector<DegradationRung> rungs;

  std::string ToString() const;

  /// Structured form for the JSON exporter (`--stats-format=json`, trace
  /// attachments, service responses). Round-trips through FromJson.
  JsonValue ToJson() const;

  /// Parses a report serialized by ToJson; InvalidArgument/ParseError on
  /// malformed input.
  static Result<DegradationReport> FromJson(const JsonValue& json);
};

/// A response that survived the ladder. Exactly one payload is populated:
/// `response.generation` / `response.ranked` for materializing rungs, or
/// `count` for the kCountOnly rung. When `report.exhausted` is set the
/// populated payload is partial (budget-truncated) rather than complete.
struct DegradedResponse {
  ExplorationResponse response;
  std::optional<CountingResult> count;
  DegradationReport report;
};

/// The default ladder for a task type: deadline-driven requests fall back
/// to counting; goal-driven insert an aggressive-pruning retry; ranked
/// retry with a smaller k first.
std::vector<DegradationLevel> DefaultLadder(TaskType type);

/// Explore with graceful degradation: runs `request` down the ladder,
/// splitting the request's time budget across rungs per `policy`, and
/// returns the first rung's complete answer — or, when every rung falls,
/// the best partial answer — always annotated with a DegradationReport.
///
/// Only budget verdicts (ResourceExhausted, DeadlineExceeded) trigger
/// descent. Cancellation and request errors (bad goal, bad window...)
/// propagate immediately as bare Status — degrading a cancelled or
/// malformed request would answer a question nobody is asking.
///
/// `outcome` (optional) reports how the navigator's request cache
/// participated in the rung that served the answer: kHit/kMiss from a
/// materializing rung's Explore, kBypass when the count-only rung served
/// (counting bypasses the result tier), kDisabled when the navigator has
/// no cache wired.
Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    const DegradationPolicy& policy,
    cache::CacheOutcome* outcome = nullptr);

/// Policy-less overload: honors the request's own declarative
/// `request.degradation` policy when one is set, and falls back to the
/// default policy otherwise — so a JSON request file fully describes how
/// its answer may degrade.
Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    cache::CacheOutcome* outcome = nullptr);

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_DEGRADATION_H_

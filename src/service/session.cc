#include "service/session.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "cache/request_cache.h"
#include "core/combinations.h"
#include "plan/executor.h"
#include "util/check.h"
#include "util/string_util.h"

namespace coursenav {

namespace {

/// Per-query instrumentation: counts the query, installs the session's
/// tracer (when one is set) on the calling thread, and opens the
/// `session/query` span under which the generators' spans nest. Members
/// are destroyed in reverse order, so the span closes while the tracer is
/// still installed.
class QueryScope {
 public:
  QueryScope(obs::Tracer* tracer, obs::Counter* queries,
             std::string_view kind) {
    queries->Increment();
    if (tracer != nullptr) install_.emplace(tracer);
    span_.emplace(obs::kSpanSessionQuery);
    span_->AddString("kind", kind);
  }

 private:
  std::optional<obs::ScopedTracer> install_;
  std::optional<obs::ScopedSpan> span_;
};

}  // namespace

ExplorationSession::ExplorationSession(const Catalog* catalog,
                                       const OfferingSchedule* schedule,
                                       std::shared_ptr<const Goal> goal,
                                       EnrollmentStatus initial,
                                       Term deadline,
                                       ExplorationOptions options)
    : catalog_(catalog),
      schedule_(schedule),
      goal_(std::move(goal)),
      current_(std::move(initial)),
      deadline_(deadline),
      options_(std::move(options)),
      commits_(registry_.GetCounter(obs::kMetricSessionCommits)),
      undos_(registry_.GetCounter(obs::kMetricSessionUndos)),
      queries_(registry_.GetCounter(obs::kMetricSessionQueries)),
      cache_hits_(registry_.GetCounter(obs::kMetricSessionCacheHits)),
      cache_misses_(registry_.GetCounter(obs::kMetricSessionCacheMisses)) {
  // Interactive queries must be stoppable: ensure the session's options
  // carry a live token even when the caller did not provide one.
  if (!options_.cancel.can_cancel()) {
    options_.cancel = CancellationToken::Cancellable();
  }
}

Status ExplorationSession::Commit(const std::vector<std::string>& codes) {
  if (current_.term >= deadline_) {
    return Status::FailedPrecondition("the deadline has been reached");
  }
  COURSENAV_ASSIGN_OR_RETURN(DynamicBitset selection,
                             catalog_->CourseSetFromCodes(codes));
  if (selection.count() > options_.max_courses_per_term) {
    return Status::InvalidArgument(StrFormat(
        "selection of %d exceeds the %d-course limit", selection.count(),
        options_.max_courses_per_term));
  }
  DynamicBitset electable = CurrentOptions();
  if (!selection.IsSubsetOf(electable)) {
    DynamicBitset bad = selection;
    bad.Subtract(electable);
    return Status::InvalidArgument(
        "not electable this semester: " + catalog_->CourseSetToString(bad));
  }
  history_.push_back({current_.term, selection});
  current_.completed |= selection;
  current_.term = current_.term.Next();
  commits_->Increment();
  return Status::OK();
}

Status ExplorationSession::Undo() {
  if (history_.empty()) {
    return Status::FailedPrecondition("nothing to undo");
  }
  const PathStep& last = history_.back();
  current_.term = last.term;
  current_.completed.Subtract(last.selection);
  history_.pop_back();
  undos_->Increment();
  return Status::OK();
}

Status ExplorationSession::SetMaxLoad(int max_courses_per_term) {
  if (max_courses_per_term < 1) {
    return Status::InvalidArgument("load limit must be >= 1");
  }
  options_.max_courses_per_term = max_courses_per_term;
  return Status::OK();
}

Status ExplorationSession::Avoid(const std::string& code) {
  COURSENAV_ASSIGN_OR_RETURN(CourseId id, catalog_->FindByCode(code));
  if (current_.completed.test(id)) {
    return Status::FailedPrecondition("'" + code + "' is already completed");
  }
  if (!options_.avoid_courses.has_value()) {
    options_.avoid_courses = catalog_->NewCourseSet();
  }
  options_.avoid_courses->set(id);
  return Status::OK();
}

Status ExplorationSession::Unavoid(const std::string& code) {
  COURSENAV_ASSIGN_OR_RETURN(CourseId id, catalog_->FindByCode(code));
  if (options_.avoid_courses.has_value()) {
    options_.avoid_courses->reset(id);
  }
  return Status::OK();
}

Status ExplorationSession::SetDeadline(Term deadline) {
  if (deadline <= current_.term) {
    return Status::InvalidArgument(
        "deadline must be after the current semester");
  }
  deadline_ = deadline;
  return Status::OK();
}

void ExplorationSession::SetLimits(const ExplorationLimits& limits) {
  options_.limits = limits;
}

bool ExplorationSession::GoalReached() const {
  return goal_->IsSatisfied(current_.completed);
}

DynamicBitset ExplorationSession::CurrentOptions() const {
  return ComputeOptions(*catalog_, *schedule_, current_.completed,
                        current_.term, options_);
}

Result<uint64_t> ExplorationSession::CountThroughCache(
    const EnrollmentStatus& start) {
  cache::CacheOutcome outcome = cache::CacheOutcome::kDisabled;
  Result<uint64_t> counted = cache::RequestCache::Global().CountGoalPaths(
      *catalog_, *schedule_, start, deadline_, goal_, options_,
      GoalDrivenConfig{}, &outcome);
  if (counted.ok()) {
    if (outcome == cache::CacheOutcome::kHit) {
      cache_hits_->Increment();
    } else {
      cache_misses_->Increment();
    }
  }
  return counted;
}

Result<uint64_t> ExplorationSession::RemainingGoalPaths() {
  QueryScope scope(tracer_, queries_, "remaining_goal_paths");
  if (GoalReached()) return uint64_t{1};
  return CountThroughCache(current_);
}

Result<RankedResult> ExplorationSession::TopK(const RankingFunction& ranking,
                                              int k) const {
  QueryScope scope(tracer_, queries_, "top_k");
  ExplorationRequest request;
  request.start = current_;
  request.end_term = deadline_;
  request.type = TaskType::kRanked;
  request.goal = goal_;
  // Non-owning alias: the ranking is borrowed for the duration of the call.
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);
  request.top_k = k;
  request.options = options_;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response,
                             plan::Execute(*catalog_, *schedule_, request));
  CN_CHECK(response.ranked.has_value());
  return std::move(*response.ranked);
}

Result<DegradedResponse> ExplorationSession::TopKDegraded(
    const RankingFunction& ranking, int k,
    const DegradationPolicy& policy) const {
  QueryScope scope(tracer_, queries_, "top_k_degraded");
  CourseNavigator navigator(catalog_, schedule_);
  ExplorationRequest request;
  request.start = current_;
  request.end_term = deadline_;
  request.type = TaskType::kRanked;
  request.goal = goal_;
  // Non-owning alias: the ranking is borrowed for the duration of the call.
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);
  request.top_k = k;
  request.options = options_;
  return ExploreWithDegradation(navigator, request, policy);
}

Result<DegradedResponse> ExplorationSession::ExploreDegraded(
    const DegradationPolicy& policy) const {
  QueryScope scope(tracer_, queries_, "explore_degraded");
  CourseNavigator navigator(catalog_, schedule_);
  ExplorationRequest request;
  request.start = current_;
  request.end_term = deadline_;
  request.type = TaskType::kGoalDriven;
  request.goal = goal_;
  request.options = options_;
  return ExploreWithDegradation(navigator, request, policy);
}

Result<std::vector<SelectionImpact>> ExplorationSession::EvaluateSelections(
    int max_candidates) {
  QueryScope scope(tracer_, queries_, "evaluate_selections");
  if (current_.term >= deadline_) {
    return Status::FailedPrecondition("the deadline has been reached");
  }
  DynamicBitset electable = CurrentOptions();
  std::vector<DynamicBitset> candidates;
  ForEachSelection(electable, 1, options_.max_courses_per_term,
                   [&](const DynamicBitset& selection) {
                     candidates.push_back(selection);
                     return static_cast<int>(candidates.size()) <
                            max_candidates;
                   });

  std::vector<SelectionImpact> impacts;
  impacts.reserve(candidates.size());
  for (DynamicBitset& selection : candidates) {
    EnrollmentStatus next{current_.term.Next(), current_.completed};
    next.completed |= selection;
    SelectionImpact impact;
    impact.selection = std::move(selection);
    if (goal_->IsSatisfied(next.completed)) {
      impact.surviving_goal_paths = 1;
    } else if (next.term < deadline_) {
      COURSENAV_ASSIGN_OR_RETURN(uint64_t surviving,
                                 CountThroughCache(next));
      impact.surviving_goal_paths = surviving;
    }
    impacts.push_back(std::move(impact));
  }
  std::stable_sort(impacts.begin(), impacts.end(),
                   [](const SelectionImpact& a, const SelectionImpact& b) {
                     return a.surviving_goal_paths > b.surviving_goal_paths;
                   });
  return impacts;
}

}  // namespace coursenav

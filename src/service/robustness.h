#ifndef COURSENAV_SERVICE_ROBUSTNESS_H_
#define COURSENAV_SERVICE_ROBUSTNESS_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "core/enrollment.h"
#include "core/options.h"
#include "graph/path.h"
#include "requirements/goal.h"
#include "util/result.h"

namespace coursenav {

/// One offering the plan depends on, and how the plan space reacts if the
/// registrar cancels it.
struct OfferingDependency {
  CourseId course = kInvalidCourseId;
  Term term;
  /// True if the analyzed plan itself survives (the plan does not elect
  /// this offering — always false here since only elected offerings are
  /// analyzed).
  bool plan_survives = false;
  /// Goal paths that still exist (from the plan's start, under the same
  /// constraints) if this single offering is cancelled.
  uint64_t alternative_paths = 0;
};

/// Robustness report for a concrete plan.
struct PlanRobustness {
  /// Per elected offering, most fragile first (fewest alternatives).
  std::vector<OfferingDependency> dependencies;
  /// Goal paths with the schedule as published.
  uint64_t baseline_paths = 0;

  /// True when the sweep's budget (or its cancel token) died mid-sweep:
  /// `dependencies` then covers only the perturbations evaluated before the
  /// cut, and `truncation_reason` says which budget fell. A truncated
  /// report is still sorted and valid for the offerings it covers.
  bool truncated = false;
  Status truncation_reason;
  /// Offerings the plan elects / offerings actually re-counted.
  int64_t perturbations_total = 0;
  int64_t perturbations_evaluated = 0;

  /// Offerings whose cancellation leaves no path at all.
  std::vector<OfferingDependency> SinglePointsOfFailure() const;

  /// Human-readable report.
  std::string ToString(const Catalog& catalog) const;
};

/// Quantifies how fragile a plan is to schedule changes — the operational
/// side of the paper's reliability discussion (§4.3.1): beyond *ranking*
/// by offering probability, a student wants to know *which* cancellation
/// would strand them.
///
/// For every (course, semester) the plan elects, the offering is removed
/// from a cloned schedule and the goal paths from `start` are re-counted
/// under `options`. `options.limits.max_seconds` bounds the *whole* sweep
/// (baseline plus every perturbation), and `options.limits.max_nodes` /
/// `max_memory_bytes` apply per re-count, so one fragile-plan analysis can
/// never run unbounded; when the budget or the options' cancel token dies
/// mid-sweep the report comes back with `truncated` set and the
/// dependencies evaluated so far. `path` must be a valid plan reaching
/// `goal` by `end_term`.
Result<PlanRobustness> AnalyzePlanRobustness(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const LearningPath& path, const Goal& goal, Term end_term,
    const ExplorationOptions& options);

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_ROBUSTNESS_H_

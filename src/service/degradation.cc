#include "service/degradation.h"

#include <algorithm>
#include <utility>

#include "util/cancellation.h"
#include "util/string_util.h"

namespace coursenav {

namespace {

bool IsBudgetStatus(const Status& status) {
  return status.IsResourceExhausted() || status.IsDeadlineExceeded();
}

int64_t ResponseNodes(const ExplorationResponse& response) {
  if (response.generation.has_value()) {
    return response.generation->stats.nodes_created;
  }
  if (response.ranked.has_value()) {
    return response.ranked->stats.nodes_created;
  }
  return 0;
}

const Status& ResponseTermination(const ExplorationResponse& response) {
  static const Status ok = Status::OK();
  if (response.generation.has_value()) return response.generation->termination;
  if (response.ranked.has_value()) return response.ranked->termination;
  return ok;
}

/// True when the response carries anything a caller could use: a nonempty
/// partial graph or at least one ranked path.
bool HasPartialPayload(const ExplorationResponse& response) {
  if (response.generation.has_value()) {
    return response.generation->graph.num_nodes() > 0;
  }
  if (response.ranked.has_value()) return !response.ranked->paths.empty();
  return false;
}

}  // namespace

std::string_view DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "full";
    case DegradationLevel::kAggressivePruning:
      return "aggressive-pruning";
    case DegradationLevel::kRankedSmallK:
      return "ranked-small-k";
    case DegradationLevel::kCountOnly:
      return "count-only";
  }
  return "unknown";
}

std::string DegradationReport::ToString() const {
  std::string out = StrFormat(
      "degradation: served at '%s'%s%s\n",
      std::string(DegradationLevelName(level_served)).c_str(),
      degraded ? " (degraded)" : "",
      exhausted ? ", every rung exhausted — answer is partial" : "");
  for (const DegradationRung& rung : rungs) {
    if (!rung.attempted) {
      out += StrFormat("  [%s] skipped: %s\n",
                       std::string(DegradationLevelName(rung.level)).c_str(),
                       rung.outcome.ToString().c_str());
      continue;
    }
    out += StrFormat(
        "  [%s] %s — %.1f/%.1f ms, %lld nodes\n",
        std::string(DegradationLevelName(rung.level)).c_str(),
        rung.outcome.ok() ? "served" : rung.outcome.ToString().c_str(),
        rung.seconds_spent * 1e3, rung.seconds_budget * 1e3,
        static_cast<long long>(rung.nodes_created));
  }
  return out;
}

std::vector<DegradationLevel> DefaultLadder(TaskType type) {
  switch (type) {
    case TaskType::kDeadlineDriven:
      return {DegradationLevel::kFull, DegradationLevel::kCountOnly};
    case TaskType::kGoalDriven:
      return {DegradationLevel::kFull, DegradationLevel::kAggressivePruning,
              DegradationLevel::kCountOnly};
    case TaskType::kRanked:
      return {DegradationLevel::kFull, DegradationLevel::kRankedSmallK,
              DegradationLevel::kCountOnly};
  }
  return {DegradationLevel::kFull};
}

Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    const DegradationPolicy& policy) {
  std::vector<DegradationLevel> ladder =
      policy.ladder.empty() ? DefaultLadder(request.type) : policy.ladder;
  if (ladder.empty()) {
    return Status::InvalidArgument("degradation ladder is empty");
  }
  double time_fraction = policy.time_fraction;
  if (time_fraction <= 0.0 || time_fraction > 1.0) time_fraction = 0.5;

  // The ladder's overall clock: every rung's slice comes out of the
  // caller's single deadline, so degraded answers arrive inside it.
  DeadlineBudget overall(request.options.limits.max_seconds,
                         request.options.cancel);

  DegradedResponse best;  // best partial answer salvaged so far
  bool have_partial = false;
  DegradationLevel partial_level = DegradationLevel::kFull;
  DegradationReport report;

  for (size_t i = 0; i < ladder.size(); ++i) {
    const DegradationLevel level = ladder[i];
    const bool last_rung = (i + 1 == ladder.size());
    DegradationRung rung;
    rung.level = level;

    if (request.options.cancel.IsCancelled()) {
      return Status::Cancelled("cancelled by caller");
    }

    // Slice the remaining time for this rung.
    double rung_seconds = 0.0;  // 0 = unlimited (request had no deadline)
    if (overall.max_seconds() > 0) {
      double remaining = overall.RemainingSeconds();
      if (remaining <= 0) {
        rung.attempted = false;
        rung.outcome =
            Status::DeadlineExceeded("no time remaining for this rung");
        report.rungs.push_back(std::move(rung));
        continue;
      }
      rung_seconds = last_rung ? remaining : remaining * time_fraction;
    }

    // Build the rung's request.
    ExplorationRequest attempt = request;
    attempt.options.limits.max_seconds = rung_seconds;
    switch (level) {
      case DegradationLevel::kFull:
        break;
      case DegradationLevel::kAggressivePruning:
        if (request.goal == nullptr || request.type == TaskType::kRanked) {
          rung.attempted = false;
          rung.outcome = Status::FailedPrecondition(
              "aggressive pruning needs a goal-driven request");
          report.rungs.push_back(std::move(rung));
          continue;
        }
        attempt.type = TaskType::kGoalDriven;
        attempt.config.enable_time_pruning = true;
        attempt.config.enable_availability_pruning = true;
        attempt.config.enforce_min_selection = true;
        attempt.config.cache_availability_checks = true;
        break;
      case DegradationLevel::kRankedSmallK:
        if (request.goal == nullptr || request.ranking == nullptr) {
          rung.attempted = false;
          rung.outcome = Status::FailedPrecondition(
              "ranked fallback needs a goal and a ranking");
          report.rungs.push_back(std::move(rung));
          continue;
        }
        attempt.type = TaskType::kRanked;
        attempt.top_k = std::max(
            1, std::min(request.top_k, policy.degraded_top_k));
        break;
      case DegradationLevel::kCountOnly:
        if (policy.count_max_nodes > 0) {
          attempt.options.limits.max_nodes = policy.count_max_nodes;
        }
        break;
    }
    if (level != DegradationLevel::kFull && policy.degraded_max_nodes > 0 &&
        level != DegradationLevel::kCountOnly) {
      attempt.options.limits.max_nodes = policy.degraded_max_nodes;
    }

    rung.attempted = true;
    rung.seconds_budget = rung_seconds;
    const double started = overall.ElapsedSeconds();

    if (level == DegradationLevel::kCountOnly) {
      Result<CountingResult> counted =
          request.goal != nullptr
              ? navigator.CountGoal(attempt.start, attempt.end_term,
                                    *attempt.goal, attempt.options,
                                    attempt.config)
              : navigator.CountDeadline(attempt.start, attempt.end_term,
                                        attempt.options);
      rung.seconds_spent = overall.ElapsedSeconds() - started;
      if (counted.ok()) {
        rung.nodes_created = counted->distinct_statuses;
        rung.outcome = Status::OK();
        report.rungs.push_back(std::move(rung));
        report.level_served = level;
        report.degraded = (level != DegradationLevel::kFull);
        best.count = std::move(counted).value();
        best.report = std::move(report);
        return best;
      }
      if (counted.status().IsCancelled()) return counted.status();
      if (!IsBudgetStatus(counted.status())) return counted.status();
      rung.outcome = counted.status();
      report.rungs.push_back(std::move(rung));
      continue;
    }

    Result<ExplorationResponse> response = navigator.Explore(attempt);
    rung.seconds_spent = overall.ElapsedSeconds() - started;
    if (!response.ok()) {
      if (response.status().IsCancelled() ||
          !IsBudgetStatus(response.status())) {
        return response.status();
      }
      rung.outcome = response.status();
      report.rungs.push_back(std::move(rung));
      continue;
    }

    rung.nodes_created = ResponseNodes(*response);
    Status termination = ResponseTermination(*response);
    if (termination.IsCancelled()) return termination;
    if (termination.ok()) {
      rung.outcome = Status::OK();
      report.rungs.push_back(std::move(rung));
      report.level_served = level;
      report.degraded = (level != DegradationLevel::kFull);
      best.response = std::move(response).value();
      best.count.reset();
      best.report = std::move(report);
      return best;
    }

    // The rung fell on a budget, but its truncated output may still be the
    // best partial answer the ladder can salvage.
    rung.outcome = termination;
    report.rungs.push_back(std::move(rung));
    if (HasPartialPayload(*response) &&
        (!have_partial ||
         ResponseNodes(*response) >= ResponseNodes(best.response))) {
      best.response = std::move(response).value();
      have_partial = true;
      partial_level = level;
    }
  }

  // Every rung fell. Serve the best partial answer with the full story.
  report.exhausted = true;
  report.degraded = true;
  report.level_served = partial_level;
  best.report = std::move(report);
  if (!have_partial) {
    // Nothing was salvageable (e.g. a pure count-only ladder): surface the
    // last budget verdict instead of an empty response.
    for (auto it = best.report.rungs.rbegin(); it != best.report.rungs.rend();
         ++it) {
      if (it->attempted && !it->outcome.ok()) return it->outcome;
    }
    return Status::ResourceExhausted("every degradation rung exhausted");
  }
  return best;
}

}  // namespace coursenav

#include "service/degradation.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "util/cancellation.h"
#include "util/string_util.h"

namespace coursenav {

namespace {

bool IsBudgetStatus(const Status& status) {
  return status.IsResourceExhausted() || status.IsDeadlineExceeded();
}

int64_t ResponseNodes(const ExplorationResponse& response) {
  if (response.generation.has_value()) {
    return response.generation->stats.nodes_created;
  }
  if (response.ranked.has_value()) {
    return response.ranked->stats.nodes_created;
  }
  return 0;
}

const Status& ResponseTermination(const ExplorationResponse& response) {
  static const Status ok = Status::OK();
  if (response.generation.has_value()) return response.generation->termination;
  if (response.ranked.has_value()) return response.ranked->termination;
  return ok;
}

/// True when the response carries anything a caller could use: a nonempty
/// partial graph or at least one ranked path.
bool HasPartialPayload(const ExplorationResponse& response) {
  if (response.generation.has_value()) {
    return response.generation->graph.num_nodes() > 0;
  }
  if (response.ranked.has_value()) return !response.ranked->paths.empty();
  return false;
}

}  // namespace

std::string DegradationReport::ToString() const {
  std::string out = StrFormat(
      "degradation: served at '%s'%s%s\n",
      std::string(DegradationLevelName(level_served)).c_str(),
      degraded ? " (degraded)" : "",
      exhausted ? ", every rung exhausted — answer is partial" : "");
  for (const DegradationRung& rung : rungs) {
    if (!rung.attempted) {
      out += StrFormat("  [%s] skipped: %s\n",
                       std::string(DegradationLevelName(rung.level)).c_str(),
                       rung.outcome.ToString().c_str());
      continue;
    }
    out += StrFormat(
        "  [%s] %s — %.1f/%.1f ms, %lld nodes\n",
        std::string(DegradationLevelName(rung.level)).c_str(),
        rung.outcome.ok() ? "served" : rung.outcome.ToString().c_str(),
        rung.seconds_spent * 1e3, rung.seconds_budget * 1e3,
        static_cast<long long>(rung.nodes_created));
  }
  return out;
}

namespace {

JsonValue StatusToJson(const Status& status) {
  JsonValue::Object object;
  object["code"] = JsonValue(std::string(StatusCodeToString(status.code())));
  object["message"] = JsonValue(status.message());
  return JsonValue(std::move(object));
}

// Out-parameter because Result<Status> would be ambiguous: a Status is
// both a payload and an error here.
Status StatusFromJson(const JsonValue& json, Status* out) {
  COURSENAV_ASSIGN_OR_RETURN(JsonValue code_value, json.Get("code"));
  COURSENAV_ASSIGN_OR_RETURN(std::string code_name, code_value.GetString());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue message_value, json.Get("message"));
  COURSENAV_ASSIGN_OR_RETURN(std::string message, message_value.GetString());
  for (int c = 0; c <= static_cast<int>(StatusCode::kCancelled); ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    if (StatusCodeToString(code) == code_name) {
      *out = Status(code, std::move(message));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown status code '" + code_name + "'");
}

}  // namespace

JsonValue DegradationReport::ToJson() const {
  JsonValue::Object object;
  object["level_served"] =
      JsonValue(std::string(DegradationLevelName(level_served)));
  object["degraded"] = JsonValue(degraded);
  object["exhausted"] = JsonValue(exhausted);
  JsonValue::Array rung_array;
  rung_array.reserve(rungs.size());
  for (const DegradationRung& rung : rungs) {
    JsonValue::Object r;
    r["level"] = JsonValue(std::string(DegradationLevelName(rung.level)));
    r["attempted"] = JsonValue(rung.attempted);
    r["outcome"] = StatusToJson(rung.outcome);
    r["seconds_budget"] = JsonValue(rung.seconds_budget);
    r["seconds_spent"] = JsonValue(rung.seconds_spent);
    r["nodes_created"] = JsonValue(rung.nodes_created);
    rung_array.push_back(JsonValue(std::move(r)));
  }
  object["rungs"] = JsonValue(std::move(rung_array));
  return JsonValue(std::move(object));
}

Result<DegradationReport> DegradationReport::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("degradation report must be an object");
  }
  DegradationReport report;
  COURSENAV_ASSIGN_OR_RETURN(JsonValue level_value, json.Get("level_served"));
  COURSENAV_ASSIGN_OR_RETURN(std::string level_name, level_value.GetString());
  COURSENAV_ASSIGN_OR_RETURN(report.level_served,
                             ParseDegradationLevel(level_name));
  COURSENAV_ASSIGN_OR_RETURN(JsonValue degraded_value, json.Get("degraded"));
  COURSENAV_ASSIGN_OR_RETURN(report.degraded, degraded_value.GetBool());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue exhausted_value,
                             json.Get("exhausted"));
  COURSENAV_ASSIGN_OR_RETURN(report.exhausted, exhausted_value.GetBool());
  COURSENAV_ASSIGN_OR_RETURN(JsonValue rungs_value, json.Get("rungs"));
  if (!rungs_value.is_array()) {
    return Status::InvalidArgument("'rungs' must be an array");
  }
  for (const JsonValue& rung_json : rungs_value.array()) {
    DegradationRung rung;
    COURSENAV_ASSIGN_OR_RETURN(JsonValue rl, rung_json.Get("level"));
    COURSENAV_ASSIGN_OR_RETURN(std::string rung_level, rl.GetString());
    COURSENAV_ASSIGN_OR_RETURN(rung.level,
                               ParseDegradationLevel(rung_level));
    COURSENAV_ASSIGN_OR_RETURN(JsonValue attempted,
                               rung_json.Get("attempted"));
    COURSENAV_ASSIGN_OR_RETURN(rung.attempted, attempted.GetBool());
    COURSENAV_ASSIGN_OR_RETURN(JsonValue outcome, rung_json.Get("outcome"));
    COURSENAV_RETURN_IF_ERROR(StatusFromJson(outcome, &rung.outcome));
    COURSENAV_ASSIGN_OR_RETURN(JsonValue budget,
                               rung_json.Get("seconds_budget"));
    COURSENAV_ASSIGN_OR_RETURN(rung.seconds_budget, budget.GetNumber());
    COURSENAV_ASSIGN_OR_RETURN(JsonValue spent,
                               rung_json.Get("seconds_spent"));
    COURSENAV_ASSIGN_OR_RETURN(rung.seconds_spent, spent.GetNumber());
    COURSENAV_ASSIGN_OR_RETURN(JsonValue nodes,
                               rung_json.Get("nodes_created"));
    COURSENAV_ASSIGN_OR_RETURN(rung.nodes_created, nodes.GetInt());
    report.rungs.push_back(std::move(rung));
  }
  return report;
}

std::vector<DegradationLevel> DefaultLadder(TaskType type) {
  switch (type) {
    case TaskType::kDeadlineDriven:
      return {DegradationLevel::kFull, DegradationLevel::kCountOnly};
    case TaskType::kGoalDriven:
      return {DegradationLevel::kFull, DegradationLevel::kAggressivePruning,
              DegradationLevel::kCountOnly};
    case TaskType::kRanked:
      return {DegradationLevel::kFull, DegradationLevel::kRankedSmallK,
              DegradationLevel::kCountOnly};
  }
  return {DegradationLevel::kFull};
}

Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    const DegradationPolicy& policy, cache::CacheOutcome* outcome) {
  if (outcome != nullptr) {
    *outcome = navigator.cache_enabled() ? cache::CacheOutcome::kBypass
                                         : cache::CacheOutcome::kDisabled;
  }
  std::vector<DegradationLevel> ladder =
      policy.ladder.empty() ? DefaultLadder(request.type) : policy.ladder;
  if (ladder.empty()) {
    return Status::InvalidArgument("degradation ladder is empty");
  }
  double time_fraction = policy.time_fraction;
  if (time_fraction <= 0.0 || time_fraction > 1.0) time_fraction = 0.5;

  // The ladder's overall clock: every rung's slice comes out of the
  // caller's single deadline, so degraded answers arrive inside it.
  DeadlineBudget overall(request.options.limits.max_seconds,
                         request.options.cancel);

  obs::ScopedSpan ladder_span(obs::kSpanDegradeLadder);
  ladder_span.AddInt("rungs", static_cast<int64_t>(ladder.size()));
  static obs::Counter* responses_served =
      obs::GlobalMetrics().GetCounter(obs::kMetricDegradationServed);

  DegradedResponse best;  // best partial answer salvaged so far
  bool have_partial = false;
  DegradationLevel partial_level = DegradationLevel::kFull;
  cache::CacheOutcome partial_outcome = cache::CacheOutcome::kDisabled;
  DegradationReport report;

  for (size_t i = 0; i < ladder.size(); ++i) {
    const DegradationLevel level = ladder[i];
    const bool last_rung = (i + 1 == ladder.size());
    DegradationRung rung;
    rung.level = level;

    // One span per rung; generator/counting spans nest underneath it. The
    // span closes on every exit from this iteration (continue or return).
    obs::ScopedSpan rung_span(obs::kSpanDegradeRung);
    rung_span.AddString("level", DegradationLevelName(level));
    // Annotates the rung span with the final rung record and archives the
    // rung in the report; every iteration exit goes through this.
    auto archive_rung = [&] {
      if (rung.attempted) {
        static obs::Counter* rungs_attempted =
            obs::GlobalMetrics().GetCounter(obs::kMetricDegradationRungs);
        rungs_attempted->Increment();
      }
      rung_span.AddInt("attempted", rung.attempted);
      rung_span.AddString("outcome",
                          StatusCodeToString(rung.outcome.code()));
      rung_span.AddDouble("seconds_budget", rung.seconds_budget);
      rung_span.AddDouble("seconds_spent", rung.seconds_spent);
      rung_span.AddInt("nodes_created", rung.nodes_created);
      report.rungs.push_back(std::move(rung));
    };

    if (request.options.cancel.IsCancelled()) {
      return Status::Cancelled("cancelled by caller");
    }

    // Slice the remaining time for this rung.
    double rung_seconds = 0.0;  // 0 = unlimited (request had no deadline)
    if (overall.max_seconds() > 0) {
      double remaining = overall.RemainingSeconds();
      if (remaining <= 0) {
        rung.attempted = false;
        rung.outcome =
            Status::DeadlineExceeded("no time remaining for this rung");
        archive_rung();
        continue;
      }
      rung_seconds = last_rung ? remaining : remaining * time_fraction;
    }

    // Build the rung's request: each rung is a plan rewrite of the
    // original. FailedPrecondition = this rung does not apply (no goal /
    // no ranking); record it as skipped and descend.
    Result<ExplorationRequest> rewritten =
        plan::RewriteForDegradation(request, level, policy);
    if (!rewritten.ok()) {
      rung.attempted = false;
      rung.outcome = rewritten.status();
      archive_rung();
      continue;
    }
    ExplorationRequest attempt = std::move(rewritten).value();
    attempt.options.limits.max_seconds = rung_seconds;

    rung.attempted = true;
    rung.seconds_budget = rung_seconds;
    const double started = overall.ElapsedSeconds();

    if (level == DegradationLevel::kCountOnly) {
      Result<CountingResult> counted =
          request.goal != nullptr
              ? navigator.CountGoal(attempt.start, attempt.end_term,
                                    *attempt.goal, attempt.options,
                                    attempt.config)
              : navigator.CountDeadline(attempt.start, attempt.end_term,
                                        attempt.options);
      rung.seconds_spent = overall.ElapsedSeconds() - started;
      if (counted.ok()) {
        rung.nodes_created = counted->distinct_statuses;
        rung.outcome = Status::OK();
        archive_rung();
        report.level_served = level;
        report.degraded = (level != DegradationLevel::kFull);
        best.count = std::move(counted).value();
        best.report = std::move(report);
        responses_served->Increment();
        return best;
      }
      if (counted.status().IsCancelled()) return counted.status();
      if (!IsBudgetStatus(counted.status())) return counted.status();
      rung.outcome = counted.status();
      archive_rung();
      continue;
    }

    cache::CacheOutcome rung_outcome = cache::CacheOutcome::kDisabled;
    Result<ExplorationResponse> response =
        navigator.Explore(attempt, &rung_outcome);
    rung.seconds_spent = overall.ElapsedSeconds() - started;
    if (!response.ok()) {
      if (response.status().IsCancelled() ||
          !IsBudgetStatus(response.status())) {
        return response.status();
      }
      rung.outcome = response.status();
      archive_rung();
      continue;
    }

    rung.nodes_created = ResponseNodes(*response);
    Status termination = ResponseTermination(*response);
    if (termination.IsCancelled()) return termination;
    if (termination.ok()) {
      rung.outcome = Status::OK();
      archive_rung();
      report.level_served = level;
      report.degraded = (level != DegradationLevel::kFull);
      best.response = std::move(response).value();
      best.count.reset();
      best.report = std::move(report);
      if (outcome != nullptr) *outcome = rung_outcome;
      responses_served->Increment();
      return best;
    }

    // The rung fell on a budget, but its truncated output may still be the
    // best partial answer the ladder can salvage.
    rung.outcome = termination;
    archive_rung();
    if (HasPartialPayload(*response) &&
        (!have_partial ||
         ResponseNodes(*response) >= ResponseNodes(best.response))) {
      best.response = std::move(response).value();
      have_partial = true;
      partial_level = level;
      partial_outcome = rung_outcome;
    }
  }

  // Every rung fell. Serve the best partial answer with the full story.
  report.exhausted = true;
  report.degraded = true;
  report.level_served = partial_level;
  best.report = std::move(report);
  if (!have_partial) {
    // Nothing was salvageable (e.g. a pure count-only ladder): surface the
    // last budget verdict instead of an empty response.
    for (auto it = best.report.rungs.rbegin(); it != best.report.rungs.rend();
         ++it) {
      if (it->attempted && !it->outcome.ok()) return it->outcome;
    }
    return Status::ResourceExhausted("every degradation rung exhausted");
  }
  if (outcome != nullptr) *outcome = partial_outcome;
  responses_served->Increment();
  return best;
}

Result<DegradedResponse> ExploreWithDegradation(
    const CourseNavigator& navigator, const ExplorationRequest& request,
    cache::CacheOutcome* outcome) {
  if (request.degradation.has_value()) {
    return ExploreWithDegradation(navigator, request, *request.degradation,
                                  outcome);
  }
  return ExploreWithDegradation(navigator, request, DegradationPolicy{},
                                outcome);
}

}  // namespace coursenav

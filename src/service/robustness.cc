#include "service/robustness.h"

#include <algorithm>

#include "core/counting.h"
#include "util/string_util.h"

namespace coursenav {

std::vector<OfferingDependency> PlanRobustness::SinglePointsOfFailure()
    const {
  std::vector<OfferingDependency> out;
  for (const OfferingDependency& dep : dependencies) {
    if (dep.alternative_paths == 0) out.push_back(dep);
  }
  return out;
}

std::string PlanRobustness::ToString(const Catalog& catalog) const {
  std::string out = StrFormat(
      "baseline: %llu goal path(s)\n",
      static_cast<unsigned long long>(baseline_paths));
  for (const OfferingDependency& dep : dependencies) {
    out += StrFormat(
        "  if %s is cancelled in %s: %llu alternative path(s)%s\n",
        catalog.course(dep.course).code.c_str(),
        dep.term.ToString().c_str(),
        static_cast<unsigned long long>(dep.alternative_paths),
        dep.alternative_paths == 0 ? "  << single point of failure" : "");
  }
  return out;
}

Result<PlanRobustness> AnalyzePlanRobustness(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const LearningPath& path, const Goal& goal, Term end_term,
    const ExplorationOptions& options) {
  COURSENAV_RETURN_IF_ERROR(path.Validate(catalog, schedule));
  if (!goal.IsSatisfied(path.FinalCompleted())) {
    return Status::InvalidArgument("the plan does not reach the goal");
  }

  EnrollmentStatus start{path.start_term(), path.start_completed()};
  PlanRobustness report;
  COURSENAV_ASSIGN_OR_RETURN(
      CountingResult baseline,
      CountGoalDrivenPaths(catalog, schedule, start, end_term, goal,
                           options));
  report.baseline_paths = baseline.goal_paths;

  for (const PathStep& step : path.steps()) {
    Status failure = Status::OK();
    step.selection.ForEach([&](int id) {
      if (!failure.ok()) return;
      OfferingDependency dep;
      dep.course = static_cast<CourseId>(id);
      dep.term = step.term;

      OfferingSchedule perturbed = schedule.Clone();
      perturbed.RemoveOffering(dep.course, dep.term);
      Result<CountingResult> counted = CountGoalDrivenPaths(
          catalog, perturbed, start, end_term, goal, options);
      if (!counted.ok()) {
        failure = counted.status();
        return;
      }
      dep.alternative_paths = counted->goal_paths;
      report.dependencies.push_back(dep);
    });
    if (!failure.ok()) return failure;
  }

  std::stable_sort(report.dependencies.begin(), report.dependencies.end(),
                   [](const OfferingDependency& a,
                      const OfferingDependency& b) {
                     return a.alternative_paths < b.alternative_paths;
                   });
  return report;
}

}  // namespace coursenav

#include "service/robustness.h"

#include <algorithm>

#include "core/counting.h"
#include "util/cancellation.h"
#include "util/string_util.h"

namespace coursenav {

std::vector<OfferingDependency> PlanRobustness::SinglePointsOfFailure()
    const {
  std::vector<OfferingDependency> out;
  for (const OfferingDependency& dep : dependencies) {
    if (dep.alternative_paths == 0) out.push_back(dep);
  }
  return out;
}

std::string PlanRobustness::ToString(const Catalog& catalog) const {
  std::string out = StrFormat(
      "baseline: %llu goal path(s)\n",
      static_cast<unsigned long long>(baseline_paths));
  if (truncated) {
    out += StrFormat(
        "  (truncated after %lld of %lld perturbations: %s)\n",
        static_cast<long long>(perturbations_evaluated),
        static_cast<long long>(perturbations_total),
        truncation_reason.ToString().c_str());
  }
  for (const OfferingDependency& dep : dependencies) {
    out += StrFormat(
        "  if %s is cancelled in %s: %llu alternative path(s)%s\n",
        catalog.course(dep.course).code.c_str(),
        dep.term.ToString().c_str(),
        static_cast<unsigned long long>(dep.alternative_paths),
        dep.alternative_paths == 0 ? "  << single point of failure" : "");
  }
  return out;
}

Result<PlanRobustness> AnalyzePlanRobustness(
    const Catalog& catalog, const OfferingSchedule& schedule,
    const LearningPath& path, const Goal& goal, Term end_term,
    const ExplorationOptions& options) {
  COURSENAV_RETURN_IF_ERROR(path.Validate(catalog, schedule));
  if (!goal.IsSatisfied(path.FinalCompleted())) {
    return Status::InvalidArgument("the plan does not reach the goal");
  }

  EnrollmentStatus start{path.start_term(), path.start_completed()};
  PlanRobustness report;
  for (const PathStep& step : path.steps()) {
    report.perturbations_total += step.selection.count();
  }

  // One DeadlineBudget spans the whole sweep: `max_seconds` (and the cancel
  // token) bound baseline plus all perturbations together, while the node /
  // memory limits keep applying to each re-count individually. Each
  // re-count gets the sweep's remaining time, so a single pathological
  // perturbation cannot eat the budget of those after it *and* the sweep as
  // a whole stays bounded.
  DeadlineBudget sweep(options.limits.max_seconds, options.cancel);
  auto per_count_options = [&]() {
    ExplorationOptions per = options;
    if (options.limits.max_seconds > 0) {
      per.limits.max_seconds = sweep.RemainingSeconds();
      if (per.limits.max_seconds <= 0) per.limits.max_seconds = 1e-9;
    }
    return per;
  };

  Result<CountingResult> baseline = CountGoalDrivenPaths(
      catalog, schedule, start, end_term, goal, per_count_options());
  if (!baseline.ok()) return baseline.status();
  report.baseline_paths = baseline->goal_paths;

  Status failure = Status::OK();
  for (const PathStep& step : path.steps()) {
    step.selection.ForEach([&](int id) {
      if (!failure.ok() || report.truncated) return;
      Status budget = sweep.CheckNow();
      if (!budget.ok()) {
        report.truncated = true;
        report.truncation_reason = budget;
        return;
      }
      OfferingDependency dep;
      dep.course = static_cast<CourseId>(id);
      dep.term = step.term;

      OfferingSchedule perturbed = schedule.Clone();
      perturbed.RemoveOffering(dep.course, dep.term);
      Result<CountingResult> counted = CountGoalDrivenPaths(
          catalog, perturbed, start, end_term, goal, per_count_options());
      if (!counted.ok()) {
        // A budget death mid-sweep truncates the report; anything else is a
        // real error and fails the analysis.
        if (counted.status().IsResourceExhausted() ||
            counted.status().IsDeadlineExceeded() ||
            counted.status().IsCancelled()) {
          report.truncated = true;
          report.truncation_reason = counted.status();
        } else {
          failure = counted.status();
        }
        return;
      }
      dep.alternative_paths = counted->goal_paths;
      report.dependencies.push_back(dep);
      ++report.perturbations_evaluated;
    });
    if (!failure.ok()) return failure;
    if (report.truncated) break;
  }

  std::stable_sort(report.dependencies.begin(), report.dependencies.end(),
                   [](const OfferingDependency& a,
                      const OfferingDependency& b) {
                     return a.alternative_paths < b.alternative_paths;
                   });
  return report;
}

}  // namespace coursenav

#include "service/navigator.h"

namespace coursenav {

Result<ExplorationResponse> CourseNavigator::Explore(
    const ExplorationRequest& request) const {
  ExplorationResponse response;
  switch (request.type) {
    case TaskType::kDeadlineDriven: {
      COURSENAV_ASSIGN_OR_RETURN(
          GenerationResult generation,
          ExploreDeadline(request.start, request.end_term, request.options));
      response.generation = std::move(generation);
      return response;
    }
    case TaskType::kGoalDriven: {
      if (request.goal == nullptr) {
        return Status::InvalidArgument(
            "goal-driven exploration requires a goal");
      }
      COURSENAV_ASSIGN_OR_RETURN(
          GenerationResult generation,
          ExploreGoal(request.start, request.end_term, *request.goal,
                      request.options, request.config));
      response.generation = std::move(generation);
      return response;
    }
    case TaskType::kRanked: {
      if (request.goal == nullptr) {
        return Status::InvalidArgument("ranked exploration requires a goal");
      }
      if (request.ranking == nullptr) {
        return Status::InvalidArgument(
            "ranked exploration requires a ranking function");
      }
      COURSENAV_ASSIGN_OR_RETURN(
          RankedResult ranked,
          ExploreTopK(request.start, request.end_term, *request.goal,
                      *request.ranking, request.top_k, request.options,
                      request.config));
      response.ranked = std::move(ranked);
      return response;
    }
  }
  return Status::InvalidArgument("unknown exploration task type");
}

Result<GenerationResult> CourseNavigator::ExploreDeadline(
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) const {
  return GenerateDeadlineDrivenPaths(*catalog_, *schedule_, start, end_term,
                                     options);
}

Result<GenerationResult> CourseNavigator::ExploreGoal(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) const {
  return GenerateGoalDrivenPaths(*catalog_, *schedule_, start, end_term, goal,
                                 options, config);
}

Result<RankedResult> CourseNavigator::ExploreTopK(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const RankingFunction& ranking, int k, const ExplorationOptions& options,
    const GoalDrivenConfig& config) const {
  return GenerateRankedPaths(*catalog_, *schedule_, start, end_term, goal,
                             ranking, k, options, config);
}

Result<CountingResult> CourseNavigator::CountDeadline(
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) const {
  return CountDeadlineDrivenPaths(*catalog_, *schedule_, start, end_term,
                                  options);
}

Result<CountingResult> CourseNavigator::CountGoal(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) const {
  return CountGoalDrivenPaths(*catalog_, *schedule_, start, end_term, goal,
                              options, config);
}

}  // namespace coursenav
